"""Differentiable categorical distributions for policy-gradient search.

The RL pragma explorer (:mod:`repro.dse.rl`) samples discrete
pragma-edit actions from a policy network and needs the log-probability
of the sampled actions to flow gradients back through REINFORCE.  This
module provides exactly that on the existing autograd engine: a
:class:`MaskedCategorical` built from raw logits plus a boolean
feasibility mask (boundary knobs cannot step further), with
``sample`` / ``log_prob`` / ``entropy`` mirroring
``torch.distributions.Categorical``.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import numpy as np

from ..errors import NNError
from .tensor import Tensor

__all__ = ["MaskedCategorical"]

#: Additive logit bias that zeroes a masked action's probability without
#: producing NaNs in the softmax (exp(-1e9) underflows to exactly 0.0).
_MASK_BIAS = -1.0e9


class MaskedCategorical:
    """Batch of categorical distributions over partially-masked actions.

    Parameters
    ----------
    logits:
        ``(batch, actions)`` tensor of unnormalised scores; gradients
        flow back through :meth:`log_prob` and :meth:`entropy`.
    mask:
        Optional boolean array of the same shape; ``False`` entries are
        infeasible and receive exactly zero probability.  Every row must
        keep at least one feasible action.
    """

    def __init__(self, logits: Tensor, mask: Optional[np.ndarray] = None):
        if logits.data.ndim != 2:
            raise NNError(
                f"MaskedCategorical expects (batch, actions) logits, "
                f"got shape {logits.shape}"
            )
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != logits.data.shape:
                raise NNError(
                    f"mask shape {mask.shape} != logits shape {logits.data.shape}"
                )
            if not mask.any(axis=1).all():
                raise NNError("MaskedCategorical: a row has no feasible action")
            bias = np.where(mask, 0.0, _MASK_BIAS).astype(logits.data.dtype)
            logits = logits + Tensor(bias)
        self.mask = mask
        self.logits = logits
        self.log_probs = logits.log_softmax(axis=1)

    @property
    def probs(self) -> np.ndarray:
        """Detached probability matrix (rows sum to 1)."""
        p = np.exp(self.log_probs.data)
        return p / p.sum(axis=1, keepdims=True)

    def sample(self, rng: random.Random) -> np.ndarray:
        """Draw one action per row using ``rng`` (deterministic per seed).

        Uses inverse-CDF sampling with one ``rng.random()`` draw per
        row, consumed in row order — the whole edit trajectory of a
        seeded explorer is therefore reproducible bit-for-bit.
        """
        probs = self.probs
        out = np.empty(probs.shape[0], dtype=np.int64)
        for i in range(probs.shape[0]):
            u = rng.random()
            cdf = np.cumsum(probs[i])
            # searchsorted returns the first action whose cumulative
            # probability exceeds u; clip guards the u ~ 1.0 edge.
            out[i] = min(int(np.searchsorted(cdf, u, side="right")), probs.shape[1] - 1)
            if self.mask is not None and not self.mask[i, out[i]]:
                # Float round-off can land the draw on a zero-probability
                # tail slot; snap to the last feasible action instead.
                out[i] = int(np.nonzero(self.mask[i])[0][-1])
        return out

    def log_prob(self, actions: Sequence[int]) -> Tensor:
        """Log-probability of ``actions`` (one per row), differentiable."""
        actions = np.asarray(actions, dtype=np.int64)
        one_hot = np.zeros(self.log_probs.shape, dtype=self.log_probs.data.dtype)
        one_hot[np.arange(actions.shape[0]), actions] = 1.0
        return (self.log_probs * Tensor(one_hot)).sum(axis=1)

    def entropy(self) -> Tensor:
        """Shannon entropy per row, differentiable.

        Masked slots contribute exactly zero (their probability
        underflows to 0 and ``0 * log p`` is forced to 0 through the
        detached probability factor).
        """
        probs = self.probs
        if self.mask is not None:
            probs = np.where(self.mask, probs, 0.0)
        return -(self.log_probs * Tensor(probs)).sum(axis=1)
