"""A small vectorized autograd engine over numpy arrays.

Substitutes for PyTorch in the GNN-DSE reproduction.  Supports exactly
the operator set the model needs: broadcast arithmetic, matmul,
activations, reductions, concatenation, row gathering, and sorted
segment sums (the message-passing primitive).  Gradients are accumulated
by reverse-mode differentiation over a topologically-sorted tape.

Design notes
------------
* ``data`` is a float ndarray in the engine's default dtype — float32
  for training throughput (the hot path is memory-bandwidth bound);
  :func:`set_default_dtype` switches to float64 for tight numerical
  gradient checks.
* Broadcasting is handled by un-broadcasting gradients back to the
  operand shapes (summing over expanded axes).
* Segment aggregation (the message-passing primitive) is a cached
  sparse-matrix product; gather backward uses a precomputed
  :class:`IndexPlan` instead of the very slow ``np.add.at``.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import NNError

__all__ = [
    "Tensor",
    "Segments",
    "IndexPlan",
    "concat",
    "stack_max",
    "no_grad",
    "set_default_dtype",
    "get_default_dtype",
]

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Graph construction is toggled per *thread*: a server thread running
# inference under ``no_grad`` must not silently zero the gradients of a
# training loop in another thread (the active-learning loop fine-tunes
# while the same process serves requests).
_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)

#: float32 keeps the message-passing hot path memory-bandwidth friendly;
#: numerical gradient checks switch to float64 via set_default_dtype.
_default_dtype = np.float32


def set_default_dtype(dtype) -> None:
    """Set the engine's float dtype (np.float32 or np.float64)."""
    global _default_dtype
    dtype = np.dtype(dtype).type
    if dtype not in (np.float32, np.float64):
        raise NNError("default dtype must be float32 or float64")
    _default_dtype = dtype


def get_default_dtype():
    """Current engine float dtype."""
    return _default_dtype


class no_grad:
    """Context manager disabling graph construction (this thread only)."""

    def __enter__(self):
        self._prev = _grad_enabled()
        _grad_state.enabled = False
        return self

    def __exit__(self, *exc):
        _grad_state.enabled = self._prev
        return False


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(_default_dtype, copy=False)
    return np.asarray(value, dtype=_default_dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Segments:
    """Precomputed layout of sorted segment ids.

    Parameters
    ----------
    ids:
        Sorted, non-negative int array mapping each row to its segment.
    num_segments:
        Total segment count (>= ids.max()+1); empty segments allowed.
    """

    def __init__(self, ids: np.ndarray, num_segments: int):
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and np.any(np.diff(ids) < 0):
            raise NNError("segment ids must be sorted ascending")
        if ids.size and ids[-1] >= num_segments:
            raise NNError("segment id exceeds num_segments")
        self.ids = ids
        self.num_segments = int(num_segments)
        self.counts = np.bincount(ids, minlength=num_segments)
        starts = np.zeros(num_segments, dtype=np.int64)
        if num_segments > 1:
            starts[1:] = np.cumsum(self.counts)[:-1]
        self.starts = starts
        self.nonempty = self.counts > 0
        self._plan: Optional["IndexPlan"] = None
        self._csr = None

    @property
    def plan(self) -> "IndexPlan":
        """IndexPlan for gathering per-segment rows back per element."""
        if self._plan is None:
            self._plan = IndexPlan(self.ids, self.num_segments)
        return self._plan

    @property
    def matrix(self):
        """Cached (num_segments, E) CSR aggregation matrix."""
        if self._csr is None:
            import scipy.sparse as sp

            count = self.ids.size
            self._csr = sp.csr_matrix(
                (np.ones(count, dtype=np.float32), (self.ids, np.arange(count))),
                shape=(self.num_segments, count),
            )
        return self._csr

    def sum(self, data: np.ndarray) -> np.ndarray:
        """Segment-wise sum of rows.

        Implemented as a cached sparse-matrix product — measurably
        faster than ``np.add.reduceat`` on the wide float matrices of
        the message-passing hot path.
        """
        out_shape = (self.num_segments,) + data.shape[1:]
        if self.ids.size == 0:
            return np.zeros(out_shape, dtype=data.dtype)
        flat = data.reshape(data.shape[0], -1)
        out = self.matrix @ flat
        return np.ascontiguousarray(out).reshape(out_shape)

    def max(self, data: np.ndarray) -> np.ndarray:
        """Segment-wise max (empty segments get 0); not differentiated."""
        out_shape = (self.num_segments,) + data.shape[1:]
        out = np.zeros(out_shape, dtype=data.dtype)
        if self.ids.size == 0:
            return out
        reduced = np.maximum.reduceat(data, self.starts[self.nonempty], axis=0)
        out[self.nonempty] = reduced
        return out

    def expand(self, per_segment: np.ndarray) -> np.ndarray:
        """Broadcast one row per segment back to one row per element."""
        return per_segment[self.ids]


class IndexPlan:
    """A row-index array with a precomputed fast scatter-add plan.

    ``np.add.at`` (the naive scatter-add) is an order of magnitude
    slower than a sort + ``reduceat``; since graph batches reuse the
    same gather indices across every layer and epoch, we precompute the
    sort permutation once and reuse it in every backward pass.
    """

    def __init__(self, index: np.ndarray, num_rows: int):
        self.index = np.asarray(index, dtype=np.int64)
        self.num_rows = int(num_rows)
        self._csr = None

    @property
    def matrix(self):
        """Cached (num_rows, E) CSR scatter matrix."""
        if self._csr is None:
            import scipy.sparse as sp

            count = self.index.size
            self._csr = sp.csr_matrix(
                (np.ones(count, dtype=np.float32), (self.index, np.arange(count))),
                shape=(self.num_rows, count),
            )
        return self._csr

    def scatter_add(self, values: np.ndarray) -> np.ndarray:
        """Return (num_rows, ...) with ``out[index[k]] += values[k]``."""
        out_shape = (self.num_rows,) + values.shape[1:]
        if self.index.size == 0:
            return np.zeros(out_shape, dtype=values.dtype)
        flat = values.reshape(values.shape[0], -1)
        return np.ascontiguousarray(self.matrix @ flat).reshape(out_shape)


class Tensor:
    """An autograd-tracked numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_grad_owned")

    #: Overridden by :class:`repro.nn.lazy.graph.LazyTensor`; lets
    #: engine-agnostic code (``concat``/``stack_max``, the model stack)
    #: branch without importing the lazy package.
    is_lazy = False

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self._grad_owned = False
        grad_enabled = _grad_enabled()
        self.requires_grad = requires_grad and grad_enabled
        self._parents = _parents if grad_enabled else ()
        self._backward = _backward if grad_enabled else None

    # -- plumbing -----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    def _accumulate(self, grad: np.ndarray) -> None:
        # Lazy-copy accumulation: the first contribution is referenced,
        # not copied (most tensors receive exactly one); a second
        # contribution forces a fresh owned buffer before mutating.
        if self.grad is None:
            self.grad = grad
            self._grad_owned = False
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode AD from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor"):
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(data, parents, backward, requires: bool) -> "Tensor":
        requires = requires and _grad_enabled()
        return Tensor(
            data,
            requires_grad=requires,
            _parents=tuple(p for p in parents if p.requires_grad) if requires else (),
            _backward=backward if requires else None,
        )

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward, self.requires_grad or other.requires_grad)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward, self.requires_grad or other.requires_grad)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out_data = np.power(self.data, exponent)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * np.power(self.data, exponent - 1.0))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make(out_data, (self, other), backward, self.requires_grad or other.requires_grad)

    # -- elementwise nonlinearities ------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, self.requires_grad)

    def log(self) -> "Tensor":
        out_data = np.log(np.maximum(self.data, 1e-12))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / np.maximum(self.data, 1e-12))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward, self.requires_grad)

    def leaky_relu(self, alpha: float = 0.01) -> "Tensor":
        mask = self.data > 0
        slope = np.where(mask, 1.0, alpha)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * slope)

        return self._make(self.data * slope, (self,), backward, self.requires_grad)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        exp_part = alpha * (np.exp(np.clip(self.data, -60.0, 0.0)) - 1.0)
        out_data = np.where(mask, self.data, exp_part)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, exp_part + alpha))

        return self._make(out_data, (self,), backward, self.requires_grad)

    # -- reductions / shaping --------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward, self.requires_grad)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def transpose(self, axes=None) -> "Tensor":
        out_data = self.data.transpose(axes)
        inverse = None if axes is None else np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward, self.requires_grad)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # -- gather / segment ops -----------------------------------------------------------

    def gather_rows(self, index) -> "Tensor":
        """Select rows: ``out[k] = self[index[k]]`` (scatter-add backward).

        Pass an :class:`IndexPlan` on hot paths — its precomputed sorted
        layout makes the backward scatter-add ~10× faster than the
        naive ``np.add.at`` fallback used for raw index arrays.
        """
        if isinstance(index, IndexPlan):
            plan = index
            out_data = self.data[plan.index]

            def backward(grad):
                if self.requires_grad:
                    self._accumulate(plan.scatter_add(grad))

            return self._make(out_data, (self,), backward, self.requires_grad)

        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]

        def backward_slow(grad):
            if self.requires_grad:
                acc = np.zeros_like(self.data)
                np.add.at(acc, index, grad)
                self._accumulate(acc)

        return self._make(out_data, (self,), backward_slow, self.requires_grad)

    def segment_sum(self, segments: Segments) -> "Tensor":
        """Sum rows into segments (rows must be pre-sorted by segment)."""
        if self.shape[0] != segments.ids.size:
            raise NNError(
                f"segment_sum: {self.shape[0]} rows vs {segments.ids.size} segment ids"
            )
        out_data = segments.sum(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad[segments.ids])

        return self._make(out_data, (self,), backward, self.requires_grad)

    def segment_softmax(self, segments: Segments) -> "Tensor":
        """Softmax over rows within each segment (numerically stable).

        Uses the detached per-segment max as the stabiliser, which is the
        standard trick (the max shift has zero gradient).
        """
        shifted = self - Tensor(segments.expand(segments.max(self.data)))
        exp = shifted.exp()
        denom = exp.segment_sum(segments)
        denom_per_row = denom.gather_rows(segments.plan)
        return exp / (denom_per_row + 1e-16)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / (exp.sum(axis=axis, keepdims=True) + 1e-16)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - (shifted.exp().sum(axis=axis, keepdims=True) + 1e-16).log()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with autograd support."""
    tensors = list(tensors)
    if any(getattr(t, "is_lazy", False) for t in tensors):
        from .lazy.graph import lazy_concat

        return lazy_concat(tensors, axis=axis)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    requires = any(t.requires_grad for t in tensors)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward, requires)


def stack_max(tensors: Sequence[Tensor]) -> Tensor:
    """Elementwise max across equally-shaped tensors (JKN aggregation).

    Gradient flows to the argmax tensor per element (ties go to the
    earliest layer, matching PyTorch's max backward convention).
    """
    tensors = list(tensors)
    if any(getattr(t, "is_lazy", False) for t in tensors):
        from .lazy.graph import lazy_stack_max

        return lazy_stack_max(tensors)
    stacked = np.stack([t.data for t in tensors], axis=0)
    winner = np.argmax(stacked, axis=0)
    out_data = np.take_along_axis(stacked, winner[None], axis=0)[0]
    requires = any(t.requires_grad for t in tensors)

    def backward(grad):
        for layer, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(grad * (winner == layer))

    return Tensor._make(out_data, tuple(tensors), backward, requires)
