"""Graph-level readout: plain sum pooling and node attention (Eq. 10)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .data import Batch
from .module import MLP, Module
from .tensor import Tensor

__all__ = ["SumPool", "NodeAttentionPool"]


class SumPool(Module):
    """Graph embedding = sum of node embeddings (the paper's baseline)."""

    def forward(self, x: Tensor, batch: Batch) -> Tensor:
        return x.segment_sum(batch.node_segments)

    def attention_scores(self, x: Tensor, batch: Batch) -> np.ndarray:
        """Uniform scores (for API parity with NodeAttentionPool)."""
        counts = batch.node_segments.counts.astype(np.float64)
        return batch.node_segments.expand(1.0 / np.maximum(counts, 1.0))


class NodeAttentionPool(Module):
    """Attention-weighted readout (Eq. 10).

    ``h_G = Σ_i softmax(MLP1(h_i)) · MLP2(h_i)`` where the softmax runs
    over the nodes of each graph.  :meth:`attention_scores` exposes the
    per-node attention for Fig. 5-style analysis.
    """

    def __init__(self, dim: int, hidden: Optional[int] = None, rng=None):
        super().__init__()
        hidden = hidden or dim
        rng = rng or np.random.default_rng(0)
        self.score_mlp = MLP([dim, hidden, 1], activation="elu", rng=rng)
        self.value_mlp = MLP([dim, hidden, dim], activation="elu", rng=rng)

    def forward(self, x: Tensor, batch: Batch) -> Tensor:
        scores = self.score_mlp(x)  # (N, 1)
        att = scores.segment_softmax(batch.node_segments)
        values = self.value_mlp(x)
        return (values * att).segment_sum(batch.node_segments)

    def attention_scores(self, x: Tensor, batch: Batch) -> np.ndarray:
        """Per-node attention weights (sums to 1 within each graph)."""
        scores = self.score_mlp(x)
        att = scores.segment_softmax(batch.node_segments)
        return att.data[:, 0]
