"""Loss functions: MSE/RMSE for regression, cross-entropy for validity."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "rmse", "cross_entropy", "binary_accuracy", "f1_score"]


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root-mean-square error (the paper's Table 2 regression metric)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.sqrt(np.mean((pred - target) ** 2)))


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy for integer class labels (N,) over (N, C)."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    n = labels.shape[0]
    mask = np.zeros(log_probs.shape, dtype=np.float64)
    mask[np.arange(n), labels] = 1.0
    picked = (log_probs * Tensor(mask)).sum(axis=-1)
    return -picked.mean()


def binary_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Accuracy of argmax class prediction."""
    pred = np.argmax(logits, axis=-1)
    return float(np.mean(pred == np.asarray(labels)))


def f1_score(logits: np.ndarray, labels: np.ndarray, positive: int = 1) -> float:
    """F1 of the ``positive`` class (valid designs in the paper)."""
    pred = np.argmax(logits, axis=-1)
    labels = np.asarray(labels)
    tp = float(np.sum((pred == positive) & (labels == positive)))
    fp = float(np.sum((pred == positive) & (labels != positive)))
    fn = float(np.sum((pred != positive) & (labels == positive)))
    if tp == 0.0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2.0 * precision * recall / (precision + recall)
