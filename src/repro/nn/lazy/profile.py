"""Op-level profiler for the fused engine (``DEBUG=1``).

Disabled by default: the executor asks for :func:`collector` once per
realize and gets ``None``, so the hot path carries no per-op timer
calls — keeping the <0.2% disabled-overhead budget of the obs layer.
When enabled (``DEBUG=1`` in the environment, or the
:func:`profiled` context manager / :func:`set_profiling`), every
executed op accrues a count and wall-clock milliseconds here, and the
same samples feed :mod:`repro.obs` (counters ``engine.fused.op.<op>``
and histogram ``engine.fused.realize_ms``) so they show up in
``metrics_text()`` / ``/metrics`` next to the pipeline's counters.

Export: :func:`op_profile` returns a schema-versioned payload
(validated by :func:`validate_profile`) that EXPERIMENTS.md and future
PRs use to see where the milliseconds go.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Optional

from ...errors import NNError

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "op_profile",
    "profiled",
    "profiling_enabled",
    "reset_profile",
    "set_profiling",
    "validate_profile",
]

PROFILE_SCHEMA_VERSION = 1

_lock = threading.Lock()
_override: Optional[bool] = None
_ops: Dict[str, list] = {}  # op -> [count, seconds]
_realizes = 0
_realize_seconds = 0.0
_nodes_executed = 0


def profiling_enabled() -> bool:
    """True when op-level profiling is active (DEBUG=1 or override)."""
    if _override is not None:
        return _override
    try:
        return int(os.environ.get("DEBUG", "0") or "0") >= 1
    except ValueError:
        return False


def set_profiling(enabled: Optional[bool]) -> None:
    """Force profiling on/off; ``None`` restores the DEBUG env check."""
    global _override
    _override = enabled


@contextmanager
def profiled():
    """Enable profiling (and reset stats) for the duration of a block."""
    prev = _override
    reset_profile()
    set_profiling(True)
    try:
        yield
    finally:
        set_profiling(prev)


class _Collector:
    """Accumulates one realize call's samples into the global stats."""

    __slots__ = ()

    def add(self, op: str, seconds: float, count: int = 1) -> None:
        global _nodes_executed
        with _lock:
            entry = _ops.setdefault(op, [0, 0.0])
            entry[0] += count
            entry[1] += seconds
            _nodes_executed += count
        from ...obs import counter

        counter(f"engine.fused.op.{op}").inc(count)

    def add_realize(self, seconds: float, nodes: int) -> None:
        global _realizes, _realize_seconds
        with _lock:
            _realizes += 1
            _realize_seconds += seconds
        from ...obs import histogram

        histogram("engine.fused.realize_ms").observe(seconds * 1000.0)


_COLLECTOR = _Collector()


def collector() -> Optional[_Collector]:
    """The active collector, or ``None`` when profiling is disabled."""
    return _COLLECTOR if profiling_enabled() else None


def reset_profile() -> None:
    """Zero the accumulated op stats (not the obs registry)."""
    global _realizes, _realize_seconds, _nodes_executed
    with _lock:
        _ops.clear()
        _realizes = 0
        _realize_seconds = 0.0
        _nodes_executed = 0


def op_profile() -> Dict:
    """Schema-versioned snapshot of accumulated per-op counts/ms."""
    with _lock:
        ops = {
            op: {"count": int(count), "ms": seconds * 1000.0}
            for op, (count, seconds) in sorted(
                _ops.items(), key=lambda kv: kv[1][1], reverse=True
            )
        }
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "engine": "fused",
            "realizes": int(_realizes),
            "total_ms": _realize_seconds * 1000.0,
            "nodes_executed": int(_nodes_executed),
            "ops": ops,
        }


def validate_profile(payload: Dict) -> None:
    """Raise :class:`NNError` unless ``payload`` matches the export schema."""
    if not isinstance(payload, dict):
        raise NNError("profile payload must be a dict")
    for key, kind in (
        ("schema_version", int),
        ("engine", str),
        ("realizes", int),
        ("total_ms", (int, float)),
        ("nodes_executed", int),
        ("ops", dict),
    ):
        if key not in payload:
            raise NNError(f"profile payload missing {key!r}")
        if not isinstance(payload[key], kind):
            raise NNError(f"profile payload field {key!r} has wrong type")
    if payload["schema_version"] != PROFILE_SCHEMA_VERSION:
        raise NNError(
            f"unsupported profile schema version {payload['schema_version']!r}"
        )
    if payload["engine"] != "fused":
        raise NNError(f"unexpected profile engine {payload['engine']!r}")
    for op, stats in payload["ops"].items():
        if not isinstance(op, str) or not isinstance(stats, dict):
            raise NNError("profile ops entries must map str -> dict")
        for field in ("count", "ms"):
            if not isinstance(stats.get(field), (int, float)):
                raise NNError(f"profile op {op!r} missing numeric {field!r}")
