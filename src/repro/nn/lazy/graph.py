"""Lazy op recording over the eager :class:`~repro.nn.tensor.Tensor` API.

A :class:`LazyTensor` is a drop-in stand-in for an inference-mode
Tensor: every op records a :class:`LazyNode` into an op graph instead
of computing, and the graph only executes when a value is demanded
(``.data`` / ``.numpy()`` / ``.item()``).  Execution lives in
:mod:`repro.nn.lazy.engine`, which fuses elementwise chains in place,
recycles intermediate buffers, and batches same-input GEMMs into one
wide GEMM.

Mixing engines is free: ``eager op lazy`` stays lazy because Python
prefers the subclass's reflected operators, and eager operands are
wrapped as source nodes *by reference* (mutating the source array and
re-recording sees the new values — the fused DSE template relies on
this).  Numerics mirror the eager engine operation for operation —
same clips, same epsilons, same derived-op decompositions (``div`` is
``mul``+``pow(-1)``, ``mean`` is ``sum``×``1/n``) — so unfused
execution is bit-identical and fused execution differs only by
documented GEMM re-associations (tolerance policy:
:mod:`repro.nn.lazy.equiv`).

LazyTensors are forward-only: they never require grad and
``backward()`` raises.  Training stays on the eager engine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ...errors import NNError
from ..tensor import IndexPlan, Segments, Tensor, _as_array, get_default_dtype

__all__ = ["LazyNode", "LazyTensor", "lazy_concat", "lazy_stack_max"]


class LazyNode:
    """One recorded op: sources, static arg, and inferred shape/dtype.

    ``mat`` holds the realized ndarray — set at construction for source
    nodes (by reference), and by the engine after execution.  The
    engine may null it back out for dead intermediates whose buffer was
    recycled; demanding such a node again recomputes from its sources.
    """

    __slots__ = ("op", "srcs", "arg", "shape", "dtype", "mat")

    def __init__(self, op: str, srcs: Tuple["LazyNode", ...], arg, shape, dtype, mat=None):
        self.op = op
        self.srcs = srcs
        self.arg = arg
        self.shape = tuple(int(d) for d in shape)
        self.dtype = np.dtype(dtype)
        self.mat: Optional[np.ndarray] = mat

    @staticmethod
    def source(array: np.ndarray) -> "LazyNode":
        return LazyNode("source", (), None, array.shape, array.dtype, mat=array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyNode({self.op}, shape={self.shape}, dtype={self.dtype})"


# -- shape inference ---------------------------------------------------------


def _sum_shape(shape: Tuple[int, ...], axis, keepdims: bool) -> Tuple[int, ...]:
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = tuple(a % len(shape) for a in axes)
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


def _reshape_shape(old: Tuple[int, ...], new) -> Tuple[int, ...]:
    new = list(new)
    total = int(np.prod(old)) if old else 1
    if new.count(-1) > 1:
        raise NNError("reshape accepts at most one -1 dimension")
    if -1 in new:
        rest = int(np.prod([d for d in new if d != -1])) or 1
        if rest == 0 or total % rest:
            raise NNError(f"cannot reshape {old} into {tuple(new)}")
        new[new.index(-1)] = total // rest
    if int(np.prod(new)) != total:
        raise NNError(f"cannot reshape {old} into {tuple(new)}")
    return tuple(int(d) for d in new)


def _matmul_shape(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    if not a or not b:
        raise NNError("matmul operands must be at least 1-D")
    aa = a if len(a) > 1 else (1,) + a
    bb = b if len(b) > 1 else b + (1,)
    if aa[-1] != bb[-2]:
        raise NNError(f"matmul shape mismatch: {a} @ {b}")
    out = tuple(np.broadcast_shapes(aa[:-2], bb[:-2])) + (aa[-2], bb[-1])
    if len(a) == 1:
        out = out[:-2] + out[-1:]
    if len(b) == 1:
        out = out[:-1]
    return out


class LazyTensor(Tensor):
    """A Tensor whose value is a recorded op graph (see module docs)."""

    __slots__ = ("_node",)
    is_lazy = True

    def __init__(self, data=None, node: Optional[LazyNode] = None):
        if node is None:
            node = LazyNode.source(_as_array(data))
        self._node = node
        self.grad = None
        self._grad_owned = False
        self.requires_grad = False
        self._parents = ()
        self._backward = None

    # -- realization ----------------------------------------------------------

    @property
    def data(self) -> np.ndarray:  # type: ignore[override]
        node = self._node
        if node.mat is None:
            from .engine import realize

            realize([node])
        return node.mat

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._node.shape

    @property
    def ndim(self) -> int:
        return len(self._node.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self._node.shape)) if self._node.shape else 1

    def realize(self) -> "LazyTensor":
        """Force execution of the recorded graph (idempotent)."""
        self.data
        return self

    def backward(self, grad=None) -> None:  # type: ignore[override]
        raise NNError(
            "LazyTensor is inference-only: record on the eager engine "
            "(repro.nn.Tensor) to differentiate"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "realized" if self._node.mat is not None else "pending"
        return f"LazyTensor(shape={self.shape}, dtype={self._node.dtype}, {state})"

    # -- recording helpers ----------------------------------------------------

    @staticmethod
    def _coerce(value) -> LazyNode:
        if isinstance(value, LazyTensor):
            return value._node
        if isinstance(value, Tensor):
            return LazyNode.source(value.data)
        return LazyNode.source(_as_array(value))

    @staticmethod
    def _record(op, srcs, arg, shape) -> "LazyTensor":
        # The eager engine routes every op result through
        # ``Tensor.__init__`` → ``_as_array``, which casts to the
        # process default dtype — so every recorded (non-source) node
        # gets the default dtype at record time, and the executor casts
        # on store exactly where eager casts on construction.
        return LazyTensor(node=LazyNode(op, srcs, arg, shape, get_default_dtype()))

    def _binary(self, op: str, other) -> "LazyTensor":
        a, b = self._node, self._coerce(other)
        shape = np.broadcast_shapes(a.shape, b.shape)
        return self._record(op, (a, b), None, shape)

    def _unary(self, op: str, arg) -> "LazyTensor":
        n = self._node
        return self._record(op, (n,), arg, n.shape)

    # -- arithmetic -----------------------------------------------------------
    # __neg__/__sub__/__rsub__/__truediv__/__rtruediv__/sqrt/mean and the
    # softmax family are inherited: the base class defines them in terms
    # of the ops below, so they decompose into the same lazy graph the
    # eager engine would compute (and the softmax max-stabilizer, which
    # reads ``self.data``, realizes mid-graph exactly like the eager op).

    def __add__(self, other) -> "LazyTensor":
        return self._binary("add", other)

    __radd__ = __add__

    def __mul__(self, other) -> "LazyTensor":
        return self._binary("mul", other)

    __rmul__ = __mul__

    def pow(self, exponent: float) -> "LazyTensor":
        return self._unary("pow", float(exponent))

    def __matmul__(self, other) -> "LazyTensor":
        a, b = self._node, self._coerce(other)
        return self._record("matmul", (a, b), None, _matmul_shape(a.shape, b.shape))

    def __rmatmul__(self, other) -> "LazyTensor":
        a, b = self._coerce(other), self._node
        return self._record("matmul", (a, b), None, _matmul_shape(a.shape, b.shape))

    # -- elementwise nonlinearities -------------------------------------------

    def exp(self) -> "LazyTensor":
        return self._unary("exp", None)

    def log(self) -> "LazyTensor":
        return self._unary("log", None)

    def tanh(self) -> "LazyTensor":
        return self._unary("tanh", None)

    def sigmoid(self) -> "LazyTensor":
        return self._unary("sigmoid", None)

    def relu(self) -> "LazyTensor":
        return self._unary("relu", None)

    def leaky_relu(self, alpha: float = 0.01) -> "LazyTensor":
        return self._unary("leaky_relu", float(alpha))

    def elu(self, alpha: float = 1.0) -> "LazyTensor":
        return self._unary("elu", float(alpha))

    # -- reductions / shaping -------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "LazyTensor":
        n = self._node
        shape = _sum_shape(n.shape, axis, keepdims)
        return self._record("sum", (n,), (axis, keepdims), shape)

    def reshape(self, *shape) -> "LazyTensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        n = self._node
        new = _reshape_shape(n.shape, shape)
        return self._record("reshape", (n,), new, new)

    def transpose(self, axes=None) -> "LazyTensor":
        n = self._node
        if axes is None:
            new = n.shape[::-1]
        else:
            new = tuple(n.shape[a] for a in axes)
        return self._record("transpose", (n,), axes, new)

    # -- gather / segment ops -------------------------------------------------

    def gather_rows(self, index) -> "LazyTensor":
        n = self._node
        if isinstance(index, IndexPlan):
            rows = index.index.shape[0]
        else:
            index = np.asarray(index, dtype=np.int64)
            rows = index.shape[0]
        return self._record("gather", (n,), index, (rows,) + n.shape[1:])

    def segment_sum(self, segments: Segments) -> "LazyTensor":
        n = self._node
        if n.shape[0] != segments.ids.size:
            raise NNError(
                f"segment_sum: {n.shape[0]} rows vs {segments.ids.size} segment ids"
            )
        return self._record(
            "segment_sum", (n,), segments, (segments.num_segments,) + n.shape[1:]
        )

    def segment_softmax(self, segments: Segments) -> "LazyTensor":
        # Overrides the inherited composite, which reads ``self.data``
        # for the detached max stabiliser and would force a mid-graph
        # realize per attention layer.  The engine kernel replays the
        # composite's exact eager sequence (max-shift, clipped exp,
        # CSR segment sum, +1e-16, reciprocal multiply) in one node.
        n = self._node
        if n.shape[0] != segments.ids.size:
            raise NNError(
                f"segment_softmax: {n.shape[0]} rows vs {segments.ids.size} segment ids"
            )
        return self._record("segment_softmax", (n,), segments, n.shape)


def lazy_concat(tensors: Sequence[Tensor], axis: int = -1) -> LazyTensor:
    """Lazy counterpart of :func:`repro.nn.tensor.concat`."""
    nodes = tuple(LazyTensor._coerce(t) for t in tensors)
    ndim = len(nodes[0].shape)
    ax = axis % ndim
    shape = list(nodes[0].shape)
    shape[ax] = sum(n.shape[ax] for n in nodes)
    return LazyTensor(
        node=LazyNode("concat", nodes, ax, tuple(shape), get_default_dtype())
    )


def lazy_stack_max(tensors: Sequence[Tensor]) -> LazyTensor:
    """Lazy counterpart of :func:`repro.nn.tensor.stack_max`."""
    nodes = tuple(LazyTensor._coerce(t) for t in tensors)
    return LazyTensor(
        node=LazyNode("stack_max", nodes, None, nodes[0].shape, get_default_dtype())
    )
