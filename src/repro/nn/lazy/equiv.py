"""Tolerance policy and equivalence checks for eager-vs-fused.

The fused engine reproduces the eager engine's numerics op for op, so
*unfused* execution is bit-identical.  The one documented divergence is
GEMM stacking: fusing ``x @ W1, x @ W2, ...`` into ``x @ [W1|W2|...]``
lets BLAS pick different blocking/accumulation orders per column block,
which perturbs results at the level of rounding.  Tolerances below
bound that: tight enough to catch any real kernel bug (wrong clip,
missing epsilon, aliasing corruption — all of which produce errors many
orders of magnitude larger), loose enough to absorb re-association
noise accumulated across a 6-layer GNN.

Used by the differential fuzzer (``tests/test_engine_diff.py``) and by
the pipeline's first-batch verification gate when ``--engine fused``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...errors import NNError

__all__ = [
    "EngineEquivalenceError",
    "TOLERANCES",
    "assert_allclose",
    "max_errors",
    "predictions_equivalent",
    "tolerance_for",
]


class EngineEquivalenceError(NNError):
    """Fused-engine output diverged from the eager reference."""


#: Per-dtype (rtol, atol).  float32 accumulates re-association noise
#: fast across deep graphs; float64 keeps ~8 spare digits.
TOLERANCES: Dict[str, Tuple[float, float]] = {
    "float32": (1e-3, 1e-4),
    "float64": (1e-8, 1e-9),
}


def tolerance_for(dtype) -> Tuple[float, float]:
    """(rtol, atol) for ``dtype``; unknown dtypes get float32's bounds."""
    return TOLERANCES.get(np.dtype(dtype).name, TOLERANCES["float32"])


def max_errors(actual: np.ndarray, expected: np.ndarray) -> Tuple[float, float]:
    """(max absolute error, max relative error) between two arrays."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    diff = np.abs(actual - expected)
    if diff.size == 0:
        return 0.0, 0.0
    abs_err = float(diff.max())
    denom = np.maximum(np.abs(expected), 1e-30)
    rel_err = float((diff / denom).max())
    return abs_err, rel_err


def assert_allclose(actual, expected, dtype=None, context: str = "") -> None:
    """Raise :class:`EngineEquivalenceError` unless within tolerance.

    Agreement criterion is numpy's: ``|a - e| <= atol + rtol * |e|``
    elementwise, with NaN positions required to match.
    """
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if actual.shape != expected.shape:
        raise EngineEquivalenceError(
            f"shape mismatch{' in ' + context if context else ''}: "
            f"fused {actual.shape} vs eager {expected.shape}"
        )
    rtol, atol = tolerance_for(dtype if dtype is not None else expected.dtype)
    if np.allclose(actual, expected, rtol=rtol, atol=atol, equal_nan=True):
        return
    abs_err, rel_err = max_errors(actual, expected)
    raise EngineEquivalenceError(
        f"engines diverged{' in ' + context if context else ''}: "
        f"max_abs={abs_err:.3e} max_rel={rel_err:.3e} "
        f"(rtol={rtol:g}, atol={atol:g}, dtype={np.dtype(dtype or expected.dtype).name})"
    )


def predictions_equivalent(
    fused,
    eager,
    valid_threshold: float = 0.5,
    dtype=np.float32,
) -> Optional[str]:
    """Compare two :class:`~repro.model.predictor.Prediction` lists.

    Returns ``None`` when equivalent, else a description of the first
    divergence.  The valid flag may legitimately flip when the eager
    probability sits within tolerance of the threshold; objectives are
    compared only when both sides produced them (an invalid-flagged
    point skips regression in the cascade).
    """
    if len(fused) != len(eager):
        return f"prediction count mismatch: {len(fused)} vs {len(eager)}"
    rtol, atol = tolerance_for(dtype)
    for i, (f, e) in enumerate(zip(fused, eager)):
        if not np.isclose(f.valid_prob, e.valid_prob, rtol=rtol, atol=atol):
            return (
                f"point {i}: valid_prob {f.valid_prob:.6f} vs {e.valid_prob:.6f}"
            )
        if f.valid != e.valid:
            margin = abs(e.valid_prob - valid_threshold)
            if margin > atol + rtol * abs(valid_threshold):
                return (
                    f"point {i}: valid flag {f.valid} vs {e.valid} "
                    f"(prob {e.valid_prob:.6f} not near threshold)"
                )
            continue  # borderline flip: objectives may differ in presence
        if f.objectives and e.objectives:
            for key in e.objectives:
                if key not in f.objectives:
                    return f"point {i}: objective {key!r} missing from fused"
                if not np.isclose(
                    f.objectives[key], e.objectives[key], rtol=rtol, atol=atol
                ):
                    return (
                        f"point {i}: objective {key!r} "
                        f"{f.objectives[key]:.6f} vs {e.objectives[key]:.6f}"
                    )
        elif f.objectives and not e.objectives:
            return f"point {i}: fused produced objectives the reference skipped"
        # Fused missing objectives the reference has is legal: the
        # cascade (objectives_for="valid") skips regression for points
        # the classifier rejects, while a direct reference call always
        # regresses.
    return None
