"""``repro.nn.lazy`` — fused lazy-evaluation engine for inference.

Record (:mod:`graph`) → schedule/fuse/execute (:mod:`engine`), with a
``DEBUG=1`` op profiler (:mod:`profile`) and the eager-vs-fused
tolerance policy (:mod:`equiv`).  See the module docstrings and the
README "Engines" section for selection and guarantees.
"""

from .engine import clear_pool, pool_stats, realize
from .equiv import (
    EngineEquivalenceError,
    TOLERANCES,
    assert_allclose,
    max_errors,
    predictions_equivalent,
    tolerance_for,
)
from .graph import LazyNode, LazyTensor, lazy_concat, lazy_stack_max
from .profile import (
    PROFILE_SCHEMA_VERSION,
    op_profile,
    profiled,
    profiling_enabled,
    reset_profile,
    set_profiling,
    validate_profile,
)

__all__ = [
    "EngineEquivalenceError",
    "LazyNode",
    "LazyTensor",
    "PROFILE_SCHEMA_VERSION",
    "TOLERANCES",
    "assert_allclose",
    "clear_pool",
    "lazy_concat",
    "lazy_stack_max",
    "max_errors",
    "op_profile",
    "pool_stats",
    "predictions_equivalent",
    "profiled",
    "profiling_enabled",
    "realize",
    "reset_profile",
    "set_profiling",
    "tolerance_for",
    "validate_profile",
]
