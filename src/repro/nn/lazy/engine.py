"""Schedule and execute recorded lazy graphs.

The executor turns a :class:`~repro.nn.lazy.graph.LazyNode` DAG into
numpy calls with three optimizations the eager engine cannot apply:

* **Elementwise fusion** — a chain like ``clip → exp → sub → mul``
  executes in place on one buffer: each elementwise op writes into a
  dying operand's buffer (``out=``) instead of allocating, so a chain
  of N ops costs one buffer, not N.
* **Buffer recycling** — intermediates that cannot be fused in place
  draw from a process-wide size-keyed pool; a buffer whose last
  consumer has executed goes back to the pool for the next node (and
  the next realize call — the DSE loop re-records the same graph shape
  every forward, so steady-state allocation is near zero).
* **Stacked GEMMs** — matmul nodes sharing the same left operand
  against constant 2-D weights (the q/k/v/root projections of one
  layer, the per-objective prediction heads) execute as ONE wide gemm
  against the horizontally-stacked weights, then split by column view.
  The stacked weight matrix is cached across realize calls keyed by
  the weight buffers' identities.

Execution order and kernels otherwise mirror the eager engine exactly
(same clips, epsilons, and ufunc sequences), so an unfused graph is
bit-identical to eager and fusion only re-associates GEMM column
blocks (see :mod:`repro.nn.lazy.equiv` for the resulting tolerance).

Op-level profiling (per-op counts/ms) activates under ``DEBUG=1`` or
:func:`repro.nn.lazy.profile.profiled`; the enabled check happens once
per realize, so the disabled path adds no per-op timer calls.
"""

from __future__ import annotations

import threading
from math import prod
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import NNError
from ..tensor import IndexPlan, Segments
from . import profile as _profile
from .graph import LazyNode

__all__ = ["realize", "BufferPool", "pool_stats", "clear_pool"]


# ---------------------------------------------------------------------------
# buffer pool


class BufferPool:
    """Size-keyed free list of flat scratch arrays (process-wide)."""

    def __init__(self, capacity_bytes: int = 256 << 20):
        self.capacity_bytes = capacity_bytes
        self._free: Dict[Tuple[str, int], List[np.ndarray]] = {}
        self._held_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def take(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        count = prod(shape) if shape else 1
        key = (dtype.str, count)
        with self._lock:
            free = self._free.get(key)
            if free:
                flat = free.pop()
                self._held_bytes -= flat.nbytes
                self.hits += 1
                return flat.reshape(shape)
            self.misses += 1
        return np.empty(shape, dtype=dtype)

    def give(self, array: np.ndarray) -> None:
        if not array.flags.c_contiguous or array.size == 0:
            return
        with self._lock:
            if self._held_bytes + array.nbytes > self.capacity_bytes:
                return
            flat = array.reshape(-1)
            self._free.setdefault((array.dtype.str, flat.shape[0]), []).append(flat)
            self._held_bytes += array.nbytes

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._held_bytes = 0


_POOL = BufferPool()


def pool_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide buffer pool."""
    return {"hits": _POOL.hits, "misses": _POOL.misses}


def clear_pool() -> None:
    """Drop all pooled buffers (tests / memory pressure)."""
    _POOL.clear()


# ---------------------------------------------------------------------------
# stacked-GEMM weight cache

# Matmul groups share a stacked weight matrix across realize calls; the
# cache keys on the member weight buffers' identities and keeps strong
# references to them so an id cannot be recycled while its entry lives.
_STACK_CACHE: Dict[tuple, Tuple[List[np.ndarray], np.ndarray, List[int]]] = {}
_STACK_CACHE_MAX = 128


def _stacked_weights(rhs_mats: List[np.ndarray], dtype) -> Tuple[np.ndarray, List[int]]:
    key = (np.dtype(dtype).str,) + tuple(id(m) for m in rhs_mats)
    entry = _STACK_CACHE.get(key)
    if entry is None:
        if len(_STACK_CACHE) >= _STACK_CACHE_MAX:
            _STACK_CACHE.clear()
        cat = np.ascontiguousarray(np.hstack(rhs_mats), dtype=dtype)
        offsets = np.cumsum([0] + [m.shape[1] for m in rhs_mats]).tolist()
        entry = (list(rhs_mats), cat, offsets)
        _STACK_CACHE[key] = entry
    return entry[1], entry[2]


# ---------------------------------------------------------------------------
# kernels

#: Elementwise ops whose output may safely alias their (same-shaped,
#: same-dtype) input buffer.  ``elu`` is excluded: its kernel re-reads
#: the input after the buffer is overwritten.
_INPLACE_SAFE = frozenset(
    [
        "add", "mul", "pow", "exp", "log", "tanh", "sigmoid", "relu",
        "leaky_relu", "stack_max", "segment_softmax",
    ]
)


def _run_node(node: LazyNode, mats: Sequence[np.ndarray], out: Optional[np.ndarray]):
    """Execute one node, writing into ``out`` when provided.

    Every kernel reproduces the eager engine's exact ufunc sequence so
    unfused values match bit for bit.
    """
    op = node.op
    if op == "add":
        return np.add(mats[0], mats[1], out=out) if out is not None else mats[0] + mats[1]
    if op == "mul":
        return np.multiply(mats[0], mats[1], out=out) if out is not None else mats[0] * mats[1]
    if op == "pow":
        return np.power(mats[0], node.arg, out=out) if out is not None else np.power(mats[0], node.arg)
    if op == "matmul":
        if out is not None and out.flags.c_contiguous:
            return np.matmul(mats[0], mats[1], out=out)
        return np.matmul(mats[0], mats[1])
    if op == "exp":
        out = np.clip(mats[0], -60.0, 60.0, out=out)
        return np.exp(out, out=out)
    if op == "log":
        out = np.maximum(mats[0], 1e-12, out=out)
        return np.log(out, out=out)
    if op == "tanh":
        return np.tanh(mats[0], out=out)
    if op == "sigmoid":
        out = np.clip(mats[0], -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        return np.divide(1.0, out, out=out)
    if op == "relu":
        return np.multiply(mats[0], mats[0] > 0, out=out)
    if op == "leaky_relu":
        slope = np.where(mats[0] > 0, 1.0, node.arg)
        return np.multiply(mats[0], slope, out=out)
    if op == "elu":
        a = mats[0]
        mask = a > 0
        out = np.clip(a, -60.0, 0.0, out=out)
        np.exp(out, out=out)
        np.subtract(out, 1.0, out=out)
        np.multiply(out, node.arg, out=out)
        np.copyto(out, a, where=mask)
        return out
    if op == "sum":
        axis, keepdims = node.arg
        if out is not None:
            return mats[0].sum(axis=axis, keepdims=keepdims, out=out)
        return mats[0].sum(axis=axis, keepdims=keepdims)
    if op == "reshape":
        # astype is a view unless a mixed-dtype source slipped in (the
        # eager engine would cast there too, on Tensor construction).
        return mats[0].astype(node.dtype, copy=False).reshape(node.arg)
    if op == "transpose":
        return mats[0].astype(node.dtype, copy=False).transpose(node.arg)
    if op == "gather":
        index = node.arg.index if isinstance(node.arg, IndexPlan) else node.arg
        if out is not None and out.flags.c_contiguous:
            # mode="raise" (the np.take default) so out-of-bounds
            # indices fail identically to the eager fancy-index path.
            return np.take(mats[0], index, axis=0, out=out, mode="raise")
        return mats[0][index]
    if op == "segment_sum":
        segments: Segments = node.arg
        return segments.sum(mats[0]).astype(node.dtype, copy=False)
    if op == "segment_softmax":
        # Replays the eager composite exactly: (a - expand(max)) ->
        # clipped exp -> CSR segment sum -> per-row denom + 1e-16 ->
        # pow(-1) -> multiply.  Bit-identical to the eager path, one
        # scheduled node, no mid-graph sync.
        segments = node.arg
        a = mats[0].astype(node.dtype, copy=False)
        out = np.subtract(a, segments.expand(segments.max(a)), out=out)
        np.clip(out, -60.0, 60.0, out=out)
        np.exp(out, out=out)
        denom = segments.sum(out).astype(node.dtype, copy=False)
        d = denom[segments.plan.index]
        np.add(d, 1e-16, out=d)
        np.power(d, -1.0, out=d)
        return np.multiply(out, d, out=out)
    if op == "concat":
        if out is not None:
            return np.concatenate(mats, axis=node.arg, out=out)
        return np.concatenate(mats, axis=node.arg)
    if op == "stack_max":
        out = np.maximum(mats[0], mats[1], out=out)
        for m in mats[2:]:
            out = np.maximum(out, m, out=out)
        return out
    raise NNError(f"lazy engine has no kernel for op {node.op!r}")


# ---------------------------------------------------------------------------
# scheduling + execution


def _schedule(outputs: Sequence[LazyNode]) -> List[LazyNode]:
    """Iterative postorder over unrealized nodes (sources excluded)."""
    order: List[LazyNode] = []
    seen = set()
    stack: List[Tuple[LazyNode, bool]] = [(n, False) for n in reversed(outputs)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen or node.mat is not None:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for src in reversed(node.srcs):
            if src.mat is None and id(src) not in seen:
                stack.append((src, False))
    return order


def _matmul_groups(schedule: List[LazyNode]) -> Dict[int, List[LazyNode]]:
    """Same-LHS constant-weight matmul nodes, grouped for stacking."""
    by_lhs: Dict[int, List[LazyNode]] = {}
    for node in schedule:
        if node.op != "matmul" or len(node.shape) != 2:
            continue
        lhs, rhs = node.srcs
        if rhs.mat is None or rhs.mat.ndim != 2 or len(lhs.shape) != 2:
            continue
        by_lhs.setdefault(id(lhs), []).append(node)
    groups: Dict[int, List[LazyNode]] = {}
    for members in by_lhs.values():
        if len(members) < 2:
            continue
        if len({m.dtype.str for m in members}) != 1:
            continue
        for member in members:
            groups[id(member)] = members
    return groups


def realize(outputs: Sequence[LazyNode]) -> None:
    """Execute the graphs below ``outputs``, setting each ``node.mat``."""
    schedule = _schedule(outputs)
    if not schedule:
        return
    prof = _profile.collector()
    t_start = perf_counter() if prof is not None else 0.0

    refs: Dict[int, int] = {}
    for node in schedule:
        for src in node.srcs:
            if src.mat is None or id(src) in refs:
                refs[id(src)] = refs.get(id(src), 0) + 1
    for node in outputs:
        refs[id(node)] = refs.get(id(node), 0) + 1

    scheduled = {id(n): n for n in schedule}
    groups = _matmul_groups(schedule)
    # Per-base-buffer liveness: a buffer is recyclable once every node
    # viewing it has died; buffers allocated by this engine (pool or
    # fresh) are the only recycle candidates — sources never are.
    buf_users: Dict[int, int] = {}
    owned: Dict[int, np.ndarray] = {}

    def base_of(mat: np.ndarray) -> np.ndarray:
        return mat if mat.base is None else mat.base

    def attach(node: LazyNode, mat: np.ndarray) -> None:
        node.mat = mat
        b = base_of(mat)
        buf_users[id(b)] = buf_users.get(id(b), 0) + 1

    def release(node: LazyNode) -> None:
        mat = node.mat
        if mat is None:
            return
        b = base_of(mat)
        remaining = buf_users.get(id(b), 0) - 1
        buf_users[id(b)] = remaining
        if remaining <= 0 and id(b) in owned:
            _POOL.give(owned.pop(id(b)))
        node.mat = None

    def out_buffer(node: LazyNode, mats: Sequence[np.ndarray]) -> Optional[np.ndarray]:
        if node.op in ("reshape", "transpose", "segment_sum"):
            return None  # view ops / ops that allocate internally
        shape, dtype = node.shape, node.dtype
        if node.op in _INPLACE_SAFE:
            candidates = list(zip(node.srcs, mats))
            if node.op == "stack_max":
                # Only operands 0/1 may alias the output: the kernel
                # writes maximum(mats[0], mats[1]) into out before it
                # reads mats[2:], so a dying operand at index >= 2
                # would be clobbered before its contribution is taken.
                candidates = candidates[:2]
            for src, mat in candidates:
                if (
                    refs.get(id(src), 0) == 1
                    and id(src) in scheduled
                    and mat.shape == shape
                    and mat.dtype == dtype
                    and buf_users.get(id(base_of(mat)), 0) == 1
                    and id(base_of(mat)) in owned
                ):
                    return mat
        buf = _POOL.take(shape, dtype)
        owned.setdefault(id(base_of(buf)), base_of(buf))
        return buf

    for node in schedule:
        if node.mat is not None:  # filled by an earlier stacked gemm
            for src in node.srcs:
                if refs.get(id(src), 0) > 0:
                    refs[id(src)] -= 1
                    if refs[id(src)] == 0 and id(src) in scheduled:
                        release(src)
            continue
        t0 = perf_counter() if prof is not None else 0.0
        members = groups.get(id(node))
        if members is not None:
            lhs = node.srcs[0].mat
            cat, offsets = _stacked_weights([m.srcs[1].mat for m in members], node.dtype)
            wide = _POOL.take((lhs.shape[0], cat.shape[1]), node.dtype)
            owned.setdefault(id(base_of(wide)), base_of(wide))
            if wide.flags.c_contiguous:
                np.matmul(lhs, cat, out=wide)
            else:  # pragma: no cover - pool always hands back contiguous
                wide = lhs @ cat
            for member, start, stop in zip(members, offsets[:-1], offsets[1:]):
                attach(member, wide[:, start:stop])
            if prof is not None:
                prof.add("matmul_stacked", perf_counter() - t0, count=len(members))
        else:
            mats = [src.mat for src in node.srcs]
            out = out_buffer(node, mats)
            result = _run_node(node, mats, out)
            b = base_of(result)
            if out is not None and b is not base_of(out) and id(base_of(out)) in owned:
                # kernel declined the buffer (shape/contiguity); recycle it
                users = buf_users.get(id(base_of(out)), 0)
                if users == 0:
                    _POOL.give(owned.pop(id(base_of(out))))
            if result.base is None and id(b) not in owned and node.op != "source":
                if not any(result is m or result.base is m for m in mats):
                    owned.setdefault(id(b), b)
            attach(node, result)
            if prof is not None:
                prof.add(node.op, perf_counter() - t0)
        for src in node.srcs:
            if refs.get(id(src), 0) > 0:
                refs[id(src)] -= 1
                if refs[id(src)] == 0 and id(src) in scheduled:
                    release(src)

    if prof is not None:
        prof.add_realize(perf_counter() - t_start, len(schedule))
