"""Graph data containers and mini-batching.

:class:`GraphData` is one design point's encoded graph plus its targets;
:class:`Batch` concatenates several graphs into one disjoint union with

* edges sorted by destination node (so message aggregation is a fast
  sorted segment sum),
* self-loop edges appended (PyG-style), carrying a dedicated feature bit
  in the last-but-one edge-attribute slot being zero flow — they are
  distinguishable by their zero flow one-hot,
* a node→graph segment layout for global pooling.

:class:`DataLoader` shuffles and yields batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence

import numpy as np

from ..errors import NNError
from .tensor import IndexPlan, Segments

__all__ = ["GraphData", "Batch", "DataLoader"]


@dataclass
class GraphData:
    """One encoded graph sample.

    Attributes
    ----------
    x:
        (N, F) node features.
    edge_index:
        (2, E) int64 (src, dst).
    edge_attr:
        (E, D) edge features.
    y:
        Regression targets by objective name (already normalised).
    label:
        Classification label (1 = valid design).
    kernel, point_key:
        Provenance for splits and deduplication.
    """

    x: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray
    y: Dict[str, float] = field(default_factory=dict)
    label: int = 1
    kernel: str = ""
    point_key: str = ""
    extras: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]


class Batch:
    """Disjoint union of graphs, ready for message passing."""

    def __init__(
        self,
        x: np.ndarray,
        edge_src: np.ndarray,
        edge_attr: np.ndarray,
        edge_segments: Segments,
        node_segments: Segments,
        graphs: Sequence[GraphData],
    ):
        self.x = x
        self.edge_src = edge_src
        self.edge_attr = edge_attr
        self.edge_segments = edge_segments  # edges grouped by dst node
        self.node_segments = node_segments  # nodes grouped by graph
        self.graphs = list(graphs)
        #: Precomputed gather/scatter plans (reused every layer/epoch).
        self.src_plan = IndexPlan(edge_src, x.shape[0])
        self.dst_plan = edge_segments.plan

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_edges(self) -> int:
        return self.edge_src.shape[0]

    def targets(self, names: Sequence[str]) -> np.ndarray:
        """Stack regression targets into a (G, len(names)) matrix."""
        return np.array(
            [[g.y[name] for name in names] for g in self.graphs], dtype=np.float64
        )

    def labels(self) -> np.ndarray:
        return np.array([g.label for g in self.graphs], dtype=np.int64)

    def extra_matrix(self, name: str) -> np.ndarray:
        """Stack one per-graph extra feature vector into (G, D)."""
        return np.stack([g.extras[name] for g in self.graphs]).astype(np.float64)

    @staticmethod
    def from_graphs(graphs: Sequence[GraphData], add_self_loops: bool = True) -> "Batch":
        """Concatenate graphs; sort edges by destination; add self loops."""
        graphs = list(graphs)
        if not graphs:
            raise NNError("cannot batch zero graphs")
        edge_dim = graphs[0].edge_attr.shape[1] if graphs[0].edge_attr.ndim == 2 else 0
        xs, srcs, dsts, attrs, node_graph = [], [], [], [], []
        offset = 0
        for gi, g in enumerate(graphs):
            xs.append(g.x)
            srcs.append(g.edge_index[0] + offset)
            dsts.append(g.edge_index[1] + offset)
            attrs.append(g.edge_attr)
            if add_self_loops:
                loops = np.arange(g.num_nodes, dtype=np.int64) + offset
                srcs.append(loops)
                dsts.append(loops)
                attrs.append(np.zeros((g.num_nodes, edge_dim), dtype=np.float32))
            node_graph.append(np.full(g.num_nodes, gi, dtype=np.int64))
            offset += g.num_nodes
        from .tensor import get_default_dtype

        dtype = get_default_dtype()
        x = np.concatenate(xs, axis=0).astype(dtype)
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        attr = np.concatenate(attrs, axis=0).astype(dtype)
        order = np.argsort(dst, kind="stable")
        src, dst, attr = src[order], dst[order], attr[order]
        edge_segments = Segments(dst, num_segments=offset)
        node_segments = Segments(np.concatenate(node_graph), num_segments=len(graphs))
        return Batch(x, src, attr, edge_segments, node_segments, graphs)


class DataLoader:
    """Shuffling mini-batch iterator over :class:`GraphData` samples."""

    def __init__(
        self,
        dataset: Sequence[GraphData],
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        add_self_loops: bool = True,
    ):
        self.dataset = list(dataset)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.add_self_loops = add_self_loops
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = [self.dataset[i] for i in order[start : start + self.batch_size]]
            yield Batch.from_graphs(chunk, add_self_loops=self.add_self_loops)
