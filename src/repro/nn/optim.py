"""Optimizers: Adam (the paper's choice) and SGD."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "Adam", "SGD"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — lr=0.001 matches Section 5.1."""

    def __init__(
        self,
        parameters,
        lr: float = 0.001,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
