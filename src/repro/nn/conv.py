"""Graph convolution layers: GCN, GAT, TransformerConv.

Implements the three layer families the paper compares (Table 2, M3–M5):

* :class:`GCNConv` — Kipf & Welling (Eq. 1): degree-normalised sum.
* :class:`GATConv` — Veličković et al. (Eqs. 2–3): additive attention.
* :class:`TransformerConv` — Shi et al. (Eq. 8): dot-product attention
  with **edge features** and a **gated residual** connection, the
  building block GNN-DSE adopts.

All layers consume a :class:`~repro.nn.data.Batch` whose edges are
sorted by destination and already include self loops.  Multi-head
attention is computed on 3-D ``(E, heads, head_dim)`` tensors — no
per-head Python loops — and gathers use the batch's precomputed
:class:`~repro.nn.tensor.IndexPlan` for fast scatter-add backward.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import NNError
from .data import Batch
from .module import Linear, Module
from .tensor import Tensor, concat

__all__ = ["GCNConv", "GATConv", "TransformerConv"]


class GCNConv(Module):
    """Graph convolution with symmetric degree normalisation (Eq. 1)."""

    def __init__(self, in_dim: int, out_dim: int, rng=None):
        super().__init__()
        self.lin = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, batch: Batch) -> Tensor:
        h = self.lin(x)
        # In-degree including self loops (self edges are in the batch).
        deg = np.maximum(batch.edge_segments.counts.astype(np.float64), 1.0)
        norm = 1.0 / np.sqrt(deg[batch.edge_src] * deg[batch.edge_segments.ids])
        messages = h.gather_rows(batch.src_plan) * Tensor(norm[:, None])
        return messages.segment_sum(batch.edge_segments)


class GATConv(Module):
    """Multi-head additive graph attention (Eqs. 2–3).

    Head outputs are concatenated, so ``out_dim`` must be divisible by
    ``heads``.
    """

    def __init__(self, in_dim: int, out_dim: int, heads: int = 4, rng=None, leaky_slope: float = 0.2):
        super().__init__()
        if out_dim % heads:
            raise NNError(f"out_dim {out_dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.heads = heads
        self.head_dim = out_dim // heads
        self.out_dim = out_dim
        self.leaky_slope = leaky_slope
        self.lin = Linear(in_dim, out_dim, rng=rng)
        # The attention vector a, split into source/destination halves,
        # expressed as two Linear maps onto one score per head.
        self.att_src = Linear(out_dim, heads, bias=False, rng=rng)
        self.att_dst = Linear(out_dim, heads, bias=False, rng=rng)

    def forward(self, x: Tensor, batch: Batch) -> Tensor:
        num_nodes = batch.num_nodes
        h = self.lin(x)  # (N, H*D)
        # Per-head additive scores: a_src·h_i + a_dst·h_j.  The Linear
        # maps are block-diagonal in effect because each head's score
        # should only read its own slice; emulate that by masking the
        # weight at init time would complicate things — instead compute
        # scores from the full h, which is the "shared attention" GAT
        # variant and keeps the same qualitative behaviour.
        alpha_src = self.att_src(h)  # (N, H)
        alpha_dst = self.att_dst(h)  # (N, H)
        scores = (
            alpha_src.gather_rows(batch.src_plan)
            + alpha_dst.gather_rows(batch.dst_plan)
        ).leaky_relu(self.leaky_slope)  # (E, H)
        att = scores.segment_softmax(batch.edge_segments)  # (E, H)
        messages = h.gather_rows(batch.src_plan).reshape(-1, self.heads, self.head_dim)
        weighted = messages * att.reshape(-1, self.heads, 1)
        agg = weighted.segment_sum(batch.edge_segments)  # (N, H, D)
        return agg.reshape(num_nodes, self.out_dim)


class TransformerConv(Module):
    """Dot-product graph attention with edge features (Eq. 8).

    Follows Shi et al. / PyTorch-Geometric's ``TransformerConv``:

    * per-head attention ``softmax((W1 h_i)ᵀ (W2 h_j + W3 e_ij) / √d)``;
    * messages ``W2 h_j + W3 e_ij`` weighted by attention;
    * gated residual ``out = β · (W_r h_i) + (1-β) · aggregated`` with
      ``β = σ(w ·[agg; root; agg − root])``, preventing over-smoothing.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 4,
        edge_dim: Optional[int] = None,
        beta: bool = True,
        rng=None,
    ):
        super().__init__()
        if out_dim % heads:
            raise NNError(f"out_dim {out_dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.heads = heads
        self.head_dim = out_dim // heads
        self.out_dim = out_dim
        self.edge_dim = edge_dim
        self.beta = beta
        self.lin_query = Linear(in_dim, out_dim, rng=rng)
        self.lin_key = Linear(in_dim, out_dim, rng=rng)
        self.lin_value = Linear(in_dim, out_dim, rng=rng)
        self.lin_edge = Linear(edge_dim, out_dim, bias=False, rng=rng) if edge_dim else None
        self.lin_root = Linear(in_dim, out_dim, rng=rng)
        self.lin_beta = Linear(3 * out_dim, 1, rng=rng) if beta else None

    def forward(self, x: Tensor, batch: Batch) -> Tensor:
        num_nodes = batch.num_nodes
        H, D = self.heads, self.head_dim
        q = self.lin_query(x).gather_rows(batch.dst_plan).reshape(-1, H, D)
        k = self.lin_key(x).gather_rows(batch.src_plan).reshape(-1, H, D)
        v = self.lin_value(x).gather_rows(batch.src_plan).reshape(-1, H, D)
        if self.lin_edge is not None:
            # Edge attributes are constant across design points for one
            # kernel, so a batch may carry a memoizing ``edge_projection``
            # hook (the fused DSE template does) that computes
            # ``lin_edge(edge_attr)`` once and reuses it every forward.
            project = getattr(batch, "edge_projection", None)
            if project is not None:
                e = project(self.lin_edge).reshape(-1, H, D)
            else:
                e = self.lin_edge(Tensor(batch.edge_attr)).reshape(-1, H, D)
            k = k + e
            v = v + e
        scale = 1.0 / math.sqrt(D)
        scores = (q * k).sum(axis=2) * scale  # (E, H)
        att = scores.segment_softmax(batch.edge_segments)  # (E, H)
        weighted = v * att.reshape(-1, H, 1)
        aggregated = weighted.segment_sum(batch.edge_segments).reshape(num_nodes, self.out_dim)

        root = self.lin_root(x)
        if self.lin_beta is None:
            return aggregated + root
        gate_in = concat([aggregated, root, aggregated - root], axis=1)
        beta = self.lin_beta(gate_in).sigmoid()  # (N, 1)
        return root * beta + aggregated * (1.0 - beta)
