"""Numpy deep-learning stack (the PyTorch/PyG substitute).

- :mod:`repro.nn.tensor` — vectorized reverse-mode autograd;
- :mod:`repro.nn.module` — parameters, Linear/MLP, activations;
- :mod:`repro.nn.conv` — GCNConv / GATConv / TransformerConv;
- :mod:`repro.nn.pooling` — sum and node-attention readout;
- :mod:`repro.nn.jkn` — Jumping Knowledge aggregation;
- :mod:`repro.nn.optim` / :mod:`repro.nn.loss` — Adam/SGD, losses;
- :mod:`repro.nn.data` — graph batching with sorted segment layout.
"""

from .conv import GATConv, GCNConv, TransformerConv
from .data import Batch, DataLoader, GraphData
from .jkn import JumpingKnowledge
from .loss import binary_accuracy, cross_entropy, f1_score, mse_loss, rmse
from .module import (
    ELU,
    MLP,
    Dropout,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    glorot,
)
from .optim import SGD, Adam, Optimizer
from .pooling import NodeAttentionPool, SumPool
from .tensor import Segments, Tensor, concat, no_grad, stack_max

__all__ = [
    "GATConv",
    "GCNConv",
    "TransformerConv",
    "Batch",
    "DataLoader",
    "GraphData",
    "JumpingKnowledge",
    "binary_accuracy",
    "cross_entropy",
    "f1_score",
    "mse_loss",
    "rmse",
    "ELU",
    "MLP",
    "Dropout",
    "Identity",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "Tanh",
    "glorot",
    "SGD",
    "Adam",
    "Optimizer",
    "NodeAttentionPool",
    "SumPool",
    "Segments",
    "Tensor",
    "concat",
    "no_grad",
    "stack_max",
]
