"""Module system: parameters, Linear/MLP layers, activations.

A light mirror of ``torch.nn``: modules register parameters and
sub-modules by attribute assignment and expose :meth:`parameters` /
:meth:`state_dict` / :meth:`load_state_dict`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from ..errors import NNError
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "ELU",
    "LeakyReLU",
    "Tanh",
    "Identity",
    "MLP",
    "glorot",
]


def glorot(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Parameter(Tensor):
    """A tensor registered as trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with automatic parameter/sub-module registration."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_modules(self, name: str, modules: Sequence["Module"]) -> List["Module"]:
        """Register a list of sub-modules (like nn.ModuleList)."""
        for i, module in enumerate(modules):
            self._modules[f"{name}.{i}"] = module
        return list(modules)

    def parameters(self) -> Iterator[Parameter]:
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise NNError(f"state dict missing parameters: {sorted(missing)}")
        unexpected = set(state) - set(own)
        if unexpected:
            raise NNError(
                f"state dict has unexpected parameters: {sorted(unexpected)[:8]}"
            )
        for name, param in own.items():
            # Cast to the parameter's own dtype (the engine default the
            # model was built with): a float32 model must predict the
            # same values after a save/load round-trip as before it,
            # and mixed float32/float64 parameters would silently
            # change every op's accumulation dtype.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise NNError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered * (variance + self.eps).pow(-0.5)
        return normalised * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or with p=0."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise NNError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class LeakyReLU(Module):
    def __init__(self, alpha: float = 0.01):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.alpha)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = self.register_modules("layers", modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``dims = [in, h1, ..., out]``; the activation is applied between
    layers (not after the last).
    """

    def __init__(self, dims: Sequence[int], activation: str = "elu", rng=None):
        super().__init__()
        if len(dims) < 2:
            raise NNError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        layers: List[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            if i < len(dims) - 2:
                layers.append(_make_activation(activation))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


def _make_activation(name: str) -> Module:
    table = {
        "relu": ReLU,
        "elu": ELU,
        "leaky_relu": LeakyReLU,
        "tanh": Tanh,
        "identity": Identity,
    }
    try:
        return table[name]()
    except KeyError:
        raise NNError(f"unknown activation {name!r}") from None
