"""Jumping Knowledge Network aggregation (Xu et al., Eq. 9).

Combines the node embeddings produced by every GNN layer so each node
can draw on whichever neighbourhood radius suits it.  The paper uses
max-pooling over layers; ``last`` (identity on the final layer) is kept
for the ablation study.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import NNError
from .module import Module
from .tensor import Tensor, concat, stack_max

__all__ = ["JumpingKnowledge"]


class JumpingKnowledge(Module):
    """Layer-output aggregator: ``max`` (paper), ``last``, or ``cat``."""

    def __init__(self, mode: str = "max"):
        super().__init__()
        if mode not in ("max", "last", "cat"):
            raise NNError(f"unknown JKN mode {mode!r}")
        self.mode = mode

    def forward(self, layer_outputs: Sequence[Tensor]) -> Tensor:
        outputs: List[Tensor] = list(layer_outputs)
        if not outputs:
            raise NNError("JumpingKnowledge needs at least one layer output")
        if self.mode == "last":
            return outputs[-1]
        if self.mode == "cat":
            return concat(outputs, axis=1)
        return stack_max(outputs)
