"""Evaluator: the HLS tool wrapped with database commit and accounting.

Implements the Evaluator box of Fig. 2.  Every evaluation is committed
to the shared database, and simulated tool wall-clock is accumulated so
explorers can run against the same time budgets the paper uses (e.g.
AutoDSE's 21 hours with a fixed number of parallel workers).
"""

from __future__ import annotations

from typing import List, Sequence

from ..designspace.space import DesignPoint
from ..hls.report import HLSResult
from ..hls.tool import MerlinHLSTool
from ..kernels.base import KernelSpec
from .database import Database, DesignRecord

__all__ = ["Evaluator"]


class Evaluator:
    """HLS evaluation with database commit and simulated-time tracking.

    Parameters
    ----------
    tool:
        The (simulated) Merlin+HLS tool.
    database:
        Shared design database to commit results into.
    parallelism:
        Number of concurrent synthesis jobs the flow may run — AutoDSE
        evaluates a batch of candidates in parallel, so elapsed time is
        total synthesis seconds divided by this, batch-wise.
    """

    def __init__(self, tool: MerlinHLSTool, database: Database, parallelism: int = 8):
        self.tool = tool
        self.database = database
        self.parallelism = max(parallelism, 1)
        self.synth_seconds_total = 0.0
        self.elapsed_seconds = 0.0
        self.evaluations = 0
        self._batch_slots = [0.0] * self.parallelism

    def evaluate(
        self,
        spec: KernelSpec,
        point: DesignPoint,
        source: str = "",
        round: int = 0,
        created: float = 0.0,
    ) -> HLSResult:
        """Synthesize one point and commit the outcome to the database."""
        result = self.tool.synthesize(spec, point)
        self.evaluations += 1
        self.synth_seconds_total += result.synth_seconds
        # Greedy multi-worker schedule: assign to the earliest-free slot.
        slot = min(range(self.parallelism), key=lambda i: self._batch_slots[i])
        self._batch_slots[slot] += result.synth_seconds
        self.elapsed_seconds = max(self._batch_slots)
        record = DesignRecord.from_result(
            result, point, source=source, round=round, created=created
        )
        self.database.add(record)
        return result

    def evaluate_batch(
        self,
        spec: KernelSpec,
        points: Sequence[DesignPoint],
        source: str = "",
        round: int = 0,
        created: float = 0.0,
    ) -> List[HLSResult]:
        """Synthesize a batch of points, scheduled over the worker slots.

        Order-preserving; equivalent to calling :meth:`evaluate` per
        point (the greedy earliest-free-slot schedule is the same), but
        the natural unit for DSE loops that validate a predicted top-M
        in one parallel synthesis round.
        """
        return [
            self.evaluate(spec, point, source=source, round=round, created=created)
            for point in points
        ]

    @property
    def elapsed_hours(self) -> float:
        return self.elapsed_seconds / 3600.0

    def reset_clock(self) -> None:
        self.synth_seconds_total = 0.0
        self.elapsed_seconds = 0.0
        self._batch_slots = [0.0] * self.parallelism
