"""The shared design database (Fig. 2's "Training Database").

Stores one :class:`DesignRecord` per (kernel, design point) with the
HLS outcome, which explorer produced it, and in which DSE round it was
added (round 0 = initial database, rounds 1+ = Fig. 7 augmentation).
JSON-serialisable for persistence.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..designspace.space import DesignPoint, point_key
from ..errors import DatabaseError
from ..frontend.pragmas import PipelineOption
from ..hls.device import DEFAULT_DEVICE
from ..hls.report import HLSResult

__all__ = ["DesignRecord", "Database", "serialize_point", "deserialize_point"]


def serialize_point(point: DesignPoint) -> Dict[str, object]:
    """JSON-friendly form of a design point."""
    out = {}
    for name, value in point.items():
        out[name] = value.value if isinstance(value, PipelineOption) else int(value)
    return out


def deserialize_point(raw: Dict[str, object]) -> DesignPoint:
    """Inverse of :func:`serialize_point`."""
    out: DesignPoint = {}
    for name, value in raw.items():
        if isinstance(value, str):
            out[name] = PipelineOption(value)
        else:
            out[name] = int(value)
    return out


@dataclass
class DesignRecord:
    """One evaluated design point."""

    kernel: str
    point: Dict[str, object]  # serialized form
    point_key: str
    valid: bool
    latency: int
    utilization: Dict[str, float]
    synth_seconds: float
    invalid_reason: Optional[str] = None
    source: str = ""  # which explorer produced it
    round: int = 0  # 0 = initial DB; 1+ = DSE augmentation rounds
    created: float = 0.0  # unix timestamp the label was committed (0 = unknown)
    #: Registered device the label was synthesized for.  "" (records
    #: predating device provenance) means the reference device.
    device: str = ""

    @property
    def design_point(self) -> DesignPoint:
        return deserialize_point(self.point)

    def objectives(self) -> Dict[str, float]:
        return {"latency": float(self.latency), **self.utilization}

    @staticmethod
    def from_result(
        result: HLSResult,
        point: DesignPoint,
        source: str = "",
        round: int = 0,
        created: float = 0.0,
    ) -> "DesignRecord":
        return DesignRecord(
            kernel=result.kernel,
            point=serialize_point(point),
            point_key=result.point_key,
            valid=result.valid,
            latency=result.latency,
            utilization=dict(result.utilization),
            synth_seconds=result.synth_seconds,
            invalid_reason=result.invalid_reason,
            source=source,
            round=round,
            created=created,
            device=getattr(result, "device", ""),
        )


def _record_key(kernel: str, device: str, key: str) -> Tuple[str, str, str]:
    """Canonical record key: "" device provenance means the reference
    device, so legacy records and explicit reference-device records
    collide (they label the same synthesis run)."""
    return (kernel, device or DEFAULT_DEVICE.name, key)


class Database:
    """Keyed store of design records, shared across applications.

    Records are keyed by (kernel, device, point), so the same design
    point synthesized for two different targets is two records.
    """

    def __init__(self):
        self._records: Dict[Tuple[str, str, str], DesignRecord] = {}
        #: How many records a newer-round label has replaced (via
        #: :meth:`add` or :meth:`merge`).  Not persisted — it describes
        #: this in-memory instance's mutation history.
        self.overwrites = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DesignRecord]:
        return iter(self._records.values())

    def __contains__(self, key: Tuple[str, ...]) -> bool:
        # Accept legacy (kernel, point_key) pairs — they mean the
        # reference device — alongside full (kernel, device, point_key)
        # triples.
        if len(key) == 2:
            return _record_key(key[0], "", key[1]) in self._records
        return _record_key(*key) in self._records

    def has(self, kernel: str, point: DesignPoint, device: str = "") -> bool:
        return _record_key(kernel, device, point_key(point)) in self._records

    def add(self, record: DesignRecord) -> bool:
        """Insert a record; returns False when the point was already known.

        Conflict semantics: when the same (kernel, point) arrives again
        from a *later* round — e.g. the active-learning loop re-labels a
        point the seed database already had — the newer label wins and
        :attr:`overwrites` is incremented.  A duplicate from the same or
        an earlier round keeps the existing record (first-write-wins
        within a round, so re-running a round is idempotent).  Returns
        True only for genuinely new points.
        """
        key = _record_key(record.kernel, record.device, record.point_key)
        existing = self._records.get(key)
        if existing is not None:
            if record.round > existing.round:
                self._records[key] = record
                self.overwrites += 1
            return False
        self._records[key] = record
        return True

    def get(self, kernel: str, key: str, device: str = "") -> DesignRecord:
        try:
            return self._records[_record_key(kernel, device, key)]
        except KeyError:
            name = device or DEFAULT_DEVICE.name
            raise DatabaseError(f"no record for {kernel}/{name}/{key}") from None

    def for_kernel(self, kernel: str) -> List[DesignRecord]:
        return [r for r in self._records.values() if r.kernel == kernel]

    def kernels(self) -> List[str]:
        return sorted({r.kernel for r in self._records.values()})

    def valid_records(self, kernel: Optional[str] = None) -> List[DesignRecord]:
        return [
            r
            for r in self._records.values()
            if r.valid and (kernel is None or r.kernel == kernel)
        ]

    def best_valid(self, kernel: str, fit_threshold: float = 0.8) -> Optional[DesignRecord]:
        """Lowest-latency valid record that fits the device budget."""
        candidates = [
            r
            for r in self.valid_records(kernel)
            if all(u < fit_threshold for u in r.utilization.values())
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.latency)

    def stats(self, kernel: Optional[str] = None, max_round: Optional[int] = None) -> Dict[str, int]:
        """(total, valid) counts, optionally filtered by kernel/round."""
        records = [
            r
            for r in self._records.values()
            if (kernel is None or r.kernel == kernel)
            and (max_round is None or r.round <= max_round)
        ]
        return {"total": len(records), "valid": sum(1 for r in records if r.valid)}

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Atomically write the database as JSON.

        The payload goes to a sibling temp file first and is moved over
        ``path`` with ``os.replace``, so a crash mid-write (out of disk,
        SIGKILL, power loss) can never leave a truncated database — the
        previous file survives intact until the rename commits.
        """
        path = Path(path)
        payload = json.dumps([asdict(r) for r in self._records.values()], indent=1)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @staticmethod
    def load(path) -> "Database":
        db = Database()
        for raw in json.loads(Path(path).read_text()):
            db.add(DesignRecord(**raw))
        return db

    def merge(self, other: "Database") -> int:
        """Add all records from ``other``; returns how many were new.

        Conflicts follow :meth:`add`: a colliding record from a later
        round replaces the existing label (counted in
        :attr:`overwrites`) but does not count as new.
        """
        added = 0
        for record in other:
            if self.add(record):
                added += 1
        return added
