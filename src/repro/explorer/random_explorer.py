"""Random explorer: uniform sampling of the (canonical) design space.

The third database-generation explorer of Section 4.1 — it visits
configurations the directed explorers skip, giving the model the "bad"
side of the distribution it needs to learn validity and low quality.
"""

from __future__ import annotations

import random
from typing import Optional

from ..designspace.space import DesignSpace, point_key
from ..kernels.base import KernelSpec
from .bottleneck import ExplorationResult
from .evaluator import Evaluator

__all__ = ["RandomExplorer"]


class RandomExplorer:
    """Seeded random sampler committing every evaluation to the database."""

    def __init__(
        self,
        spec: KernelSpec,
        space: DesignSpace,
        evaluator: Evaluator,
        fit_threshold: float = 0.8,
        seed: int = 2,
    ):
        self.spec = spec
        self.space = space
        self.evaluator = evaluator
        self.fit_threshold = fit_threshold
        self.rng = random.Random(seed)

    def run(
        self, max_evals: int = 100, max_hours: Optional[float] = None, round: int = 0
    ) -> ExplorationResult:
        start_clock = self.evaluator.elapsed_seconds
        seen = set()
        best_point, best_latency = None, None
        attempts = 0
        while len(seen) < max_evals and attempts < max_evals * 20:
            attempts += 1
            if max_hours is not None:
                elapsed = (self.evaluator.elapsed_seconds - start_clock) / 3600.0
                if elapsed >= max_hours:
                    break
            point = self.space.sample(self.rng, 1)[0]
            key = point_key(point)
            if key in seen or self.evaluator.database.has(self.spec.name, point):
                continue
            seen.add(key)
            result = self.evaluator.evaluate(self.spec, point, source="random", round=round)
            if result.valid and result.fits(self.fit_threshold):
                if best_latency is None or result.latency < best_latency:
                    best_point, best_latency = point, result.latency
        return ExplorationResult(
            best_point=best_point,
            best_latency=best_latency,
            evaluations=len(seen),
            elapsed_hours=(self.evaluator.elapsed_seconds - start_clock) / 3600.0,
        )
