"""Database-generation runner (Fig. 2 end to end).

Builds the initial training database by running the three explorers of
Section 4.1 on every training kernel.  Per-kernel evaluation targets
default to (a scaled version of) the paper's Table 1 initial-database
sizes, split across the explorers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..designspace.generator import build_design_space
from ..hls.tool import MerlinHLSTool
from ..kernels import TRAINING_KERNELS, get_kernel
from .bottleneck import BottleneckExplorer
from .database import Database
from .evaluator import Evaluator
from .hybrid import HybridExplorer
from .random_explorer import RandomExplorer

__all__ = ["DEFAULT_TARGETS", "generate_database"]

#: Target evaluated-design counts per kernel, from Table 1's initial DB.
DEFAULT_TARGETS: Dict[str, int] = {
    "aes": 15,
    "atax": 605,
    "gemm-blocked": 616,
    "gemm-ncubed": 432,
    "mvt": 571,
    "spmv-crs": 98,
    "spmv-ellpack": 114,
    "stencil": 1066,
    "nw": 911,
}

#: Fraction of each kernel's budget given to (bottleneck, hybrid, random).
_SPLIT = (0.25, 0.30, 0.45)


def generate_database(
    kernels=None,
    targets: Optional[Dict[str, int]] = None,
    tool: Optional[MerlinHLSTool] = None,
    database: Optional[Database] = None,
    scale: float = 1.0,
    seed: int = 0,
    fit_threshold: float = 0.8,
) -> Database:
    """Run the three explorers on every kernel; return the shared DB.

    Parameters
    ----------
    kernels:
        Kernel names (defaults to the nine training kernels).
    targets:
        Per-kernel evaluation targets (defaults to Table 1 counts).
    scale:
        Multiplier on all targets, for fast test/CI runs.
    """
    kernels = list(kernels or TRAINING_KERNELS)
    targets = dict(targets or DEFAULT_TARGETS)
    tool = tool or MerlinHLSTool()
    database = database if database is not None else Database()

    for index, name in enumerate(kernels):
        spec = get_kernel(name)
        space = build_design_space(spec)
        evaluator = Evaluator(tool, database)
        target = max(int(targets.get(name, 200) * scale), 4)
        space_size = space.product_size()
        target = min(target, space_size)
        counts = [max(int(target * f), 1) for f in _SPLIT]

        before = database.stats(kernel=name)["total"]
        bottleneck = BottleneckExplorer(
            spec, space, evaluator, fit_threshold, seed=seed + index
        )
        bottleneck.run(max_evals=counts[0])
        hybrid = HybridExplorer(
            spec, space, evaluator, fit_threshold, seed=seed + index + 100
        )
        hybrid._seen = set(bottleneck._seen)  # don't re-pay for known points
        hybrid.run(max_evals=counts[0] + counts[1])
        remaining = target - (database.stats(kernel=name)["total"] - before)
        if remaining > 0:
            random_explorer = RandomExplorer(
                spec, space, evaluator, fit_threshold, seed=seed + index + 200
            )
            random_explorer.run(max_evals=remaining)
    return database
