"""Hybrid explorer: bottleneck optimisation + local search.

The second database-generation explorer of Section 4.1: after the
bottleneck optimiser improves the best design's quality by at least
``improvement_threshold`` (the paper's X%), it additionally evaluates up
to ``neighbor_budget`` (the paper's P) one-knob neighbours of the new
best point — so the model sees the effect of modifying only one pragma.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..designspace.space import DesignPoint, DesignSpace
from ..hls.report import HLSResult
from ..kernels.base import KernelSpec
from .bottleneck import BottleneckExplorer
from .evaluator import Evaluator

__all__ = ["HybridExplorer"]


class HybridExplorer(BottleneckExplorer):
    """Bottleneck optimiser with neighbour sampling on improvements."""

    def __init__(
        self,
        spec: KernelSpec,
        space: DesignSpace,
        evaluator: Evaluator,
        fit_threshold: float = 0.8,
        improvement_threshold: float = 0.10,
        neighbor_budget: int = 8,
        seed: int = 1,
    ):
        super().__init__(
            spec, space, evaluator, fit_threshold, source="hybrid", seed=seed
        )
        self.improvement_threshold = improvement_threshold
        self.neighbor_budget = neighbor_budget

    def _on_improvement(
        self, point: DesignPoint, before: float, after: float, round: int
    ) -> Optional[Tuple[DesignPoint, HLSResult]]:
        # Relative quality improvement (scores are latencies; inf = unusable).
        if before != float("inf"):
            gain = (before - after) / before
            if gain < self.improvement_threshold:
                return None
        neighbors = self.space.neighbors(point)
        self.rng.shuffle(neighbors)
        best: Optional[Tuple[DesignPoint, HLSResult]] = None
        for neighbor in neighbors[: self.neighbor_budget]:
            result = self._evaluate(neighbor, round)
            if result is None:
                continue
            score = self._score(result)
            if score < after and (best is None or result.latency < best[1].latency):
                best = (neighbor, result)
        return best
