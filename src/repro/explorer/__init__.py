"""Database generation: explorers + shared design database (Section 4.1).

Three explorers populate the training database (Fig. 2): the
bottleneck-based optimiser (AutoDSE), a hybrid bottleneck+local-search
explorer, and a random explorer.  :func:`generate_database` runs all
three over the training kernels.
"""

from .bottleneck import BottleneckExplorer, ExplorationResult
from .coverage import CoverageReport, KnobCoverage, measure_coverage
from .database import Database, DesignRecord, deserialize_point, serialize_point
from .evaluator import Evaluator
from .hybrid import HybridExplorer
from .random_explorer import RandomExplorer
from .runner import DEFAULT_TARGETS, generate_database

__all__ = [
    "CoverageReport",
    "KnobCoverage",
    "measure_coverage",
    "BottleneckExplorer",
    "ExplorationResult",
    "Database",
    "DesignRecord",
    "deserialize_point",
    "serialize_point",
    "Evaluator",
    "HybridExplorer",
    "RandomExplorer",
    "DEFAULT_TARGETS",
    "generate_database",
]
