"""Database coverage metrics.

Section 4.4 argues the DSE "must have good representatives of all the
design choices in the database".  This module quantifies that: per-knob
marginal coverage (which candidate options of each knob the database
has actually evaluated), latency-spread statistics, and a combined
report the database-generation runner can use to decide whether the
random explorer should keep sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..designspace.space import DesignSpace
from .database import Database

__all__ = ["KnobCoverage", "CoverageReport", "measure_coverage"]


@dataclass
class KnobCoverage:
    """How well one knob's candidate options are represented."""

    knob: str
    candidates: int
    seen: int
    histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def fraction(self) -> float:
        return self.seen / self.candidates if self.candidates else 1.0


@dataclass
class CoverageReport:
    kernel: str
    records: int
    valid_records: int
    knobs: List[KnobCoverage] = field(default_factory=list)
    latency_decades: int = 0  # how many powers of ten the latencies span

    @property
    def min_knob_fraction(self) -> float:
        return min((k.fraction for k in self.knobs), default=0.0)

    @property
    def mean_knob_fraction(self) -> float:
        if not self.knobs:
            return 0.0
        return sum(k.fraction for k in self.knobs) / len(self.knobs)

    def pretty(self) -> str:
        lines = [
            f"coverage of {self.kernel}: {self.records} records "
            f"({self.valid_records} valid), latency spans "
            f"{self.latency_decades} decades"
        ]
        for knob in self.knobs:
            lines.append(
                f"  {knob.knob:16s} {knob.seen}/{knob.candidates} options seen "
                f"({knob.fraction:.0%})"
            )
        return "\n".join(lines)


def measure_coverage(
    database: Database, space: DesignSpace, kernel: Optional[str] = None
) -> CoverageReport:
    """Measure per-knob and latency coverage of a kernel's records."""
    kernel = kernel or space.kernel_name
    records = database.for_kernel(kernel)
    report = CoverageReport(
        kernel=kernel,
        records=len(records),
        valid_records=sum(1 for r in records if r.valid),
    )
    seen_values: Dict[str, Dict[str, int]] = {k.name: {} for k in space.knobs}
    for record in records:
        for name, value in record.point.items():
            if name in seen_values:
                key = str(value)
                seen_values[name][key] = seen_values[name].get(key, 0) + 1
    for knob in space.knobs:
        histogram = seen_values[knob.name]
        report.knobs.append(
            KnobCoverage(
                knob=knob.name,
                candidates=len(knob.candidates),
                seen=len(histogram),
                histogram=histogram,
            )
        )
    latencies = [r.latency for r in records if r.valid and r.latency > 0]
    if latencies:
        report.latency_decades = int(
            np.floor(np.log10(max(latencies))) - np.floor(np.log10(min(latencies)))
        )
    return report
