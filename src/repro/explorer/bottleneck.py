"""Bottleneck-based design-space explorer (AutoDSE's core strategy).

AutoDSE iteratively identifies the loop dominating the latency (the
*bottleneck*), tries progressively more aggressive pragma settings on
that loop, commits the best improvement, and repeats.  This is both the
Table 3 baseline and the first of the three database-generation
explorers of Section 4.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..designspace.space import DesignPoint, DesignSpace, Knob, point_key
from ..frontend.pragmas import PragmaKind
from ..hls.report import HLSResult, LoopReport
from ..kernels.base import KernelSpec
from .evaluator import Evaluator

__all__ = ["BottleneckExplorer", "ExplorationResult"]

#: Knob-kind priority per bottleneck type: what AutoDSE tries first.
_KIND_PRIORITY = {
    "memory": (PragmaKind.TILE, PragmaKind.PARALLEL, PragmaKind.PIPELINE),
    "dependence": (PragmaKind.PIPELINE, PragmaKind.TILE, PragmaKind.PARALLEL),
    "trip": (PragmaKind.PIPELINE, PragmaKind.PARALLEL, PragmaKind.TILE),
    "compute": (PragmaKind.PARALLEL, PragmaKind.PIPELINE, PragmaKind.TILE),
    "": (PragmaKind.PARALLEL, PragmaKind.PIPELINE, PragmaKind.TILE),
}


@dataclass
class ExplorationResult:
    """Outcome of one explorer run."""

    best_point: Optional[DesignPoint]
    best_latency: Optional[int]
    evaluations: int
    elapsed_hours: float
    trajectory: List[Tuple[str, int]] = field(default_factory=list)


class BottleneckExplorer:
    """Greedy bottleneck-driven optimisation over one kernel.

    Parameters
    ----------
    spec, space, evaluator:
        Kernel, its design space, and the committing evaluator.
    fit_threshold:
        Utilization ceiling for a design to count as an improvement
        (Eq. 7's T_u).
    source:
        Tag recorded on database entries.
    """

    def __init__(
        self,
        spec: KernelSpec,
        space: DesignSpace,
        evaluator: Evaluator,
        fit_threshold: float = 0.8,
        source: str = "bottleneck",
        seed: int = 0,
    ):
        self.spec = spec
        self.space = space
        self.evaluator = evaluator
        self.fit_threshold = fit_threshold
        self.source = source
        self.rng = random.Random(seed)
        self._seen: Set[str] = set()

    # -- scoring ---------------------------------------------------------------

    def _score(self, result: HLSResult) -> float:
        if result.valid and result.fits(self.fit_threshold):
            return float(result.latency)
        return float("inf")

    def _evaluate(self, point: DesignPoint, round: int) -> HLSResult:
        """Evaluate a point; already-seen points are served from the tool
        cache without consuming budget (AutoDSE memoises evaluations)."""
        key = point_key(point)
        if key in self._seen:
            return self.evaluator.tool.synthesize(self.spec, point)
        self._seen.add(key)
        return self.evaluator.evaluate(self.spec, point, source=self.source, round=round)

    # -- bottleneck selection ------------------------------------------------------

    @staticmethod
    def _ordered_bottlenecks(result: HLSResult) -> List[LoopReport]:
        loops = result.all_loops()
        return sorted(loops, key=lambda loop: loop.cycles, reverse=True)

    def _knobs_for_loop(self, report: LoopReport, bottleneck: str) -> List[Knob]:
        priority = {kind: i for i, kind in enumerate(_KIND_PRIORITY.get(bottleneck, _KIND_PRIORITY[""]))}
        knobs = [
            k
            for k in self.space.knobs
            if k.loop_label == report.label and k.function == report.function
        ]
        return sorted(knobs, key=lambda k: priority.get(k.kind, 9))

    def _more_aggressive(self, point: DesignPoint, knob: Knob) -> List[DesignPoint]:
        """Mutations of one knob toward more aggressive settings."""
        current = knob.index_of(point[knob.name])
        out = []
        for candidate in knob.candidates[current + 1 :]:
            mutated = dict(point)
            mutated[knob.name] = candidate
            if self.space.rules is not None:
                mutated = self.space.rules.canonicalize(mutated)
            out.append(mutated)
        return out

    # -- improvement hook (overridden by the hybrid explorer) ---------------------------

    def _on_improvement(
        self, point: DesignPoint, before: float, after: float, round: int
    ) -> Optional[Tuple[DesignPoint, HLSResult]]:
        """Called after each committed improvement; may return a better point."""
        return None

    # -- main loop ------------------------------------------------------------------

    def run(
        self,
        max_evals: int = 200,
        max_hours: Optional[float] = None,
        round: int = 0,
        start_point: Optional[DesignPoint] = None,
    ) -> ExplorationResult:
        """Explore until the evaluation or simulated-time budget runs out."""
        start_clock = self.evaluator.elapsed_seconds

        def out_of_budget() -> bool:
            if len(self._seen) >= max_evals:
                return True
            if max_hours is not None:
                elapsed = (self.evaluator.elapsed_seconds - start_clock) / 3600.0
                if elapsed >= max_hours:
                    return True
            return False

        point = dict(start_point) if start_point else self.space.default_point()
        result = self._evaluate(point, round)
        best_point, best_result = point, result
        best_score = self._score(result) if result else float("inf")
        trajectory: List[Tuple[str, int]] = []
        if result is not None:
            trajectory.append((point_key(point), result.latency))

        improved = True
        while improved and not out_of_budget():
            improved = False
            reference = best_result if best_result is not None else result
            if reference is None:
                break
            for report in self._ordered_bottlenecks(reference):
                if out_of_budget():
                    break
                committed = False
                for knob in self._knobs_for_loop(report, report.bottleneck):
                    candidates = self._more_aggressive(best_point, knob)
                    best_cand: Optional[Tuple[DesignPoint, HLSResult]] = None
                    for candidate in candidates:
                        if out_of_budget():
                            break
                        res = self._evaluate(candidate, round)
                        if res is None:
                            continue
                        if self._score(res) < best_score and (
                            best_cand is None or res.latency < best_cand[1].latency
                        ):
                            best_cand = (candidate, res)
                    if best_cand is not None:
                        before = best_score
                        best_point, best_result = best_cand
                        best_score = self._score(best_result)
                        trajectory.append((point_key(best_point), best_result.latency))
                        extra = self._on_improvement(best_point, before, best_score, round)
                        if extra is not None and self._score(extra[1]) < best_score:
                            best_point, best_result = extra
                            best_score = self._score(best_result)
                            trajectory.append((point_key(best_point), best_result.latency))
                        committed = True
                        improved = True
                        break
                if committed:
                    break  # re-derive bottlenecks from the new best design

        latency = best_result.latency if (best_result and best_score != float("inf")) else None
        return ExplorationResult(
            best_point=best_point if latency is not None else None,
            best_latency=latency,
            evaluations=len(self._seen),
            elapsed_hours=(self.evaluator.elapsed_seconds - start_clock) / 3600.0,
            trajectory=trajectory,
        )
