"""Render a design point back into concrete pragma-annotated C source.

The end product of GNN-DSE is not a number — it is the kernel source
with every ``auto{...}`` placeholder replaced by the chosen option,
ready for the Merlin compiler.  :func:`render_source` performs that
substitution (the "Pragma Fill" box of Fig. 3 applied to source text
instead of the graph), and :func:`render_point` gives a compact human-
readable summary of the choices per loop.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..frontend.pragmas import PipelineOption, PragmaKind
from ..kernels.base import KernelSpec
from .space import DesignPoint

__all__ = ["render_source", "render_point"]

_AUTO_RE = re.compile(r"auto\{([A-Za-z_][A-Za-z0-9_]*)\}")


def _option_text(value) -> str:
    if isinstance(value, PipelineOption):
        return value.value
    return str(int(value))


def render_source(spec: KernelSpec, point: DesignPoint) -> str:
    """Concrete kernel source for one design point.

    Placeholders present in the source but absent from ``point`` are
    substituted with their neutral option (pipeline ``off`` / factor 1),
    so partial points render to valid code.  Neutral pragmas are
    *dropped entirely* — Merlin treats a missing pragma and a neutral
    one identically, and the emitted file reads cleaner.
    """
    knob_kind: Dict[str, PragmaKind] = {p.name: p.kind for p in spec.pragmas}

    def substitute(match: re.Match) -> str:
        name = match.group(1)
        value = point.get(name)
        if value is None:
            kind = knob_kind.get(name)
            value = PipelineOption.OFF if kind is PragmaKind.PIPELINE else 1
        return _option_text(value)

    out_lines: List[str] = []
    for line in spec.source.split("\n"):
        rendered = _AUTO_RE.sub(substitute, line)
        stripped = rendered.strip()
        if stripped.startswith("#pragma ACCEL"):
            # Drop pragmas that ended up neutral.
            if stripped.endswith("factor=1") or stripped.endswith("pipeline off"):
                continue
        out_lines.append(rendered)
    return "\n".join(out_lines)


def render_point(spec: KernelSpec, point: DesignPoint) -> str:
    """One-line-per-loop summary of a design point's choices."""
    by_loop: Dict[str, List[str]] = {}
    for pragma in spec.pragmas:
        value = point.get(pragma.name)
        if value is None:
            continue
        text = f"{pragma.kind.keyword}={_option_text(value)}"
        by_loop.setdefault(f"{pragma.function}/{pragma.loop_label}", []).append(text)
    lines = []
    for loop in sorted(by_loop):
        lines.append(f"  {loop}: " + ", ".join(sorted(by_loop[loop])))
    return "\n".join(lines) if lines else "  (all pragmas neutral)"
