"""AutoDSE pruning rules over design points.

Section 4.1/4.4 of the paper reuses AutoDSE's rules for pruning design
configurations.  We implement them as a *canonicalisation*: a raw knob
assignment is rewritten into the unique representative of its
equivalence class, which both shrinks the enumerated space and teaches
the explorers not to waste evaluations:

1. **fg pipelining absorbs the sub-nest** — fine-grained pipelining of a
   loop fully unrolls every loop nested below it, so all inner knobs are
   forced neutral (pipeline off, factors 1).
2. **full unroll makes pipelining moot** — a loop whose parallel factor
   equals its trip count has no iterations left to pipeline, so its own
   pipeline knob is forced off.
3. **tile×parallel must fit the loop** — a combined tile*parallel factor
   above the trip count is meaningless; the tile factor is clamped down
   to the largest candidate that fits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..frontend.pragmas import PragmaKind, PipelineOption
from ..ir.analysis import KernelAnalysis, LoopInfo
from .space import DesignPoint, Knob

__all__ = ["PruningRules"]


class PruningRules:
    """Canonicalisation and dependency queries for a kernel's knobs."""

    def __init__(self, analysis: KernelAnalysis, knobs: List[Knob]):
        self._analysis = analysis
        self._knobs = {k.name: k for k in knobs}
        #: (function, loop_label) -> {kind: knob}
        self._loop_knobs: Dict[tuple, Dict[PragmaKind, Knob]] = {}
        for knob in knobs:
            slot = self._loop_knobs.setdefault((knob.function, knob.loop_label), {})
            slot[knob.kind] = knob

    # -- helpers -------------------------------------------------------------

    def loop_of(self, knob: Knob) -> LoopInfo:
        return self._analysis.loop(knob.function, knob.loop_label)

    def knob_at(self, function: str, label: str, kind: PragmaKind) -> Optional[Knob]:
        return self._loop_knobs.get((function, label), {}).get(kind)

    def _descendants(self, function: str, label: str) -> List[LoopInfo]:
        loop = self._analysis.loop(function, label)
        return loop.subtree()[1:]

    # -- canonicalisation -------------------------------------------------------

    def canonicalize(self, point: DesignPoint) -> DesignPoint:
        """Rewrite ``point`` to the canonical member of its class."""
        out = dict(point)
        self._apply_full_unroll_rule(out)
        self._apply_tile_fit_rule(out)
        self._apply_fg_rule(out)
        return out

    def _apply_fg_rule(self, point: DesignPoint) -> None:
        for name, value in list(point.items()):
            knob = self._knobs.get(name)
            if knob is None or knob.kind is not PragmaKind.PIPELINE:
                continue
            if value is not PipelineOption.FINE:
                continue
            for inner in self._descendants(knob.function, knob.loop_label):
                for inner_kind, inner_knob in self._loop_knobs.get(
                    (inner.function, inner.label), {}
                ).items():
                    if inner_knob.name in point:
                        point[inner_knob.name] = inner_knob.neutral

    def _apply_full_unroll_rule(self, point: DesignPoint) -> None:
        for name, value in list(point.items()):
            knob = self._knobs.get(name)
            if knob is None or knob.kind is not PragmaKind.PARALLEL:
                continue
            loop = self.loop_of(knob)
            if int(value) >= loop.trip_count:
                pipe = self.knob_at(knob.function, knob.loop_label, PragmaKind.PIPELINE)
                if pipe is not None and pipe.name in point:
                    point[pipe.name] = PipelineOption.OFF

    def _apply_tile_fit_rule(self, point: DesignPoint) -> None:
        for name, value in list(point.items()):
            knob = self._knobs.get(name)
            if knob is None or knob.kind is not PragmaKind.TILE:
                continue
            loop = self.loop_of(knob)
            para = self.knob_at(knob.function, knob.loop_label, PragmaKind.PARALLEL)
            para_factor = int(point.get(para.name, 1)) if para is not None else 1
            tile_factor = int(value)
            while tile_factor > 1 and tile_factor * para_factor > loop.trip_count:
                candidates = [int(c) for c in knob.candidates if int(c) < tile_factor]
                tile_factor = max(candidates) if candidates else 1
            point[name] = tile_factor

    # -- dependency queries (used by the DSE ordering heuristic, Section 4.4) ----

    def dependency_of(self, knob: Knob) -> List[Knob]:
        """Knobs whose setting can disable ``knob`` (must be decided first).

        The paper's example: the ``parallel`` pragma of a loop depends on
        the ``pipeline`` pragma of its parent loop (fg pipelining there
        absorbs this loop).  A loop's own pipeline knob similarly depends
        on its own parallel knob via the full-unroll rule.
        """
        out: List[Knob] = []
        loop = self.loop_of(knob)
        if knob.kind is PragmaKind.PIPELINE:
            para = self.knob_at(knob.function, knob.loop_label, PragmaKind.PARALLEL)
            if para is not None:
                out.append(para)
        if loop.parent is not None:
            parent_pipe = self.knob_at(knob.function, loop.parent, PragmaKind.PIPELINE)
            if parent_pipe is not None:
                out.append(parent_pipe)
        return out
