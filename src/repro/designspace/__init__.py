"""Design-space modelling: knobs, pruning rules, enumeration, sampling.

Implements the Design Space Generator of the GNN-DSE framework (Fig. 2):
:func:`build_design_space` turns a kernel spec into a pruned
:class:`DesignSpace` whose points the explorers and the DSE search over.
"""

from .generator import build_design_space, divisors, factor_candidates
from .render import render_point, render_source
from .rules import PruningRules
from .space import DesignPoint, DesignSpace, Knob, PragmaValue, point_key

__all__ = [
    "build_design_space",
    "divisors",
    "factor_candidates",
    "PruningRules",
    "DesignPoint",
    "DesignSpace",
    "Knob",
    "PragmaValue",
    "point_key",
    "render_point",
    "render_source",
]
