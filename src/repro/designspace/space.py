"""Design points, knobs, and the design space of a kernel.

A *design point* assigns one concrete option to every tunable pragma
knob: ``{"__PARA__L1": 8, "__PIPE__L1": PipelineOption.COARSE, ...}``.
The :class:`DesignSpace` owns the knob list with per-knob candidate
options and implements enumeration, sampling, sizing, and neighbour
generation under AutoDSE's pruning rules (:mod:`repro.designspace.rules`).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..errors import DesignSpaceError
from ..frontend.pragmas import Pragma, PragmaKind, PipelineOption

__all__ = ["PragmaValue", "DesignPoint", "Knob", "DesignSpace", "point_key"]

PragmaValue = Union[PipelineOption, int]
DesignPoint = Dict[str, PragmaValue]


def point_key(point: DesignPoint) -> str:
    """Canonical, hashable string key of a design point."""
    parts = []
    for name in sorted(point):
        value = point[name]
        text = value.value if isinstance(value, PipelineOption) else str(int(value))
        parts.append(f"{name}={text}")
    return ";".join(parts)


@dataclass
class Knob:
    """One tunable pragma with its candidate options.

    Candidates are ordered from least to most aggressive, which the
    explorers exploit (bottleneck optimisation walks candidates upward).
    """

    pragma: Pragma
    candidates: List[PragmaValue]

    @property
    def name(self) -> str:
        return self.pragma.name

    @property
    def kind(self) -> PragmaKind:
        return self.pragma.kind

    @property
    def loop_label(self) -> str:
        return self.pragma.loop_label

    @property
    def function(self) -> str:
        return self.pragma.function

    @property
    def neutral(self) -> PragmaValue:
        """The no-op option (pipeline off / factor 1)."""
        return PipelineOption.OFF if self.kind is PragmaKind.PIPELINE else 1

    def index_of(self, value: PragmaValue) -> int:
        try:
            return self.candidates.index(value)
        except ValueError:
            raise DesignSpaceError(
                f"knob {self.name}: {value!r} is not among candidates {self.candidates}"
            ) from None


class DesignSpace:
    """The pragma design space of one kernel.

    Parameters
    ----------
    kernel_name:
        For diagnostics.
    knobs:
        Tunable knobs in source order.
    rules:
        A :class:`~repro.designspace.rules.PruningRules` instance (or
        None to disable pruning).
    """

    def __init__(self, kernel_name: str, knobs: Sequence[Knob], rules=None):
        self.kernel_name = kernel_name
        self.knobs: List[Knob] = list(knobs)
        self.rules = rules
        self._by_name: Dict[str, Knob] = {k.name: k for k in self.knobs}
        if len(self._by_name) != len(self.knobs):
            raise DesignSpaceError(f"{kernel_name}: duplicate knob names")
        self._exact_size: Optional[int] = None

    # -- basic accessors --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.knobs)

    def knob(self, name: str) -> Knob:
        try:
            return self._by_name[name]
        except KeyError:
            raise DesignSpaceError(f"{self.kernel_name}: unknown knob {name!r}") from None

    def default_point(self) -> DesignPoint:
        """The all-neutral design point (no optimisation applied)."""
        return {k.name: k.neutral for k in self.knobs}

    def validate(self, point: DesignPoint) -> None:
        """Check that a point covers exactly the knob set with candidates."""
        missing = set(self._by_name) - set(point)
        extra = set(point) - set(self._by_name)
        if missing or extra:
            raise DesignSpaceError(
                f"{self.kernel_name}: bad design point (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        for name, value in point.items():
            self._by_name[name].index_of(value)

    # -- sizing ------------------------------------------------------------------

    def product_size(self) -> int:
        """Upper bound: product of per-knob candidate counts."""
        total = 1
        for knob in self.knobs:
            total *= len(knob.candidates)
        return total

    def size(self, exact_limit: int = 200_000) -> int:
        """Pruned design-space size.

        Counts exactly (by enumeration) when the unpruned product is at
        most ``exact_limit``; otherwise returns the product upper bound,
        mirroring how enormous spaces (e.g. 2mm's 492M) are reported.
        """
        if self._exact_size is not None:
            return self._exact_size
        product = self.product_size()
        if product > exact_limit:
            return product
        count = sum(1 for _ in self.enumerate())
        self._exact_size = count
        return count

    # -- iteration ---------------------------------------------------------------

    def enumerate(self, limit: Optional[int] = None) -> Iterator[DesignPoint]:
        """Yield pruned, canonical design points (deduplicated).

        Enumerates the raw candidate product, canonicalises each point
        under the pruning rules, and yields each canonical point once.
        """
        seen = set()
        names = [k.name for k in self.knobs]
        spaces = [k.candidates for k in self.knobs]
        emitted = 0
        for combo in itertools.product(*spaces):
            point = dict(zip(names, combo))
            if self.rules is not None:
                point = self.rules.canonicalize(point)
            key = point_key(point)
            if key in seen:
                continue
            seen.add(key)
            yield point
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def sample(self, rng: random.Random, count: int = 1) -> List[DesignPoint]:
        """Draw ``count`` random canonical points (with replacement)."""
        out = []
        for _ in range(count):
            point = {k.name: rng.choice(k.candidates) for k in self.knobs}
            if self.rules is not None:
                point = self.rules.canonicalize(point)
            out.append(point)
        return out

    def neighbors(self, point: DesignPoint) -> List[DesignPoint]:
        """All canonical points reachable by moving one knob one step."""
        out: List[DesignPoint] = []
        seen = {point_key(point)}
        for knob in self.knobs:
            index = knob.index_of(point[knob.name])
            for delta in (-1, 1):
                other = index + delta
                if not 0 <= other < len(knob.candidates):
                    continue
                neighbor = dict(point)
                neighbor[knob.name] = knob.candidates[other]
                if self.rules is not None:
                    neighbor = self.rules.canonicalize(neighbor)
                key = point_key(neighbor)
                if key not in seen:
                    seen.add(key)
                    out.append(neighbor)
        return out

    def mutations(self, point: DesignPoint, knob_name: str) -> List[DesignPoint]:
        """All canonical points obtained by re-assigning one named knob."""
        knob = self.knob(knob_name)
        out = []
        seen = {point_key(point)}
        for candidate in knob.candidates:
            mutated = dict(point)
            mutated[knob_name] = candidate
            if self.rules is not None:
                mutated = self.rules.canonicalize(mutated)
            key = point_key(mutated)
            if key not in seen:
                seen.add(key)
                out.append(mutated)
        return out

    def __repr__(self) -> str:
        return (
            f"DesignSpace({self.kernel_name!r}, {len(self.knobs)} knobs, "
            f"product={self.product_size()})"
        )
