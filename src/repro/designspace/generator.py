"""Design-space generation: from kernel source to tunable knobs.

Implements the "Design Space Generator" box of Fig. 1(a)/Fig. 2: each
tunable ``auto{...}`` pragma becomes a knob whose candidate options come
from the loop it annotates —

* pipeline: ``off`` / ``cg`` / ``fg``;
* parallel: the divisors of the loop trip count (so unrolling never
  leaves a ragged remainder iteration), thinned to at most
  ``max_factor_candidates`` geometrically spread values;
* tile: divisors of the trip count up to ``trip/2``.
"""

from __future__ import annotations

from typing import List

from ..errors import DesignSpaceError
from ..frontend.pragmas import PragmaKind, PipelineOption
from ..ir.analysis import KernelAnalysis
from ..kernels.base import KernelSpec
from .rules import PruningRules
from .space import DesignSpace, Knob, PragmaValue

__all__ = ["divisors", "factor_candidates", "build_design_space"]


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n``, ascending."""
    if n <= 0:
        return [1]
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def factor_candidates(trip_count: int, max_candidates: int = 8) -> List[int]:
    """Candidate unroll/tile factors for a loop of ``trip_count`` trips.

    All divisors when few; otherwise a geometric thinning that always
    keeps 1, the full factor, and near-power-of-two divisors — matching
    how AutoDSE discretises factor spaces.
    """
    divs = divisors(max(trip_count, 1))
    if len(divs) <= max_candidates:
        return divs
    keep = {1, divs[-1]}
    power = 2
    while power < divs[-1]:
        best = min(divs, key=lambda d: abs(d - power))
        keep.add(best)
        power *= 2
    out = sorted(keep)
    while len(out) > max_candidates:
        out.pop(len(out) // 2)  # drop mid-range factors, keep the extremes
    return out


def build_design_space(
    spec: KernelSpec,
    max_factor_candidates: int = 8,
    max_tile_candidates: int = 4,
) -> DesignSpace:
    """Build the pruned :class:`DesignSpace` for a kernel.

    Raises :class:`~repro.errors.DesignSpaceError` when the kernel has
    no tunable pragmas.
    """
    analysis: KernelAnalysis = spec.analysis
    knobs: List[Knob] = []
    for pragma in analysis.pragmas:
        if not pragma.is_tunable:
            continue
        loop = analysis.loop(pragma.function, pragma.loop_label)
        candidates: List[PragmaValue]
        if pragma.kind is PragmaKind.PIPELINE:
            candidates = [PipelineOption.OFF, PipelineOption.COARSE, PipelineOption.FINE]
        elif pragma.kind is PragmaKind.PARALLEL:
            candidates = list(factor_candidates(loop.trip_count, max_factor_candidates))
        else:  # TILE
            full = factor_candidates(loop.trip_count, max_tile_candidates + 1)
            candidates = [f for f in full if f < max(loop.trip_count, 2)] or [1]
        knobs.append(Knob(pragma=pragma, candidates=candidates))
    if not knobs:
        raise DesignSpaceError(f"{spec.name}: kernel has no tunable pragmas")
    rules = PruningRules(analysis, knobs)
    return DesignSpace(spec.name, knobs, rules=rules)
