"""Closed-loop active learning: DSE → HLS labels → retrain → hot-swap.

The paper's workflow is a loop — explore with the surrogate, validate
the interesting candidates with the HLS tool, grow the database,
retrain — and this package is that loop as a resumable, supervised
process that publishes every accepted model into the serving registry:

- :mod:`repro.loop.active` — :class:`~repro.loop.active.ActiveLoop`,
  the per-round orchestrator (scan, select, label, warm-start
  fine-tune, gate on held-out RMSE, publish + hot-swap);
- :mod:`repro.loop.state` — :class:`~repro.loop.state.LoopState`, the
  sha256-fingerprinted resume journal.
"""

from .active import ActiveLoop, LoopConfig, LoopResult
from .state import LOOP_STATE_SCHEMA_VERSION, LoopState

__all__ = [
    "ActiveLoop",
    "LoopConfig",
    "LoopResult",
    "LoopState",
    "LOOP_STATE_SCHEMA_VERSION",
]
