"""Resumable checkpoint for the active-learning loop.

:class:`LoopState` is the loop's journal, modeled on
:class:`~repro.dse.parallel.DSECheckpoint`: an atomically-rewritten
JSON file recording the loop configuration fingerprint, the baseline
evaluation, and one entry per *completed* round (selection counts,
held-out metrics, and which artifact version ended up serving).  A
killed loop rerun with ``resume=True`` validates the fingerprint,
reloads the database and the last-published artifact, and restarts at
the first incomplete round — every step in a round is deterministic
given (seed, database, predictor), so the resumed run converges to the
same database and artifact chain as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from ..errors import LoopError

__all__ = ["LoopState", "LOOP_STATE_SCHEMA_VERSION"]

#: Bump when the journal layout changes incompatibly.
LOOP_STATE_SCHEMA_VERSION = 1

_REQUIRED = ("schema_version", "fingerprint", "database_path",
             "registry_root", "baseline", "completed")


class LoopState:
    """Atomic JSON journal of completed active-learning rounds.

    The file is rewritten atomically (``.tmp`` + ``os.replace`` +
    fsync) after the baseline and after every completed round, so at
    any kill point it is either the previous or the new complete
    journal.  A truncated file, a schema mismatch, or a fingerprint
    mismatch (different kernels/budget/seed/…) raises
    :class:`~repro.errors.LoopError` on resume.
    """

    def __init__(self, path):
        self.path = os.fspath(path)

    @staticmethod
    def fingerprint(signature: Dict[str, object]) -> str:
        blob = json.dumps(signature, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Dict[str, object]:
        """Parse and structurally validate the journal."""
        try:
            with open(self.path, "r") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise LoopError(f"cannot read loop state {self.path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise LoopError(
                f"loop state {self.path} is corrupt or half-written "
                f"(invalid JSON at line {exc.lineno}); delete it to start fresh"
            ) from None
        if not isinstance(raw, dict):
            raise LoopError(f"loop state {self.path}: expected a JSON object")
        version = raw.get("schema_version")
        if version != LOOP_STATE_SCHEMA_VERSION:
            raise LoopError(
                f"loop state {self.path}: schema v{version!r} unsupported "
                f"(this build writes v{LOOP_STATE_SCHEMA_VERSION})"
            )
        for key in _REQUIRED:
            if key not in raw:
                raise LoopError(
                    f"loop state {self.path} is corrupt or half-written "
                    f"(missing field {key!r}); delete it to start fresh"
                )
        if not isinstance(raw["completed"], list):
            raise LoopError(f"loop state {self.path}: 'completed' must be a list")
        return raw

    def validate(self, fingerprint: str) -> Dict[str, object]:
        """Load and check the journal belongs to THIS loop configuration."""
        raw = self.load()
        if raw["fingerprint"] != fingerprint:
            raise LoopError(
                f"loop state {self.path} was written by a different loop "
                "configuration (kernels/rounds/budget/seed mismatch); "
                "delete it or rerun with the original arguments"
            )
        return raw

    def write(
        self,
        fingerprint: str,
        database_path: str,
        registry_root: str,
        baseline: Optional[Dict[str, object]],
        completed: List[Dict[str, object]],
    ) -> None:
        payload = {
            "schema_version": LOOP_STATE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "database_path": str(database_path),
            "registry_root": str(registry_root),
            "baseline": baseline,
            "completed": completed,
        }
        tmp = f"{self.path}.tmp{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - only on failed replace
                os.unlink(tmp)
