"""The closed active-learning loop: DSE → HLS labels → retrain → publish.

This is the paper's own workflow (Section 5) made into a supervised
process.  Each round:

1. **Scan** — score a seeded sample of each target kernel's design
   space with the current surrogate through the batched
   :class:`~repro.dse.pipeline.EvaluationPipeline` (the same engine the
   DSE search runs on).
2. **Select** — pick the predicted-best points (exploit) plus the most
   *uncertain* (validity probability nearest 0.5) and *disputed*
   (classifier says invalid, regressor predicts excellent latency)
   points, up to the per-kernel label budget.
3. **Label** — get ground truth from the HLS tool
   (:class:`~repro.hls.tool.MerlinHLSTool`, the deterministic
   estimator-backed oracle) through
   :class:`~repro.explorer.evaluator.Evaluator`, committing records
   with full provenance (source, round, timestamp).
4. **Fine-tune** — continue training a *clone* of the stack on the
   augmented database via the warm-start path
   (:meth:`~repro.model.trainer.Trainer.fit` with ``init_model=``); the
   serving predictor is never mutated in place.
5. **Gate & publish** — evaluate the candidate on a fixed held-out
   evaluation set (seeded sample per kernel, labeled once, excluded
   from selection).  If the held-out RMSE did not regress, publish a
   new artifact version to the :class:`~repro.serve.registry.ModelRegistry`
   and flip its atomic ``current`` pointer; otherwise keep the previous
   version (so the serving RMSE is monotonically non-increasing by
   construction).
6. **Hot-swap** — optionally notify a live ``repro serve`` instance
   (``serve_url``) to follow the pointer; the server drains in-flight
   requests per model generation, dropping none.

Every step is deterministic given (seed, database, predictor): the
scan pool and evaluation sets come from seeded RNGs, the oracle is
memoised and deterministic, training is seeded, and artifact
round-trips are bit-exact.  Combined with the :class:`LoopState`
journal this makes the loop resumable — kill it mid-round, rerun with
``resume=True``, and the final database and artifact chain are
identical to an uninterrupted run.  Timestamps default to a *logical*
clock (the round number) for exactly this reason; inject
``clock=time.time`` for wall-clock provenance at the cost of
bit-identical resume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..designspace import build_design_space
from ..designspace.space import DesignPoint, point_key
from ..dse.pipeline import EvaluationPipeline
from ..errors import LoopError, ReproError, ServeError
from ..explorer.database import Database, DesignRecord
from ..explorer.evaluator import Evaluator
from ..graph.encoding import EDGE_DIM, NODE_DIM
from ..hls.tool import MerlinHLSTool
from ..kernels import get_kernel
from ..model.config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES
from ..model.dataset import GraphDatasetBuilder
from ..model.models import build_model
from ..model.predictor import GNNDSEPredictor
from ..model.trainer import (
    TrainConfig,
    Trainer,
    evaluate_classification,
    evaluate_regression,
)
from ..obs import span
from ..serve.registry import ModelRegistry, load_artifact
from .state import LoopState

__all__ = ["LoopConfig", "ActiveLoop", "LoopResult"]


@dataclass
class LoopConfig:
    """Knobs of one active-learning run (fingerprinted for resume)."""

    kernels: Tuple[str, ...]
    rounds: int = 3
    #: HLS labels per kernel per round.
    label_budget: int = 15
    #: Design points scored per kernel per round (the DSE scan pool).
    scan: int = 300
    #: Held-out evaluation points sampled per kernel (labeled once,
    #: never used for training selection).
    eval_points: int = 60
    config_name: str = "M7"
    #: Warm-start fine-tune epochs per round.
    epochs: int = 6
    seed: int = 0
    engine: str = "auto"
    fit_threshold: float = 0.8
    #: Reject candidate models whose held-out RMSE regressed (keeps the
    #: serving RMSE monotonically non-increasing across rounds).
    gate_on_holdout: bool = True

    def __post_init__(self):
        self.kernels = tuple(self.kernels)
        if not self.kernels:
            raise LoopError("LoopConfig.kernels must name at least one kernel")
        if self.rounds < 1:
            raise LoopError(f"rounds must be >= 1, got {self.rounds}")
        if self.label_budget < 1:
            raise LoopError(f"label_budget must be >= 1, got {self.label_budget}")

    def signature(self) -> Dict[str, object]:
        return {
            "kernels": list(self.kernels),
            "rounds": self.rounds,
            "label_budget": self.label_budget,
            "scan": self.scan,
            "eval_points": self.eval_points,
            "config_name": self.config_name,
            "epochs": self.epochs,
            "seed": self.seed,
            "engine": self.engine,
            "fit_threshold": self.fit_threshold,
            "gate_on_holdout": self.gate_on_holdout,
        }


@dataclass
class LoopResult:
    """Outcome of :meth:`ActiveLoop.run`."""

    baseline: Dict[str, object]
    rounds: List[Dict[str, object]] = field(default_factory=list)
    resumed_rounds: int = 0

    @property
    def final_metrics(self) -> Dict[str, object]:
        if self.rounds:
            return self.rounds[-1]["metrics"]
        return self.baseline["metrics"]

    def rmse_trajectory(self) -> List[float]:
        """Held-out combined RMSE of the *serving* model per round (0 = baseline)."""
        out = [self.baseline["metrics"]["rmse"]["all"]]
        out.extend(r["metrics"]["rmse"]["all"] for r in self.rounds)
        return out


class ActiveLoop:
    """Orchestrates the closed loop over a fixed set of target kernels.

    Parameters
    ----------
    predictor:
        The starting surrogate (typically trained on the seed database,
        which need not contain the target kernels at all).
    database:
        The live training database; labeled records are appended with
        provenance and the database is saved (atomically) after every
        round's labeling step.
    registry:
        Where accepted models are published; its ``current`` pointer is
        the loop's notion of "the serving model".
    config:
        The run's knobs; its fingerprint guards the resume journal.
    database_path:
        Where to persist the augmented database each round.
    state:
        The resume journal (a :class:`LoopState` or a path).
    tool:
        The labeling oracle; defaults to the deterministic
        :class:`~repro.hls.tool.MerlinHLSTool` estimator.
    serve_url:
        Optional live ``repro serve`` endpoint to hot-swap after each
        accepted publish (via ``POST /v1/model/reload``).
    clock:
        Timestamp source for record/artifact provenance.  ``None`` (the
        default) stamps the *round number* — a logical clock, so resumed
        runs are bit-identical to uninterrupted ones.
    log:
        Progress callback (e.g. ``print``); ``None`` silences the loop.
    """

    def __init__(
        self,
        predictor: GNNDSEPredictor,
        database: Database,
        registry: ModelRegistry,
        config: LoopConfig,
        database_path,
        state,
        tool=None,
        serve_url: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.predictor = predictor
        self.database = database
        self.registry = registry
        self.config = config
        self.database_path = str(database_path)
        self.state = state if isinstance(state, LoopState) else LoopState(state)
        self.tool = tool or MerlinHLSTool()
        self.serve_url = serve_url
        self.clock = clock
        self._log = log or (lambda message: None)
        self._specs = {name: get_kernel(name) for name in config.kernels}
        self._spaces = {
            name: build_design_space(spec) for name, spec in self._specs.items()
        }
        # Fixed held-out evaluation sets, built lazily (deterministic:
        # seeded sample + memoised deterministic oracle).
        self._eval_records: Optional[Dict[str, List[DesignRecord]]] = None
        self._eval_keys: Dict[str, set] = {}

    # -- clocks ------------------------------------------------------------------

    def _now(self, round_index: int) -> float:
        return self.clock() if self.clock is not None else float(round_index)

    # -- held-out evaluation -----------------------------------------------------

    def _ensure_eval_sets(self) -> Dict[str, List[DesignRecord]]:
        if self._eval_records is not None:
            return self._eval_records
        records: Dict[str, List[DesignRecord]] = {}
        for kernel in self.config.kernels:
            rng = random.Random(f"{self.config.seed}:{kernel}:eval")
            points = self._spaces[kernel].sample(rng, self.config.eval_points)
            seen = set()
            kernel_records = []
            for point in points:
                key = point_key(point)
                if key in seen:
                    continue
                seen.add(key)
                result = self.tool.synthesize(self._specs[kernel], point)
                kernel_records.append(
                    DesignRecord.from_result(result, point, source="loop-eval")
                )
            records[kernel] = kernel_records
            self._eval_keys[kernel] = seen
        self._eval_records = records
        return records

    def _metrics(self, predictor: GNNDSEPredictor) -> Dict[str, object]:
        """Held-out metrics: per-objective RMSE + validity accuracy/F1."""
        eval_records = self._ensure_eval_sets()
        builder = GraphDatasetBuilder(self.database, normalizer=predictor.normalizer)
        all_samples, eval_counts = [], {}
        for kernel, records in eval_records.items():
            samples = builder.build(records=records)
            eval_counts[kernel] = {
                "total": len(samples),
                "valid": sum(1 for s in samples if s.label == 1),
            }
            all_samples.extend(samples)
        valid_samples = [s for s in all_samples if s.label == 1]
        if not valid_samples:
            raise LoopError(
                "held-out evaluation sets contain no valid designs; "
                "raise eval_points (or check the kernels' design spaces)"
            )
        rmse = evaluate_regression(predictor.regressor, valid_samples)
        rmse.update(evaluate_regression(predictor.bram_regressor, valid_samples))
        objectives = list(REGRESSION_OBJECTIVES) + list(BRAM_OBJECTIVE)
        rmse["all"] = sum(rmse[name] for name in objectives) / len(objectives)
        classification = evaluate_classification(predictor.classifier, all_samples)
        return {
            "rmse": rmse,
            "classification": classification,
            "eval_points": eval_counts,
        }

    # -- candidate selection -----------------------------------------------------

    def _scan_candidates(
        self, pipeline: EvaluationPipeline, kernel: str, round_index: int
    ) -> Tuple[List[Tuple[str, DesignPoint]], List]:
        """Score the round's seeded sample of ``kernel``'s space.

        Excludes the held-out evaluation points and anything labeled in
        an *earlier* round.  Points labeled in THIS round (by a killed
        attempt) stay in the pool so a resumed round reselects them
        deterministically.
        """
        self._ensure_eval_sets()
        rng = random.Random(f"{self.config.seed}:{kernel}:round:{round_index}")
        pool = self._spaces[kernel].sample(rng, self.config.scan)
        seen, candidates = set(), []
        for point in pool:
            key = point_key(point)
            if key in seen or key in self._eval_keys[kernel]:
                continue
            seen.add(key)
            if (kernel, key) in self.database:
                if self.database.get(kernel, key).round < round_index:
                    continue
            candidates.append((key, point))
        predictions = pipeline.predict_batch(
            kernel, [p for _, p in candidates], objectives_for="all"
        )
        return candidates, predictions

    def _select(
        self, candidates: Sequence[Tuple[str, DesignPoint]], predictions: Sequence
    ) -> Dict[str, List[int]]:
        """Split the label budget between exploit / uncertain / disputed.

        Roughly two thirds go to the predicted-best usable designs (the
        paper validates the predicted top-M); the rest to points the
        model is least sure about — validity probability near 0.5, and
        classifier-vs-regressor disputes (predicted invalid but with
        excellent predicted latency).  All orderings tie-break on the
        canonical point key, so selection is fully deterministic.
        """
        budget = self.config.label_budget
        usable = [
            i
            for i, pred in enumerate(predictions)
            if pred.valid and pred.fits(self.config.fit_threshold)
        ]
        usable.sort(key=lambda i: (predictions[i].latency, candidates[i][0]))
        uncertain = sorted(
            range(len(predictions)),
            key=lambda i: (abs(predictions[i].valid_prob - 0.5), candidates[i][0]),
        )
        disputed = [
            i
            for i, pred in enumerate(predictions)
            if not pred.valid and pred.objectives is not None
        ]
        disputed.sort(key=lambda i: (predictions[i].latency, candidates[i][0]))

        exploit_quota = budget - budget // 3
        chosen: List[int] = []
        chosen_set = set()

        def take(pool: Sequence[int], quota: int) -> None:
            for i in pool:
                if len(chosen) >= budget or quota <= 0:
                    return
                if i not in chosen_set:
                    chosen.append(i)
                    chosen_set.add(i)
                    quota -= 1

        take(usable, exploit_quota)
        explore_quota = budget - len(chosen)
        take(disputed, (explore_quota + 1) // 2)
        take(uncertain, budget - len(chosen))
        # Backfill from the remaining best usable, then anything left.
        take(usable, budget - len(chosen))
        take(uncertain, budget - len(chosen))
        return {
            "chosen": chosen,
            "usable": len(usable),
            "disputed": len(disputed),
        }

    # -- fine-tuning -------------------------------------------------------------

    def _fine_tune(
        self, predictor: GNNDSEPredictor, round_index: int
    ) -> GNNDSEPredictor:
        """Warm-start train a fresh clone of the stack on the augmented DB.

        The serving predictor is never mutated: new models are built and
        seeded from the old weights via ``Trainer.fit(init_model=...)``.
        The normalizer is kept — latency scales do not change round to
        round, and keeping it makes RMSEs comparable across rounds.
        """
        cfg = self.config
        base = MODEL_CONFIGS[cfg.config_name]
        builder = GraphDatasetBuilder(self.database, normalizer=predictor.normalizer)
        samples = builder.build()
        valid = [s for s in samples if s.label == 1]
        if not valid:
            raise LoopError("database has no valid records to fine-tune on")
        trainer = Trainer(
            # The reduced LR avoids the Adam warm-restart shock on
            # already-trained weights (same recipe as the Fig. 7 rounds).
            TrainConfig(
                epochs=cfg.epochs,
                seed=cfg.seed + round_index,
                lr=0.0004,
                lr_decay=0.9,
            )
        )
        heads = {
            "classifier": (
                base.for_task("classification"),
                predictor.classifier,
                samples,
            ),
            "regressor": (
                base.for_task("regression", REGRESSION_OBJECTIVES),
                predictor.regressor,
                valid,
            ),
            "bram_regressor": (
                base.for_task("regression", BRAM_OBJECTIVE),
                predictor.bram_regressor,
                valid,
            ),
        }
        tuned = {}
        for name, (model_config, init_model, data) in heads.items():
            model = build_model(
                model_config, NODE_DIM, EDGE_DIM, seed=cfg.seed + round_index
            )
            trainer.fit(model, data, init_model=init_model)
            tuned[name] = model
        return GNNDSEPredictor(
            tuned["classifier"],
            tuned["regressor"],
            tuned["bram_regressor"],
            predictor.normalizer,
            builder,
        )

    # -- the loop ----------------------------------------------------------------

    def _notify_server(self) -> Optional[Dict[str, object]]:
        if self.serve_url is None:
            return None
        from ..serve.client import ServeClient

        try:
            response = ServeClient(self.serve_url).reload_model()
            return {"swapped": response.get("swapped"), "model": response.get("model")}
        except (ServeError, ReproError) as exc:
            self._log(f"  warning: server reload failed: {exc}")
            return {"error": str(exc)}

    def _artifact_path(self, version_name: str):
        for version in self.registry.versions():
            if version.version == version_name:
                return version
        raise LoopError(
            f"loop state names artifact {version_name!r} but registry "
            f"{self.registry.root} does not contain it"
        )

    def _run_round(
        self, round_index: int, serving_metrics: Dict[str, object]
    ) -> Dict[str, object]:
        cfg = self.config
        pipeline = EvaluationPipeline(self.predictor, engine=cfg.engine)
        selected: Dict[str, int] = {}
        scanned = 0
        to_label: List[Tuple[str, DesignPoint]] = []
        for kernel in cfg.kernels:
            candidates, predictions = self._scan_candidates(
                pipeline, kernel, round_index
            )
            scanned += len(candidates)
            selection = self._select(candidates, predictions)
            chosen = selection["chosen"]
            selected[kernel] = len(chosen)
            to_label.extend((kernel, candidates[i][1]) for i in chosen)

        size_before, overwrites_before = len(self.database), self.database.overwrites
        evaluator = Evaluator(self.tool, self.database)
        stamp = self._now(round_index)
        for kernel, point in to_label:
            evaluator.evaluate(
                self._specs[kernel],
                point,
                source=f"loop:r{round_index}",
                round=round_index,
                created=stamp,
            )
        added = len(self.database) - size_before
        overwrites = self.database.overwrites - overwrites_before
        self.database.save(self.database_path)
        self._log(
            f"  round {round_index}: labeled {len(to_label)} points "
            f"({added} new, {overwrites} overwrites) from {scanned} scanned"
        )

        candidate = self._fine_tune(self.predictor, round_index)
        candidate_metrics = self._metrics(candidate)
        candidate_rmse = candidate_metrics["rmse"]["all"]
        serving_rmse = serving_metrics["rmse"]["all"]
        accepted = (not cfg.gate_on_holdout) or candidate_rmse <= serving_rmse + 1e-12

        server = None
        if accepted:
            version = self.registry.publish(
                candidate, activate=True, created=self._now(round_index)
            )
            # Continue from the artifact round-trip (bit-exact), so a
            # resumed loop — which can only reload from the registry —
            # trains on exactly the same weights this run does.
            self.predictor = load_artifact(version.path)
            metrics = candidate_metrics
            server = self._notify_server()
            self._log(
                f"  round {round_index}: RMSE {serving_rmse:.4f} -> "
                f"{candidate_rmse:.4f}, published {version.version}"
            )
        else:
            current = self.registry.current()
            version = current if current is not None else None
            metrics = serving_metrics
            self._log(
                f"  round {round_index}: candidate RMSE {candidate_rmse:.4f} "
                f"regressed from {serving_rmse:.4f}; keeping "
                f"{version.version if version else 'baseline'}"
            )

        return {
            "round": round_index,
            "selected": selected,
            "scanned": scanned,
            "labeled": len(to_label),
            "added": added,
            "overwrites": overwrites,
            "database_size": len(self.database),
            "accepted": accepted,
            "candidate_rmse": candidate_rmse,
            "metrics": metrics,
            "artifact_version": version.version if version else None,
            "artifact_sha256": version.sha256 if version else None,
            "server": server,
        }

    def run(self, resume: bool = False) -> LoopResult:
        """Run (or resume) the configured number of rounds."""
        cfg = self.config
        fingerprint = LoopState.fingerprint(cfg.signature())
        baseline: Optional[Dict[str, object]] = None
        completed: List[Dict[str, object]] = []

        if resume and self.state.exists():
            raw = self.state.validate(fingerprint)
            baseline = raw["baseline"]
            completed = list(raw["completed"])
            self.database = Database.load(raw["database_path"])
            last = completed[-1] if completed else baseline
            version = self._artifact_path(last["artifact_version"])
            self.predictor = load_artifact(version.path)
            self._log(
                f"resuming after round {len(completed)} "
                f"(serving {version.version}, database {len(self.database)} records)"
            )

        with span("loop.run", kernels=",".join(cfg.kernels), rounds=cfg.rounds):
            if baseline is None:
                self._ensure_eval_sets()
                metrics = self._metrics(self.predictor)
                current = self.registry.current()
                if current is None:
                    current = self.registry.publish(
                        self.predictor, activate=True, created=self._now(0)
                    )
                baseline = {
                    "round": 0,
                    "metrics": metrics,
                    "artifact_version": current.version,
                    "artifact_sha256": current.sha256,
                }
                self.state.write(
                    fingerprint,
                    self.database_path,
                    str(self.registry.root),
                    baseline,
                    completed,
                )
                self._log(
                    f"baseline: RMSE {metrics['rmse']['all']:.4f}, "
                    f"accuracy {metrics['classification']['accuracy']:.3f} "
                    f"({current.version})"
                )

            resumed = len(completed)
            serving_metrics = (completed[-1] if completed else baseline)["metrics"]
            for round_index in range(len(completed) + 1, cfg.rounds + 1):
                with span("loop.round", round=round_index):
                    report = self._run_round(round_index, serving_metrics)
                serving_metrics = report["metrics"]
                completed.append(report)
                self.state.write(
                    fingerprint,
                    self.database_path,
                    str(self.registry.root),
                    baseline,
                    completed,
                )

        return LoopResult(baseline=baseline, rounds=completed, resumed_rounds=resumed)
