"""Benchmark kernel registry.

Nine training kernels (MachSuite/Polybench mix, Table 1) plus four
unseen Polybench kernels (Table 3).  Use :func:`get_kernel` /
:func:`list_kernels` for lookup, :data:`TRAINING_KERNELS` /
:data:`UNSEEN_KERNELS` for the experiment splits, and
:func:`toy_kernel` for the paper's Code 1 example.
"""

from __future__ import annotations

from typing import Dict, List

from .base import KernelSpec
from .extra import EXTRA_KERNELS
from .machsuite import MACHSUITE_KERNELS
from .polybench import POLYBENCH_KERNELS

__all__ = [
    "KernelSpec",
    "KERNELS",
    "TRAINING_KERNELS",
    "UNSEEN_KERNELS",
    "EXTRA_KERNEL_NAMES",
    "get_kernel",
    "list_kernels",
    "toy_kernel",
]

KERNELS: Dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (*MACHSUITE_KERNELS, *POLYBENCH_KERNELS, *EXTRA_KERNELS)
}

#: The paper's experiment splits (extras take part in neither).
TRAINING_KERNELS: List[str] = [s.name for s in MACHSUITE_KERNELS]
UNSEEN_KERNELS: List[str] = [s.name for s in POLYBENCH_KERNELS]
EXTRA_KERNEL_NAMES: List[str] = [s.name for s in EXTRA_KERNELS]

_TOY_SRC = """
#define N 64
void foo(int input[64]) {
#pragma ACCEL pipeline auto{_PIPE_L1}
#pragma ACCEL parallel factor=auto{_PARA_L1}
  for (int i = 0; i < N; i++) {
    input[i] += 1;
  }
}
"""


def get_kernel(name: str) -> KernelSpec:
    """Return the registered kernel ``name`` (raises KeyError if absent)."""
    try:
        return KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel {name!r}; known kernels: {known}") from None


def list_kernels(unseen: bool = None) -> List[str]:
    """List kernel names; filter by the ``unseen`` flag when given."""
    if unseen is None:
        return sorted(KERNELS)
    return sorted(name for name, spec in KERNELS.items() if spec.unseen == unseen)


def toy_kernel() -> KernelSpec:
    """Code 1 of the paper: a one-loop toy kernel with two pragmas."""
    return KernelSpec(
        name="toy",
        suite="toy",
        source=_TOY_SRC,
        description="Code 1 toy example from the paper",
    )
