"""Kernel specification and lazy per-kernel artifact cache.

A :class:`KernelSpec` bundles a kernel's C source with the metadata the
pipeline needs (scalar bindings for problem sizes, trip-count hints for
data-dependent loops).  Parsed AST, IR, analysis, and graph artifacts are
derived lazily and cached, since every design point of a kernel shares
them (only pragma node attributes differ across design points —
Section 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["KernelSpec"]


@dataclass
class KernelSpec:
    """One benchmark kernel.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"atax"``).
    suite:
        ``"machsuite"`` or ``"polybench"``.
    source:
        C source text in the supported subset, with ``auto{...}`` pragma
        placeholders.
    description:
        One-line summary of the computation.
    bindings:
        Integer values for scalar parameters / macros used to resolve
        loop bounds.
    trip_hints:
        Assumed trip counts for data-dependent loops (``"fn/Lk"`` keys).
    unseen:
        True for the four kernels held out of the training database
        (Section 5.4).
    """

    name: str
    suite: str
    source: str
    description: str = ""
    bindings: Dict[str, int] = field(default_factory=dict)
    trip_hints: Dict[str, int] = field(default_factory=dict)
    unseen: bool = False

    def __post_init__(self):
        self._unit = None
        self._analysis = None
        self._module = None

    # -- lazy derived artifacts -------------------------------------------------

    @property
    def unit(self):
        """Parsed translation unit (cached)."""
        if self._unit is None:
            from ..frontend.parser import parse_source

            self._unit = parse_source(self.source, self.name)
        return self._unit

    @property
    def analysis(self):
        """Loop-nest analysis (cached)."""
        if self._analysis is None:
            from ..ir.analysis import analyze_kernel

            self._analysis = analyze_kernel(self.unit, self.bindings, self.trip_hints)
        return self._analysis

    @property
    def module(self):
        """Lowered IR module (cached)."""
        if self._module is None:
            from ..ir.lowering import lower_unit

            self._module = lower_unit(self.unit)
        return self._module

    @property
    def pragmas(self):
        """Tunable pragma knobs of this kernel, in source order."""
        return [p for p in self.analysis.pragmas if p.is_tunable]

    def invalidate(self) -> None:
        """Drop cached artifacts (after mutating ``source``)."""
        self._unit = None
        self._analysis = None
        self._module = None

    def __repr__(self) -> str:
        return f"KernelSpec({self.name!r}, suite={self.suite!r}, unseen={self.unseen})"
