"""MachSuite-derived training kernels (Section 5.1 of the paper).

Sources are written in the C subset accepted by :mod:`repro.frontend`
and carry the same ``auto{...}`` pragma placeholders the Merlin flow
uses.  Problem sizes are scaled down from MachSuite defaults so the full
experiment battery runs on one machine; the computational *patterns*
(dense MV/MM, blocked MM, sparse MV with indirect accesses, 2-D stencil,
dynamic-programming recurrence, table-lookup encryption) are preserved.
The per-kernel pragma counts match Table 1 of the paper.
"""

from .base import KernelSpec

__all__ = ["MACHSUITE_KERNELS"]

_AES_SRC = """
#define NB 16
#define NROUNDS 14
void aes256_encrypt_ecb(int key[NROUNDS * NB], int sbox[256], int buf[NB]) {
  int round;
  int i;
#pragma ACCEL pipeline auto{__PIPE__L0}
  for (round = 0; round < NROUNDS; round++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (i = 0; i < NB; i++) {
      int t = buf[i] ^ key[round * NB + i];
      buf[i] = sbox[t & 255];
    }
  }
}
"""

_ATAX_SRC = """
#define M 96
#define N 80
void atax(double A[M][N], double x[N], double y[N], double tmp[M]) {
  int i;
  int j;
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < N; i++) {
    y[i] = 0.0;
  }
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
  for (i = 0; i < M; i++) {
    tmp[i] = 0.0;
#pragma ACCEL parallel factor=auto{__PARA__L2}
    for (j = 0; j < N; j++) {
      tmp[i] += A[i][j] * x[j];
    }
#pragma ACCEL parallel factor=auto{__PARA__L3}
    for (j = 0; j < N; j++) {
      y[j] += A[i][j] * tmp[i];
    }
  }
}
"""

_GEMM_BLOCKED_SRC = """
#define NSIZE 64
#define BSIZE 8
void gemm_blocked(double m1[NSIZE][NSIZE], double m2[NSIZE][NSIZE], double prod[NSIZE][NSIZE]) {
  int jj;
  int kk;
  int i;
  int k;
  int j;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL tile factor=auto{__TILE__L0}
  for (jj = 0; jj < NSIZE; jj += BSIZE) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL tile factor=auto{__TILE__L1}
    for (kk = 0; kk < NSIZE; kk += BSIZE) {
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL parallel factor=auto{__PARA__L2}
      for (i = 0; i < NSIZE; i++) {
#pragma ACCEL pipeline auto{__PIPE__L3}
#pragma ACCEL parallel factor=auto{__PARA__L3}
        for (k = 0; k < BSIZE; k++) {
          double temp_x = m1[i][kk + k];
#pragma ACCEL parallel factor=auto{__PARA__L4}
          for (j = 0; j < BSIZE; j++) {
            prod[i][jj + j] += temp_x * m2[kk + k][jj + j];
          }
        }
      }
    }
  }
}
"""

_GEMM_NCUBED_SRC = """
#define NSIZE 64
void gemm_ncubed(double m1[NSIZE][NSIZE], double m2[NSIZE][NSIZE], double prod[NSIZE][NSIZE]) {
  int i;
  int j;
  int k;
#pragma ACCEL tile factor=auto{__TILE__L0}
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < NSIZE; i++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < NSIZE; j++) {
      double sum = 0.0;
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL parallel factor=auto{__PARA__L2}
      for (k = 0; k < NSIZE; k++) {
        sum += m1[i][k] * m2[k][j];
      }
      prod[i][j] = sum;
    }
  }
}
"""

_MVT_SRC = """
#define N 100
void mvt(double a[N][N], double x1[N], double x2[N], double y1[N], double y2[N]) {
  int i;
  int j;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < N; i++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < N; j++) {
      x1[i] += a[i][j] * y1[j];
    }
  }
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL parallel factor=auto{__PARA__L2}
  for (i = 0; i < N; i++) {
#pragma ACCEL pipeline auto{__PIPE__L3}
#pragma ACCEL parallel factor=auto{__PARA__L3}
    for (j = 0; j < N; j++) {
      x2[i] += a[j][i] * y2[j];
    }
  }
}
"""

_SPMV_CRS_SRC = """
#define NNZ 2048
#define NR 128
void spmv_crs(double val[NNZ], int cols[NNZ], int rowDelimiters[NR + 1], double vec[NR], double out[NR]) {
  int i;
  int j;
#pragma ACCEL pipeline auto{__PIPE__L0}
  for (i = 0; i < NR; i++) {
    double sum = 0.0;
    int rs = rowDelimiters[i];
    int re = rowDelimiters[i + 1];
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = rs; j < re; j++) {
      sum += val[j] * vec[cols[j]];
    }
    out[i] = sum;
  }
}
"""

_SPMV_ELLPACK_SRC = """
#define NR 96
#define L 12
void spmv_ellpack(double nzval[NR * L], int cols[NR * L], double vec[NR], double out[NR]) {
  int i;
  int j;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < NR; i++) {
    double sum = 0.0;
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < L; j++) {
      sum += nzval[j + i * L] * vec[cols[j + i * L]];
    }
    out[i] = sum;
  }
}
"""

_STENCIL_SRC = """
#define ROWS 32
#define COLS 32
void stencil2d(double orig[ROWS * COLS], double sol[ROWS * COLS], double filter[9]) {
  int r;
  int c;
  int k1;
  int k2;
#pragma ACCEL tile factor=auto{__TILE__L0}
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (r = 0; r < ROWS - 2; r++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (c = 0; c < COLS - 2; c++) {
      double temp = 0.0;
#pragma ACCEL parallel factor=auto{__PARA__L2}
      for (k1 = 0; k1 < 3; k1++) {
#pragma ACCEL parallel factor=auto{__PARA__L3}
        for (k2 = 0; k2 < 3; k2++) {
          temp += filter[k1 * 3 + k2] * orig[(r + k1) * COLS + c + k2];
        }
      }
      sol[r * COLS + c] = temp;
    }
  }
}
"""

_NW_SRC = """
#define ALEN 64
#define BLEN 64
void needwun(int seqA[ALEN], int seqB[BLEN], int M[(ALEN + 1) * (BLEN + 1)]) {
  int i;
  int j;
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i <= ALEN; i++) {
    M[i * (BLEN + 1)] = 0 - i;
  }
#pragma ACCEL parallel factor=auto{__PARA__L1}
  for (j = 0; j <= BLEN; j++) {
    M[j] = 0 - j;
  }
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL tile factor=auto{__TILE__L2}
  for (i = 1; i <= ALEN; i++) {
#pragma ACCEL pipeline auto{__PIPE__L3}
#pragma ACCEL parallel factor=auto{__PARA__L3}
    for (j = 1; j <= BLEN; j++) {
      int score;
      if (seqA[i - 1] == seqB[j - 1]) {
        score = 1;
      } else {
        score = -1;
      }
      int up_left = M[(i - 1) * (BLEN + 1) + j - 1] + score;
      int up = M[(i - 1) * (BLEN + 1) + j] - 1;
      int left = M[i * (BLEN + 1) + j - 1] - 1;
      int best = up_left;
      if (up > best) {
        best = up;
      }
      if (left > best) {
        best = left;
      }
      M[i * (BLEN + 1) + j] = best;
    }
  }
}
"""

MACHSUITE_KERNELS = [
    KernelSpec(
        name="aes",
        suite="machsuite",
        source=_AES_SRC,
        description="AES-256 ECB encryption round loop with S-box lookups",
    ),
    KernelSpec(
        name="atax",
        suite="machsuite",
        source=_ATAX_SRC,
        description="y = A^T (A x): fused matrix-vector products",
    ),
    KernelSpec(
        name="gemm-blocked",
        suite="machsuite",
        source=_GEMM_BLOCKED_SRC,
        description="Blocked dense matrix-matrix multiply",
    ),
    KernelSpec(
        name="gemm-ncubed",
        suite="machsuite",
        source=_GEMM_NCUBED_SRC,
        description="Naive O(n^3) dense matrix-matrix multiply",
    ),
    KernelSpec(
        name="mvt",
        suite="machsuite",
        source=_MVT_SRC,
        description="Two matrix-vector products (A y1 and A^T y2)",
    ),
    KernelSpec(
        name="spmv-crs",
        suite="machsuite",
        source=_SPMV_CRS_SRC,
        description="Sparse matrix-vector multiply, compressed row storage",
        trip_hints={"spmv_crs/L1": 16},
    ),
    KernelSpec(
        name="spmv-ellpack",
        suite="machsuite",
        source=_SPMV_ELLPACK_SRC,
        description="Sparse matrix-vector multiply, ELLPACK format",
    ),
    KernelSpec(
        name="stencil",
        suite="machsuite",
        source=_STENCIL_SRC,
        description="2-D 3x3 stencil convolution",
    ),
    KernelSpec(
        name="nw",
        suite="machsuite",
        source=_NW_SRC,
        description="Needleman-Wunsch dynamic-programming alignment",
    ),
]
