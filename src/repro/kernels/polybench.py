"""Polybench-derived kernels.

The four *unseen* kernels of Section 5.4 (bicg, doitgen, gesummv, 2mm)
are held out of the training database and used to test generalisation.
Pragma counts match Table 3 of the paper.
"""

from .base import KernelSpec

__all__ = ["POLYBENCH_KERNELS"]

_BICG_SRC = """
#define NX 112
#define NY 56
void bicg(double A[NX][NY], double s[NY], double q[NX], double p[NY], double r[NX]) {
  int i;
  int j;
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < NY; i++) {
    s[i] = 0.0;
  }
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
  for (i = 0; i < NX; i++) {
    q[i] = 0.0;
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL parallel factor=auto{__PARA__L2}
    for (j = 0; j < NY; j++) {
      s[j] += r[i] * A[i][j];
      q[i] += A[i][j] * p[j];
    }
  }
}
"""

_DOITGEN_SRC = """
#define NR 8
#define NQ 8
#define NP 16
void doitgen(double A[NR][NQ][NP], double C4[NP][NP], double sum[NP]) {
  int r;
  int q;
  int p;
  int s;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (r = 0; r < NR; r++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NP; p++) {
        sum[p] = 0.0;
#pragma ACCEL parallel factor=auto{__PARA__L3}
        for (s = 0; s < NP; s++) {
          sum[p] += A[r][q][s] * C4[s][p];
        }
      }
#pragma ACCEL parallel factor=auto{__PARA__L4}
      for (p = 0; p < NP; p++) {
        A[r][q][p] = sum[p];
      }
    }
  }
}
"""

_GESUMMV_SRC = """
#define N 72
void gesummv(double A[N][N], double B[N][N], double tmp[N], double x[N], double y[N]) {
  int i;
  int j;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < N; j++) {
      tmp[i] += A[i][j] * x[j];
      y[i] += B[i][j] * x[j];
    }
    y[i] = 1.5 * tmp[i] + 1.2 * y[i];
  }
}
"""

_2MM_SRC = """
#define NI 32
#define NJ 32
#define NK 32
#define NL 32
void kernel_2mm(double tmp[NI][NJ], double A[NI][NK], double B[NK][NJ], double C[NJ][NL], double D[NI][NL]) {
  int i;
  int j;
  int k;
#pragma ACCEL tile factor=auto{__TILE__L0}
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < NI; i++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < NJ; j++) {
      tmp[i][j] = 0.0;
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL parallel factor=auto{__PARA__L2}
      for (k = 0; k < NK; k++) {
        tmp[i][j] += 1.5 * A[i][k] * B[k][j];
      }
    }
  }
#pragma ACCEL tile factor=auto{__TILE__L3}
#pragma ACCEL pipeline auto{__PIPE__L3}
#pragma ACCEL parallel factor=auto{__PARA__L3}
  for (i = 0; i < NI; i++) {
#pragma ACCEL pipeline auto{__PIPE__L4}
#pragma ACCEL parallel factor=auto{__PARA__L4}
    for (j = 0; j < NL; j++) {
      D[i][j] = D[i][j] * 1.2;
#pragma ACCEL pipeline auto{__PIPE__L5}
#pragma ACCEL parallel factor=auto{__PARA__L5}
      for (k = 0; k < NJ; k++) {
        D[i][j] += tmp[i][k] * C[k][j];
      }
    }
  }
}
"""

POLYBENCH_KERNELS = [
    KernelSpec(
        name="bicg",
        suite="polybench",
        source=_BICG_SRC,
        description="BiCG sub-kernel: s = A^T r and q = A p",
        unseen=True,
    ),
    KernelSpec(
        name="doitgen",
        suite="polybench",
        source=_DOITGEN_SRC,
        description="Multi-resolution analysis: 3-D tensor times matrix",
        unseen=True,
    ),
    KernelSpec(
        name="gesummv",
        suite="polybench",
        source=_GESUMMV_SRC,
        description="Scalar, vector and matrix multiplication: y = aAx + bBx",
        unseen=True,
    ),
    KernelSpec(
        name="2mm",
        suite="polybench",
        source=_2MM_SRC,
        description="Two chained matrix multiplications: D = aABC + bD",
        unseen=True,
    ),
]
