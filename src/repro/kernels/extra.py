"""Extra kernels beyond the paper's evaluation set.

These are not part of any paper experiment (neither training nor the
unseen split); they exist so downstream users have more domains to
play with — a streaming FIR filter, a molecular-dynamics force kernel
with an indirect neighbour list (MachSuite ``md/knn`` style), and a
symmetric rank-k update (BLAS ``syrk``).  They exercise the same
front-end/graph/HLS pipeline and are covered by the kernel-wide tests.
"""

from .base import KernelSpec

__all__ = ["EXTRA_KERNELS"]

_FIR_SRC = """
#define NTAPS 32
#define NSAMPLES 256
void fir(double input[NSAMPLES], double coeff[NTAPS], double output[NSAMPLES]) {
  int n;
  int t;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (n = 0; n < NSAMPLES; n++) {
    double acc = 0.0;
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (t = 0; t < NTAPS; t++) {
      if (n - t >= 0) {
        acc += coeff[t] * input[n - t];
      }
    }
    output[n] = acc;
  }
}
"""

_MD_KNN_SRC = """
#define NATOMS 64
#define NNEIGH 8
void md_knn(double px[NATOMS], double py[NATOMS], double pz[NATOMS], int nlist[NATOMS * NNEIGH],
            double fx[NATOMS], double fy[NATOMS], double fz[NATOMS]) {
  int i;
  int j;
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < NATOMS; i++) {
    double fxi = 0.0;
    double fyi = 0.0;
    double fzi = 0.0;
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < NNEIGH; j++) {
      int idx = nlist[i * NNEIGH + j];
      double dx = px[idx] - px[i];
      double dy = py[idx] - py[i];
      double dz = pz[idx] - pz[i];
      double r2 = dx * dx + dy * dy + dz * dz + 0.0001;
      double r2inv = 1.0 / r2;
      double r6inv = r2inv * r2inv * r2inv;
      double force = r2inv * r6inv * (r6inv - 0.5);
      fxi += force * dx;
      fyi += force * dy;
      fzi += force * dz;
    }
    fx[i] = fxi;
    fy[i] = fyi;
    fz[i] = fzi;
  }
}
"""

_SYRK_SRC = """
#define N 48
#define M 56
void syrk(double A[N][M], double C[N][N]) {
  int i;
  int j;
  int k;
#pragma ACCEL tile factor=auto{__TILE__L0}
#pragma ACCEL pipeline auto{__PIPE__L0}
#pragma ACCEL parallel factor=auto{__PARA__L0}
  for (i = 0; i < N; i++) {
#pragma ACCEL pipeline auto{__PIPE__L1}
#pragma ACCEL parallel factor=auto{__PARA__L1}
    for (j = 0; j < N; j++) {
      double sum = 0.0;
#pragma ACCEL pipeline auto{__PIPE__L2}
#pragma ACCEL parallel factor=auto{__PARA__L2}
      for (k = 0; k < M; k++) {
        sum += A[i][k] * A[j][k];
      }
      C[i][j] = 1.2 * C[i][j] + 1.5 * sum;
    }
  }
}
"""

EXTRA_KERNELS = [
    KernelSpec(
        name="fir",
        suite="extra",
        source=_FIR_SRC,
        description="32-tap FIR filter over a 256-sample stream",
    ),
    KernelSpec(
        name="md-knn",
        suite="extra",
        source=_MD_KNN_SRC,
        description="Lennard-Jones force accumulation over k-nearest neighbours",
    ),
    KernelSpec(
        name="syrk",
        suite="extra",
        source=_SYRK_SRC,
        description="Symmetric rank-k update: C = beta*C + alpha*A*A^T",
    ),
]
