"""Versioned, content-addressed persistence of trained predictor stacks.

An *artifact* is a directory holding everything needed to reconstruct a
:class:`~repro.model.predictor.GNNDSEPredictor` for inference::

    artifact/
      manifest.json                 # schema version, configs, hashes
      blobs/
        sha256-<hex>.npz            # one state-dict blob per model

Blobs are content-addressed: the file name embeds the SHA-256 of the
bytes, so a blob can never silently drift from its manifest entry and
identical weights are stored once.  The manifest is written last (via a
temp file + ``os.replace``), so a crashed save never produces a
loadable half-artifact.

Loads are strict: schema-version, vocabulary-fingerprint, and blob-hash
mismatches all raise :class:`~repro.errors.ArtifactError` (a
:class:`~repro.errors.ReproError`) with a message naming the mismatch.
Model parameters are rebuilt at the dtype recorded in the manifest, so
a loaded predictor is bit-identical to the one saved regardless of the
process's current engine default dtype.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..errors import ArtifactError
from ..explorer.database import Database
from ..graph.encoding import EDGE_DIM, NODE_DIM
from ..graph.vocab import EDGE_FLOWS, NODE_TEXT_VOCAB, NODE_TYPES
from ..model.config import ModelConfig
from ..model.dataset import GraphDatasetBuilder
from ..model.models import build_model
from ..model.normalizer import TargetNormalizer
from ..nn.tensor import get_default_dtype, set_default_dtype

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ARTIFACT_FORMAT",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "verify_artifact",
    "vocab_fingerprint",
]

#: Bump when the manifest layout or blob format changes incompatibly.
ARTIFACT_SCHEMA_VERSION = 1

ARTIFACT_FORMAT = "repro-gnn-dse-predictor"

_MANIFEST = "manifest.json"
_BLOB_DIR = "blobs"

#: The three models of the stack, in manifest order.
_ROLES = ("classifier", "regressor", "bram_regressor")


def vocab_fingerprint() -> str:
    """SHA-256 over the closed graph vocabulary and feature dims.

    Saved weights are only meaningful against the exact feature
    encoding they were trained on; the fingerprint pins it.
    """
    payload = json.dumps(
        {
            "node_text": list(NODE_TEXT_VOCAB),
            "node_types": list(NODE_TYPES),
            "edge_flows": list(EDGE_FLOWS),
            "node_dim": NODE_DIM,
            "edge_dim": EDGE_DIM,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _state_blob(model) -> bytes:
    """Serialize a model's state dict to npz bytes."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **model.state_dict())
    return buffer.getvalue()


def _model_dtype(model) -> np.dtype:
    dtype = np.dtype(np.float32)
    for param in model.parameters():
        dtype = np.promote_types(dtype, param.data.dtype)
    return dtype


def _config_payload(config: ModelConfig) -> Dict[str, object]:
    payload = asdict(config)
    payload["objectives"] = list(payload["objectives"])
    return payload


def _config_from_payload(payload: Dict[str, object]) -> ModelConfig:
    try:
        payload = dict(payload)
        payload["objectives"] = tuple(payload["objectives"])
        return ModelConfig(**payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed model config in manifest: {exc}") from None


def save_artifact(predictor, path) -> Dict[str, object]:
    """Write ``predictor`` as a versioned artifact directory at ``path``.

    Returns the manifest.  Existing artifacts at ``path`` are
    overwritten atomically at the manifest level: blobs are written
    first, the manifest last via temp file + ``os.replace``, so readers
    either see the old complete artifact or the new one.
    """
    path = Path(path)
    models = {
        "classifier": predictor.classifier,
        "regressor": predictor.regressor,
        "bram_regressor": predictor.bram_regressor,
    }
    for role, model in models.items():
        if getattr(model, "config", None) is None:
            raise ArtifactError(
                f"cannot save {role}: model {type(model).__name__} has no config"
            )
    factor = predictor.normalizer.normalization_factor
    if factor is None:
        raise ArtifactError("cannot save a predictor with an unfitted normalizer")

    (path / _BLOB_DIR).mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "vocab_sha256": vocab_fingerprint(),
        "node_dim": NODE_DIM,
        "edge_dim": EDGE_DIM,
        "normalization_factor": float(factor),
        "models": {},
    }
    for role in _ROLES:
        model = models[role]
        blob = _state_blob(model)
        digest = hashlib.sha256(blob).hexdigest()
        blob_name = f"sha256-{digest}.npz"
        blob_path = path / _BLOB_DIR / blob_name
        if not blob_path.exists():
            tmp = blob_path.with_name(blob_path.name + f".tmp{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, blob_path)
        manifest["models"][role] = {
            "blob": f"{_BLOB_DIR}/{blob_name}",
            "sha256": digest,
            "dtype": str(_model_dtype(model)),
            "parameters": int(model.num_parameters()),
            "config": _config_payload(model.config),
        }
    text = json.dumps(manifest, indent=1, sort_keys=True)
    tmp = path / f"{_MANIFEST}.tmp{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path / _MANIFEST)
    finally:
        tmp.unlink(missing_ok=True)
    return manifest


def read_manifest(path) -> Dict[str, object]:
    """Read and structurally validate an artifact manifest."""
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"no artifact manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"unreadable manifest {manifest_path}: {exc}") from None
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"not a predictor artifact: format={manifest.get('format')!r}"
        )
    version = manifest.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {version!r} is not supported "
            f"(this build reads version {ARTIFACT_SCHEMA_VERSION}); "
            f"re-save the predictor with `repro save-model`"
        )
    missing = [r for r in _ROLES if r not in manifest.get("models", {})]
    if missing:
        raise ArtifactError(f"manifest missing models: {missing}")
    return manifest


def _load_blob(path: Path, entry: Dict[str, object]) -> Dict[str, np.ndarray]:
    blob_path = path / str(entry["blob"])
    if not blob_path.is_file():
        raise ArtifactError(f"missing weight blob {blob_path}")
    blob = blob_path.read_bytes()
    digest = hashlib.sha256(blob).hexdigest()
    if digest != entry.get("sha256"):
        raise ArtifactError(
            f"corrupt weight blob {blob_path.name}: "
            f"sha256 {digest[:12]}… != manifest {str(entry.get('sha256'))[:12]}…"
        )
    with np.load(io.BytesIO(blob)) as data:
        return {name: data[name] for name in data.files}


def verify_artifact(path) -> Dict[str, object]:
    """Check an artifact's manifest and blob hashes without loading models."""
    path = Path(path)
    manifest = read_manifest(path)
    for role in _ROLES:
        _load_blob(path, manifest["models"][role])
    return manifest


def load_artifact(path, database: Optional[Database] = None):
    """Reconstruct a :class:`GNNDSEPredictor` from an artifact directory.

    ``database`` is only used to seed the predictor's dataset builder
    (useful when the caller will fine-tune); inference needs none and
    defaults to an empty database.
    """
    from ..model.predictor import GNNDSEPredictor

    path = Path(path)
    manifest = read_manifest(path)
    if manifest["vocab_sha256"] != vocab_fingerprint():
        raise ArtifactError(
            "artifact was trained against a different graph vocabulary/"
            "feature encoding; retrain or re-save with this build"
        )
    if (manifest["node_dim"], manifest["edge_dim"]) != (NODE_DIM, EDGE_DIM):
        raise ArtifactError(
            f"feature dims mismatch: artifact ({manifest['node_dim']}, "
            f"{manifest['edge_dim']}) vs build ({NODE_DIM}, {EDGE_DIM})"
        )
    models = {}
    for role in _ROLES:
        entry = manifest["models"][role]
        config = _config_from_payload(entry["config"])
        state = _load_blob(path, entry)
        try:
            dtype = np.dtype(str(entry.get("dtype", "float32")))
        except TypeError:
            raise ArtifactError(
                f"bad dtype {entry.get('dtype')!r} for {role}"
            ) from None
        # Build the model at the artifact's dtype so loaded parameters
        # keep the exact precision they were saved with — predictions
        # must be bit-identical to the saved stack no matter what the
        # process's default dtype currently is.
        previous = get_default_dtype()
        set_default_dtype(dtype)
        try:
            model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        finally:
            set_default_dtype(previous)
        model.load_state_dict(state)
        model.eval()
        models[role] = model
    normalizer = TargetNormalizer(float(manifest["normalization_factor"]))
    builder = GraphDatasetBuilder(database or Database(), normalizer=normalizer)
    return GNNDSEPredictor(
        models["classifier"],
        models["regressor"],
        models["bram_regressor"],
        normalizer,
        builder,
    )
