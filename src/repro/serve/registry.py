"""Versioned, content-addressed persistence of trained predictor stacks.

An *artifact* is a directory holding everything needed to reconstruct a
:class:`~repro.model.predictor.GNNDSEPredictor` for inference::

    artifact/
      manifest.json                 # schema version, configs, hashes
      blobs/
        sha256-<hex>.npz            # one state-dict blob per model

Blobs are content-addressed: the file name embeds the SHA-256 of the
bytes, so a blob can never silently drift from its manifest entry and
identical weights are stored once.  The manifest is written last (via a
temp file + ``os.replace``), so a crashed save never produces a
loadable half-artifact.

Loads are strict: schema-version, vocabulary-fingerprint, and blob-hash
mismatches all raise :class:`~repro.errors.ArtifactError` (a
:class:`~repro.errors.ReproError`) with a message naming the mismatch.
Model parameters are rebuilt at the dtype recorded in the manifest, so
a loaded predictor is bit-identical to the one saved regardless of the
process's current engine default dtype.

:class:`ModelRegistry` stacks artifacts into a *versioned registry*
directory with an atomic ``current`` pointer::

    registry/
      versions/
        v0001/                      # one artifact dir per version
        v0002/
      current                       # symlink (or pointer file) -> versions/vNNNN

``publish`` writes the artifact completely (manifest last), verifies
it, then flips ``current`` with a temp-link + ``os.replace`` + directory
fsync — so a reader resolving ``current`` always sees a *complete*
artifact, before or after the swap but never in between, and a crash
mid-swap leaves the old pointer intact.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..errors import ArtifactError
from ..explorer.database import Database
from ..graph.encoding import EDGE_DIM, NODE_DIM
from ..graph.vocab import EDGE_FLOWS, NODE_TEXT_VOCAB, NODE_TYPES
from ..hls.device import get_device, list_devices
from ..model.config import ModelConfig
from ..model.dataset import GraphDatasetBuilder
from ..model.models import build_model
from ..model.normalizer import TargetNormalizer
from ..nn.tensor import get_default_dtype, set_default_dtype

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ARTIFACT_FORMAT",
    "ArtifactVersion",
    "ModelRegistry",
    "artifact_fingerprint",
    "device_set_fingerprint",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "verify_artifact",
    "vocab_fingerprint",
]

#: Bump when the manifest layout or blob format changes incompatibly.
#: v2 pins the device registry: an artifact records the device set (and
#: capacities) it was saved against, and loads reject a mismatch — a
#: device-conditioned surrogate is only meaningful on the device set it
#: was trained with.
ARTIFACT_SCHEMA_VERSION = 2

ARTIFACT_FORMAT = "repro-gnn-dse-predictor"

_MANIFEST = "manifest.json"
_BLOB_DIR = "blobs"

#: The three models of the stack, in manifest order.
_ROLES = ("classifier", "regressor", "bram_regressor")


def vocab_fingerprint() -> str:
    """SHA-256 over the closed graph vocabulary and feature dims.

    Saved weights are only meaningful against the exact feature
    encoding they were trained on; the fingerprint pins it.
    """
    payload = json.dumps(
        {
            "node_text": list(NODE_TEXT_VOCAB),
            "node_types": list(NODE_TYPES),
            "edge_flows": list(EDGE_FLOWS),
            "node_dim": NODE_DIM,
            "edge_dim": EDGE_DIM,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def device_set_fingerprint() -> str:
    """SHA-256 over the registered device set (names, kinds, capacities).

    Device conditioning makes saved weights a function of the devices
    they were trained against: adding, removing, or resizing a device
    changes what the device feature block means, so the fingerprint —
    like :func:`vocab_fingerprint` — pins it.
    """
    payload = json.dumps(
        [
            {
                "name": name,
                "kind": getattr(get_device(name), "kind", "fpga"),
                "capacities": {
                    axis: float(cap)
                    for axis, cap in sorted(get_device(name).capacities().items())
                },
            }
            for name in list_devices()
        ],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _device_set_payload() -> Dict[str, object]:
    return {"names": list_devices(), "sha256": device_set_fingerprint()}


def _state_blob(model) -> bytes:
    """Serialize a model's state dict to npz bytes."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **model.state_dict())
    return buffer.getvalue()


def _model_dtype(model) -> np.dtype:
    dtype = np.dtype(np.float32)
    for param in model.parameters():
        dtype = np.promote_types(dtype, param.data.dtype)
    return dtype


def _config_payload(config: ModelConfig) -> Dict[str, object]:
    payload = asdict(config)
    payload["objectives"] = list(payload["objectives"])
    return payload


def _config_from_payload(payload: Dict[str, object]) -> ModelConfig:
    try:
        payload = dict(payload)
        payload["objectives"] = tuple(payload["objectives"])
        return ModelConfig(**payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed model config in manifest: {exc}") from None


def save_artifact(predictor, path) -> Dict[str, object]:
    """Write ``predictor`` as a versioned artifact directory at ``path``.

    Returns the manifest.  Existing artifacts at ``path`` are
    overwritten atomically at the manifest level: blobs are written
    first, the manifest last via temp file + ``os.replace``, so readers
    either see the old complete artifact or the new one.
    """
    path = Path(path)
    models = {
        "classifier": predictor.classifier,
        "regressor": predictor.regressor,
        "bram_regressor": predictor.bram_regressor,
    }
    for role, model in models.items():
        if getattr(model, "config", None) is None:
            raise ArtifactError(
                f"cannot save {role}: model {type(model).__name__} has no config"
            )
    factor = predictor.normalizer.normalization_factor
    if factor is None:
        raise ArtifactError("cannot save a predictor with an unfitted normalizer")

    (path / _BLOB_DIR).mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "vocab_sha256": vocab_fingerprint(),
        "node_dim": NODE_DIM,
        "edge_dim": EDGE_DIM,
        "normalization_factor": float(factor),
        "devices": _device_set_payload(),
        "models": {},
    }
    for role in _ROLES:
        model = models[role]
        blob = _state_blob(model)
        digest = hashlib.sha256(blob).hexdigest()
        blob_name = f"sha256-{digest}.npz"
        blob_path = path / _BLOB_DIR / blob_name
        if not blob_path.exists():
            tmp = blob_path.with_name(blob_path.name + f".tmp{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, blob_path)
        manifest["models"][role] = {
            "blob": f"{_BLOB_DIR}/{blob_name}",
            "sha256": digest,
            "dtype": str(_model_dtype(model)),
            "parameters": int(model.num_parameters()),
            "config": _config_payload(model.config),
        }
    text = json.dumps(manifest, indent=1, sort_keys=True)
    tmp = path / f"{_MANIFEST}.tmp{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path / _MANIFEST)
    finally:
        tmp.unlink(missing_ok=True)
    return manifest


def read_manifest(path) -> Dict[str, object]:
    """Read and structurally validate an artifact manifest."""
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ArtifactError(f"no artifact manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"unreadable manifest {manifest_path}: {exc}") from None
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"not a predictor artifact: format={manifest.get('format')!r}"
        )
    version = manifest.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {version!r} is not supported "
            f"(this build reads version {ARTIFACT_SCHEMA_VERSION}); "
            f"re-save the predictor with `repro save-model`"
        )
    missing = [r for r in _ROLES if r not in manifest.get("models", {})]
    if missing:
        raise ArtifactError(f"manifest missing models: {missing}")
    return manifest


def _load_blob(path: Path, entry: Dict[str, object]) -> Dict[str, np.ndarray]:
    blob_path = path / str(entry["blob"])
    if not blob_path.is_file():
        raise ArtifactError(f"missing weight blob {blob_path}")
    blob = blob_path.read_bytes()
    digest = hashlib.sha256(blob).hexdigest()
    if digest != entry.get("sha256"):
        raise ArtifactError(
            f"corrupt weight blob {blob_path.name}: "
            f"sha256 {digest[:12]}… != manifest {str(entry.get('sha256'))[:12]}…"
        )
    with np.load(io.BytesIO(blob)) as data:
        return {name: data[name] for name in data.files}


def verify_artifact(path) -> Dict[str, object]:
    """Check an artifact's manifest and blob hashes without loading models.

    Also checks the recorded device set against this process's registry
    — offline verification must catch everything :func:`load_artifact`
    would refuse, not report a doomed artifact as healthy.
    """
    path = Path(path)
    manifest = read_manifest(path)
    _check_device_set(manifest)
    for role in _ROLES:
        _load_blob(path, manifest["models"][role])
    return manifest


def _check_device_set(manifest: Dict[str, object]) -> None:
    """Refuse a manifest saved under a different device registry."""
    devices = manifest.get("devices", {})
    if devices.get("sha256") != device_set_fingerprint():
        raise ArtifactError(
            f"artifact was saved against a different device set "
            f"({devices.get('names')}) than this process has registered "
            f"({list_devices()}); device-conditioned predictions would be "
            f"meaningless — retrain or re-save with the matching registry"
        )


def load_artifact(path, database: Optional[Database] = None):
    """Reconstruct a :class:`GNNDSEPredictor` from an artifact directory.

    ``database`` is only used to seed the predictor's dataset builder
    (useful when the caller will fine-tune); inference needs none and
    defaults to an empty database.
    """
    from ..model.predictor import GNNDSEPredictor

    path = Path(path)
    manifest = read_manifest(path)
    if manifest["vocab_sha256"] != vocab_fingerprint():
        raise ArtifactError(
            "artifact was trained against a different graph vocabulary/"
            "feature encoding; retrain or re-save with this build"
        )
    if (manifest["node_dim"], manifest["edge_dim"]) != (NODE_DIM, EDGE_DIM):
        raise ArtifactError(
            f"feature dims mismatch: artifact ({manifest['node_dim']}, "
            f"{manifest['edge_dim']}) vs build ({NODE_DIM}, {EDGE_DIM})"
        )
    _check_device_set(manifest)
    models = {}
    for role in _ROLES:
        entry = manifest["models"][role]
        config = _config_from_payload(entry["config"])
        state = _load_blob(path, entry)
        try:
            dtype = np.dtype(str(entry.get("dtype", "float32")))
        except TypeError:
            raise ArtifactError(
                f"bad dtype {entry.get('dtype')!r} for {role}"
            ) from None
        # Build the model at the artifact's dtype so loaded parameters
        # keep the exact precision they were saved with — predictions
        # must be bit-identical to the saved stack no matter what the
        # process's default dtype currently is.
        previous = get_default_dtype()
        set_default_dtype(dtype)
        try:
            model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        finally:
            set_default_dtype(previous)
        model.load_state_dict(state)
        model.eval()
        models[role] = model
    normalizer = TargetNormalizer(float(manifest["normalization_factor"]))
    builder = GraphDatasetBuilder(database or Database(), normalizer=normalizer)
    return GNNDSEPredictor(
        models["classifier"],
        models["regressor"],
        models["bram_regressor"],
        normalizer,
        builder,
    )


def artifact_fingerprint(manifest: Dict[str, object]) -> str:
    """Stable content identity of one artifact (the *model version hash*).

    Derived only from what determines the predictions — the per-role
    weight-blob hashes, the normalization factor, and the schema/vocab
    pins — so re-saving identical weights yields the same fingerprint
    and any weight change yields a new one.  This is the hash served in
    ``/v1/model`` and stamped on every prediction response.
    """
    payload = json.dumps(
        {
            "schema_version": manifest["schema_version"],
            "vocab_sha256": manifest["vocab_sha256"],
            "devices_sha256": manifest.get("devices", {}).get("sha256"),
            "normalization_factor": manifest["normalization_factor"],
            "models": {
                role: entry["sha256"]
                for role, entry in manifest["models"].items()
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# versioned registry with an atomic `current` pointer


_VERSIONS_DIR = "versions"
_CURRENT = "current"
_VERSION_META = "registry-meta.json"


@dataclass
class ArtifactVersion:
    """One published version in a :class:`ModelRegistry`."""

    version: str  # "v0001"
    path: Path  # artifact directory
    sha256: str  # artifact_fingerprint of the manifest
    created: float  # unix timestamp recorded at publish time
    schema_version: int

    def payload(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "sha256": self.sha256,
            "created": self.created,
            "schema_version": self.schema_version,
            "path": str(self.path),
        }


def _fsync_dir(path: Path) -> None:
    """Force a directory entry update (a rename) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ModelRegistry:
    """Versioned artifact directory with an atomic ``current`` pointer.

    Writers only ever *add* version directories and then flip the
    pointer (symlink when the platform supports it, an atomically
    replaced pointer file otherwise).  Readers resolve the pointer and
    load a complete artifact; a crash between "artifact written" and
    "pointer flipped" leaves the previous version current.
    """

    def __init__(self, root):
        self.root = Path(root)

    # -- layout ----------------------------------------------------------------

    @property
    def versions_dir(self) -> Path:
        return self.root / _VERSIONS_DIR

    @property
    def current_pointer(self) -> Path:
        return self.root / _CURRENT

    @staticmethod
    def is_registry(path) -> bool:
        """Does ``path`` look like a registry (vs a bare artifact dir)?"""
        path = Path(path)
        return (path / _VERSIONS_DIR).is_dir() or (path / _CURRENT).exists() or (
            path / _CURRENT
        ).is_symlink()

    def _version_info(self, path: Path) -> ArtifactVersion:
        manifest = read_manifest(path)
        created = 0.0
        meta_path = path / _VERSION_META
        if meta_path.is_file():
            try:
                created = float(json.loads(meta_path.read_text())["created"])
            except (ValueError, KeyError, json.JSONDecodeError):
                created = 0.0
        return ArtifactVersion(
            version=path.name,
            path=path,
            sha256=artifact_fingerprint(manifest),
            created=created,
            schema_version=int(manifest["schema_version"]),
        )

    # -- reads -----------------------------------------------------------------

    def versions(self) -> List[ArtifactVersion]:
        """All published versions, oldest first."""
        if not self.versions_dir.is_dir():
            return []
        out = []
        for path in sorted(self.versions_dir.iterdir()):
            if path.is_dir() and (path / _MANIFEST).is_file():
                out.append(self._version_info(path))
        return out

    def current_version_name(self) -> Optional[str]:
        """The version name ``current`` points at, or None."""
        pointer = self.current_pointer
        if pointer.is_symlink():
            return Path(os.readlink(pointer)).name
        if pointer.is_file():
            name = pointer.read_text().strip()
            return name or None
        return None

    def current(self) -> Optional[ArtifactVersion]:
        """Resolve the ``current`` pointer to a complete artifact."""
        name = self.current_version_name()
        if name is None:
            return None
        path = self.versions_dir / name
        if not (path / _MANIFEST).is_file():
            raise ArtifactError(
                f"registry {self.root}: current points at {name!r} "
                f"but no artifact manifest exists there"
            )
        return self._version_info(path)

    # -- writes ----------------------------------------------------------------

    def _next_version_name(self) -> str:
        taken = []
        if self.versions_dir.is_dir():
            for path in self.versions_dir.iterdir():
                name = path.name
                if name.startswith("v") and name[1:].isdigit():
                    taken.append(int(name[1:]))
        return f"v{(max(taken) + 1 if taken else 1):04d}"

    def set_current(self, version: str) -> None:
        """Atomically flip ``current`` to ``version`` (symlink-or-rename).

        The new pointer is created under a temp name and moved over the
        old one with ``os.replace``; the registry directory is fsynced
        so the rename is durable.  Readers therefore observe either the
        old pointer or the new one — never a missing or torn pointer.
        """
        target = self.versions_dir / version
        if not (target / _MANIFEST).is_file():
            raise ArtifactError(f"registry {self.root}: no artifact at {target}")
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".{_CURRENT}.tmp{os.getpid()}"
        tmp.unlink(missing_ok=True)
        try:
            try:
                os.symlink(os.path.join(_VERSIONS_DIR, version), tmp)
            except (OSError, NotImplementedError):
                # Filesystems without symlinks get a pointer file with
                # identical atomic-replace semantics.
                with open(tmp, "w") as handle:
                    handle.write(version)
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, self.current_pointer)
        finally:
            tmp.unlink(missing_ok=True)
        _fsync_dir(self.root)

    def publish(
        self,
        predictor,
        activate: bool = True,
        created: Optional[float] = None,
    ) -> ArtifactVersion:
        """Write ``predictor`` as the next version; optionally activate it.

        The artifact is fully written and hash-verified *before* the
        ``current`` pointer moves, so concurrent readers can never load
        a half-written model.
        """
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        version = self._next_version_name()
        path = self.versions_dir / version
        manifest = save_artifact(predictor, path)
        verify_artifact(path)
        meta = {
            "version": version,
            "created": float(created if created is not None else time.time()),
            "sha256": artifact_fingerprint(manifest),
        }
        tmp = path / f"{_VERSION_META}.tmp{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(meta, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path / _VERSION_META)
        finally:
            tmp.unlink(missing_ok=True)
        if activate:
            self.set_current(version)
        return self._version_info(path)
