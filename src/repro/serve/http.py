"""Stdlib-only HTTP JSON API over a :class:`PredictorService`.

Endpoints::

    POST /v1/predict    {"kernel": ..., "point": {...}}            one point
                        {"kernel": ..., "points": [{...}, ...]}    batch
                        optional: "valid_threshold", "objectives_for",
                        "deadline_ms" (latency budget; expired work is
                        shed with 429 instead of computed)
    POST /v1/dse/top    {"kernel": ..., "top": 10, "time_limit": 10}
    GET  /v1/model      identity of the artifact currently serving
    POST /v1/model/reload   follow the registry "current" pointer and
                        hot-swap if it moved (registry-backed servers)
    GET  /healthz
    GET  /metrics

Prediction and DSE responses carry a ``"model"`` object (version,
sha256, path) naming the artifact that computed them, so clients can
pin results to a model version across hot swaps.
    GET  /v1/trace      debug: the process trace buffer as trace JSON
                        (empty unless tracing is enabled, e.g.
                        ``repro serve --trace``)

Errors come back as structured JSON ``{"error": {"type", "message"}}``:
400 for malformed requests and invalid design points, 404 for unknown
kernels and paths, 413 for oversized bodies, 429 with a ``Retry-After``
header when admission control sheds load (queue full or deadline
already passed), 500 for everything unexpected.  Overload is by design
never a 5xx: a shed request is the server *working correctly* at
capacity, and load tests assert zero 5xx under sustained bursts.
Shutdown is graceful: :meth:`ServeHTTPServer.stop` stops accepting
connections, then drains the in-flight micro-batches before returning.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from ..errors import (
    BacklogFullError,
    DeadlineExceededError,
    DesignSpaceError,
    ReproError,
    ServeError,
)
from ..model.predictor import DEFAULT_VALID_THRESHOLD
from ..obs import is_enabled, span, trace_payload
from .schemas import point_from_payload, prediction_payload
from .service import PredictorService

__all__ = ["ServeHTTPServer", "start_server"]

#: Reject request bodies beyond this many bytes (413).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _RequestError(Exception):
    """Internal: carries an HTTP status + structured error payload."""

    def __init__(self, status: int, kind: str, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.payload = {"error": {"type": kind, "message": message}}
        self.headers = dict(headers or {})


def _shed(kind: str, exc: Exception) -> _RequestError:
    """429 + Retry-After for admission-control rejections.

    RFC 9110 wants integer Retry-After seconds, so the server's
    fractional drain estimate rounds *up* — a client that sleeps the
    advertised time should find capacity, not another 429.
    """
    seconds = max(float(getattr(exc, "retry_after_seconds", 0.1)), 0.0)
    return _RequestError(
        429, kind, str(exc),
        headers={"Retry-After": str(max(int(math.ceil(seconds)), 1))},
    )


def _error_for(exc: Exception) -> _RequestError:
    if isinstance(exc, _RequestError):
        return exc
    if isinstance(exc, BacklogFullError):
        return _shed("backlog_full", exc)
    if isinstance(exc, DeadlineExceededError):
        return _shed("deadline_exceeded", exc)
    if isinstance(exc, DesignSpaceError):
        return _RequestError(400, "invalid_design_point", str(exc))
    if isinstance(exc, ServeError):
        message = str(exc)
        if message.startswith("unknown device"):
            return _RequestError(400, "unknown_device", message)
        if message.startswith("unknown kernel"):
            return _RequestError(404, "unknown_kernel", message)
        if "timed out" in message:
            return _RequestError(504, "timeout", message)
        return _RequestError(400, "bad_request", message)
    if isinstance(exc, ReproError):
        return _RequestError(400, "bad_request", str(exc))
    return _RequestError(500, "internal_error", f"{type(exc).__name__}: {exc}")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Socket-level read timeout per request (slowloris guard).
    timeout = 30.0

    # Quiet by default; the server object can collect access lines.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.access_log is not None:
            self.server.access_log.append(format % args)

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise _RequestError(400, "bad_request", "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _RequestError(
                413, "payload_too_large", f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise _RequestError(400, "bad_json", f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "bad_json", "request body must be a JSON object")
        return payload

    def _dispatch(self, endpoint: str, handler) -> None:
        service: PredictorService = self.server.service
        start = time.perf_counter()
        # Root span per request: handler threads have no open parent, so
        # everything the handler triggers (pipeline batches, DSE shards)
        # nests under it in the exported trace.
        with span("serve.request", endpoint=endpoint) as request_span:
            headers: Dict[str, str] = {}
            try:
                status, payload = handler(service)
            except Exception as exc:  # all failures become structured JSON
                error = _error_for(exc)
                status, payload, headers = error.status, error.payload, error.headers
            request_span.set(status=status)
        service.metrics.record_request(endpoint, time.perf_counter() - start, status)
        self._send_json(status, payload, headers)

    # -- endpoints -------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._dispatch("/healthz", lambda s: (200, s.health()))
        elif self.path == "/metrics":
            self._dispatch("/metrics", lambda s: (200, s.metrics_snapshot()))
        elif self.path == "/v1/trace":
            self._dispatch("/v1/trace", lambda s: (200, _trace_snapshot()))
        elif self.path == "/v1/model":
            self._dispatch(
                "/v1/model",
                lambda s: (200, {"model": s.model_info, "swaps": s.swaps}),
            )
        else:
            self._send_json(
                404,
                {"error": {"type": "not_found", "message": f"no route {self.path}"}},
            )

    def do_POST(self) -> None:
        if self.path == "/v1/predict":
            self._dispatch("/v1/predict", self._predict)
        elif self.path == "/v1/dse/top":
            self._dispatch("/v1/dse/top", self._dse_top)
        elif self.path == "/v1/model/reload":
            self._dispatch("/v1/model/reload", self._reload_model)
        else:
            self._send_json(
                404,
                {"error": {"type": "not_found", "message": f"no route {self.path}"}},
            )

    def _predict(self, service: PredictorService) -> Tuple[int, Dict[str, object]]:
        body = self._read_json()
        kernel = body.get("kernel")
        if not isinstance(kernel, str):
            raise _RequestError(400, "bad_request", "missing string field 'kernel'")
        if ("point" in body) == ("points" in body):
            raise _RequestError(
                400, "bad_request", "provide exactly one of 'point' or 'points'"
            )
        raw_points = [body["point"]] if "point" in body else body["points"]
        if not isinstance(raw_points, list) or not raw_points:
            raise _RequestError(400, "bad_request", "'points' must be a non-empty list")
        points = [point_from_payload(p) for p in raw_points]
        try:
            threshold = float(body.get("valid_threshold", DEFAULT_VALID_THRESHOLD))
        except (TypeError, ValueError):
            raise _RequestError(
                400, "bad_request", "'valid_threshold' must be a number"
            ) from None
        objectives_for = body.get("objectives_for", "all")
        device = _device_field(body)
        deadline_seconds = None
        if "deadline_ms" in body:
            try:
                deadline_ms = float(body["deadline_ms"])
            except (TypeError, ValueError):
                raise _RequestError(
                    400, "bad_request", "'deadline_ms' must be a number"
                ) from None
            if deadline_ms <= 0:
                raise _RequestError(400, "bad_request", "'deadline_ms' must be > 0")
            deadline_seconds = deadline_ms / 1000.0
        predictions, model_info = service.predict_versioned(
            kernel, points, threshold, objectives_for,
            deadline_seconds=deadline_seconds, device=device,
        )
        return 200, {
            "kernel": kernel,
            "device": service.resolve_device(device).name,
            "predictions": [prediction_payload(p) for p in predictions],
            "model": model_info,
        }

    def _dse_top(self, service: PredictorService) -> Tuple[int, Dict[str, object]]:
        body = self._read_json()
        kernel = body.get("kernel")
        if not isinstance(kernel, str):
            raise _RequestError(400, "bad_request", "missing string field 'kernel'")
        try:
            top = int(body.get("top", 10))
            time_limit = float(body.get("time_limit", 10.0))
            workers = int(body.get("workers", 1))
            budget = int(body.get("budget", 1000))
            seed = int(body.get("seed", 0))
        except (TypeError, ValueError):
            raise _RequestError(
                400, "bad_request",
                "'top', 'time_limit', 'workers', 'budget' and 'seed' "
                "must be numbers",
            ) from None
        strategy = body.get("strategy", "beam")
        if not isinstance(strategy, str):
            raise _RequestError(400, "bad_request", "'strategy' must be a string")
        device = _device_field(body)
        return 200, service.dse_top(
            kernel, top=top, time_limit_seconds=time_limit, workers=workers,
            strategy=strategy, budget=budget, seed=seed, device=device,
        )

    def _reload_model(self, service: PredictorService) -> Tuple[int, Dict[str, object]]:
        self._read_json()  # accept (and ignore) an empty JSON body
        info, swapped = service.reload()
        # Fleet propagation: in a worker pool, the worker that happened
        # to accept this request tells the pool parent, which broadcasts
        # the reload to its siblings.
        callback = getattr(self.server, "on_reload", None)
        if swapped and callback is not None:
            callback(info)
        return 200, {"model": info, "swapped": swapped}


def _device_field(body: Dict[str, object]) -> str:
    """Optional ``device`` request field ("" when absent; 400 on non-string)."""
    device = body.get("device", "")
    if not isinstance(device, str):
        raise _RequestError(400, "bad_request", "'device' must be a string")
    return device


def _trace_snapshot() -> Dict[str, object]:
    """The process trace buffer as trace JSON, plus the enabled flag."""
    payload = trace_payload()
    payload["enabled"] = is_enabled()
    return payload


class ServeHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`PredictorService`.

    With ``listener`` the server adopts an already-bound, already-
    listening socket instead of binding ``address`` itself.  That is
    how the pre-fork :class:`~repro.serve.pool.WorkerPool` scales out:
    the parent binds once, every forked worker wraps the inherited fd,
    and the kernel's shared accept queue load-balances connections —
    no per-worker ports, no lost backlog during rolling restarts.

    ``on_reload(model_info)`` is invoked after a ``/v1/model/reload``
    actually swaps, so a pool worker can ask the parent to propagate
    the reload fleet-wide.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: PredictorService,
                 access_log: Optional[list] = None,
                 listener: Optional[socket.socket] = None,
                 on_reload: Optional[Callable[[Dict[str, object]], None]] = None):
        if listener is None:
            super().__init__(address, _Handler)
        else:
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()  # replace the unbound socket wholesale
            self.socket = listener
            self.server_address = listener.getsockname()
            # Mirror HTTPServer.server_bind: handlers may read these.
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
        self.service = service
        self.access_log = access_log
        self.on_reload = on_reload

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, then drain in-flight batches."""
        self.shutdown()
        self.server_close()
        self.service.close(drain=drain)


def start_server(
    service: PredictorService, host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """Start serving in a background thread; returns the bound server.

    ``port=0`` binds an ephemeral port (see :attr:`ServeHTTPServer.url`).
    The caller owns shutdown via :meth:`ServeHTTPServer.stop`.
    """
    server = ServeHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server
