"""Pre-fork multi-process serving: N workers behind one shared listener.

A single :class:`~repro.serve.http.ServeHTTPServer` process is
GIL-bound: handler threads overlap on I/O but serialize on every
forward pass.  :class:`WorkerPool` scales the same HTTP surface across
processes the way classic pre-fork servers do:

1.  The parent binds **one** listening socket and forks N workers
    (:class:`~repro.workers.ForkSupervisor` — the same supervision core
    as the sharded DSE orchestrator).  Each worker wraps the inherited
    fd in its own ``ServeHTTPServer``; the kernel's shared accept queue
    load-balances connections across whoever calls ``accept`` first.
    Compared with per-worker ``SO_REUSEPORT`` sockets, the shared queue
    never strands backlogged connections when a worker exits — which is
    exactly what a rolling restart does N times in a row.
2.  Each worker builds its serving stack *after* the fork from a
    ``service_factory`` closure (fork passes it by memory inheritance,
    so a preloaded predictor or registry handle is shared copy-on-write
    and never pickled).  Workers loading from the same content-addressed
    :class:`~repro.serve.registry.ModelRegistry` therefore serve
    bit-identical predictions — the load harness asserts this.
3.  The parent runs a monitor thread: heartbeats arrive on a shared
    events queue, silent workers are killed, dead workers respawned,
    and a ``/v1/model/reload`` accepted by *any* worker is broadcast to
    the rest (each worker re-follows the registry's ``current``
    pointer, so the fleet converges on the new artifact while PR 7's
    per-worker generation refcounting keeps every in-flight request on
    the version that admitted it).
4.  :meth:`rolling_restart` replaces workers one at a time —
    spawn-then-drain, never drain-then-spawn — so capacity never dips
    and in-flight requests always finish (``server_close`` joins the
    handler threads; the service drains its micro-batches).

Worker processes are daemonic (a crashed parent cannot leak them), so
server-side DSE inside a pool worker is capped at ``workers=1`` —
daemonic processes may not fork children.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
import queue as queue_mod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ServeError
from ..obs import counter
from ..workers import ForkSupervisor, SupervisedWorker, drain_queue
from .http import ServeHTTPServer

__all__ = ["PoolHooks", "WorkerPool"]

logger = logging.getLogger("repro.serve.pool")

_RESPAWNS = counter("serve.pool.respawns")
_STALL_KILLS = counter("serve.pool.stall_kills")
_RELOAD_BROADCASTS = counter("serve.pool.reload_broadcasts")


@dataclass
class PoolHooks:
    """Instrumentation hooks threaded into every pool worker.

    ``on_worker_start(worker_id)`` runs in the child right before it
    reports ready — tests inject faults here (``os._exit``) to exercise
    the respawn path.  Hooks must be fork-inheritable (plain
    functions/closures); they never change served results.
    """

    on_worker_start: Optional[Callable[[int], None]] = None


class _PoolWorker(SupervisedWorker):
    """Pool-side state: the parent end of the worker's command pipe."""

    @property
    def commands(self):
        return self.channel


def _worker_main(worker_id, service_factory, listener, commands, events,
                 heartbeat_interval, hooks):
    """Child entry point: serve on the inherited listener until told to stop."""
    service = service_factory()
    # Daemonic children may not fork, so server-side DSE stays serial
    # inside pool workers (the request is rejected 400, never 500).
    service.MAX_DSE_WORKERS = 1

    def on_reload(info):
        events.put(("reload_request", worker_id, dict(info)))

    server = ServeHTTPServer(
        listener.getsockname(), service, listener=listener, on_reload=on_reload
    )
    # The zero-drop drain guarantee rides on server_close() joining
    # in-flight handler threads — and socketserver's _Threads.append
    # silently skips daemon threads, so daemon_threads must be off
    # here.  A wedged handler can't hang us: the parent bounds the
    # drain with a join timeout and kills past it.
    server.daemon_threads = False
    thread = threading.Thread(
        target=server.serve_forever, name=f"repro-serve-http-{worker_id}",
        daemon=True,
    )
    thread.start()
    if hooks is not None and hooks.on_worker_start is not None:
        hooks.on_worker_start(worker_id)
    events.put(("ready", worker_id, os.getpid()))
    try:
        while True:
            if commands.poll(heartbeat_interval):
                try:
                    command = commands.recv()
                except EOFError:  # parent died; exit cleanly
                    command = ("stop",)
                kind = command[0]
                if kind == "reload":
                    try:
                        info, swapped = service.reload()
                        events.put(("reloaded", worker_id, dict(info), swapped))
                    except Exception as exc:
                        events.put(("reload_failed", worker_id, str(exc)))
                elif kind in ("drain", "stop"):
                    return
            events.put(("hb", worker_id))
    finally:
        # Graceful exit: stop accepting, join in-flight handler threads
        # (block_on_close), drain queued micro-batches, then report.
        server.shutdown()
        server.server_close()
        service.close(drain=True)
        events.put(("exit", worker_id))


class WorkerPool:
    """N forked serving workers behind one shared listening socket.

    Parameters
    ----------
    service_factory:
        Zero-argument callable building a fresh
        :class:`~repro.serve.service.PredictorService`; runs in each
        child *after* the fork (threads and locks must not cross it).
        Registry-backed factories make fleet-wide hot-swap work: every
        worker reloads from the same content-addressed store.
    workers:
        Pool size; kept constant by respawn until :meth:`stop`.
    host, port:
        Bind address for the shared listener (``port=0`` = ephemeral).
    heartbeat_interval_seconds:
        Worker heartbeat cadence (also its command-poll latency).
    heartbeat_timeout_seconds:
        A worker alive but silent this long is killed and respawned.
    ready_timeout_seconds:
        Bound on waiting for a spawned worker's ready handshake.
    hooks:
        :class:`PoolHooks` for fault-injection tests.
    """

    def __init__(
        self,
        service_factory: Callable[[], object],
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval_seconds: float = 0.25,
        heartbeat_timeout_seconds: float = 10.0,
        ready_timeout_seconds: float = 60.0,
        hooks: Optional[PoolHooks] = None,
    ):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.service_factory = service_factory
        self.workers = int(workers)
        self.host = host
        self.port = int(port)
        self.heartbeat_interval_seconds = float(heartbeat_interval_seconds)
        self.heartbeat_timeout_seconds = float(heartbeat_timeout_seconds)
        self.ready_timeout_seconds = float(ready_timeout_seconds)
        self.hooks = hooks
        self._supervisor = ForkSupervisor(
            _worker_main, mp_context="fork",
            name_prefix="repro-serve-worker", worker_class=_PoolWorker,
        )
        self._events = self._supervisor.context.Queue()
        self._listener: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._ready: Dict[int, threading.Event] = {}
        self._exited: Dict[int, threading.Event] = {}
        self._draining: set = set()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False
        self.respawns = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Bind the listener, fork the fleet, wait until all are serving."""
        if self._started:
            raise ServeError("pool already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # Non-blocking: workers race to accept from the shared queue,
        # and a loser's accept must error out (socketserver swallows
        # it), not wedge the worker's serve loop.
        listener.setblocking(False)
        self._listener = listener
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-pool-monitor", daemon=True
        )
        self._monitor.start()
        for _ in range(self.workers):
            self._spawn_worker()
        # Fleet-level wait, not per-id: a worker that crashes during
        # startup is respawned by the monitor under a fresh id, and
        # start() succeeds once the *pool* reaches full strength.
        self._await_fleet_ready(self.ready_timeout_seconds)
        return self

    @property
    def url(self) -> str:
        if self._listener is None:
            raise ServeError("pool is not started")
        host, port = self._listener.getsockname()[:2]
        return f"http://{host}:{port}"

    def worker_pids(self) -> List[int]:
        return [h.pid for h in self._supervisor.handles() if h.pid is not None]

    def worker_count(self) -> int:
        return len(self._supervisor)

    def stop(self) -> None:
        """Drain and stop every worker; idempotent, never raises."""
        if self._stopped:
            return
        self._stopped = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)

        def _notify(handle):
            handle.commands.send(("drain",))

        self._supervisor.shutdown(
            notify=_notify, join_timeout=10.0,
            on_notify_error=lambda handle, exc: logger.warning(
                "failed to send drain to serve worker %d: %s", handle.worker_id, exc
            ),
        )
        drain_queue(self._events)
        self._events.close()
        if self._listener is not None:
            self._listener.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fleet operations ------------------------------------------------------

    def reload_all(self) -> None:
        """Ask every worker to re-follow the registry's current pointer."""
        for handle in self._supervisor.handles():
            self._send_command(handle, ("reload",))

    def rolling_restart(self, timeout_seconds: float = 60.0) -> None:
        """Replace every worker, one at a time, with zero capacity gap.

        Spawn-then-drain per slot: the replacement is accepting from
        the shared queue *before* its predecessor stops, and the
        predecessor finishes its in-flight requests before exiting —
        so a load generator running across the restart sees neither
        connection resets nor shed capacity beyond one worker's worth.
        """
        deadline = time.monotonic() + float(timeout_seconds)
        for handle in self._supervisor.handles():
            replacement = self._spawn_worker()
            self._await_ready(
                [replacement.worker_id],
                timeout=max(deadline - time.monotonic(), 0.1),
            )
            self._drain_worker(
                handle, timeout=max(deadline - time.monotonic(), 0.1)
            )

    # -- internals -------------------------------------------------------------

    def _spawn_worker(self) -> _PoolWorker:
        parent_conn, child_conn = self._supervisor.context.Pipe()
        with self._lock:
            handle = self._supervisor.spawn(
                self.service_factory, self._listener, child_conn, self._events,
                self.heartbeat_interval_seconds, self.hooks,
                channel=parent_conn,
            )
            self._ready[handle.worker_id] = threading.Event()
            self._exited[handle.worker_id] = threading.Event()
        child_conn.close()  # the child holds its own copy post-fork
        return handle

    def _fleet_ready(self) -> bool:
        handles = self._supervisor.handles()
        if len(handles) < self.workers:
            return False
        with self._lock:
            events = [self._ready.get(h.worker_id) for h in handles]
        return all(event is not None and event.is_set() for event in events)

    def _await_fleet_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._fleet_ready():
                return
            time.sleep(0.01)
        raise ServeError(f"serve pool not ready after {timeout:g}s")

    def _await_ready(self, worker_ids: List[int], timeout: Optional[float] = None) -> None:
        timeout = self.ready_timeout_seconds if timeout is None else timeout
        deadline = time.monotonic() + timeout
        for worker_id in worker_ids:
            with self._lock:
                event = self._ready.get(worker_id)
            if event is None:
                continue
            if not event.wait(timeout=max(deadline - time.monotonic(), 0.0)):
                raise ServeError(
                    f"serve worker {worker_id} not ready after {timeout:g}s"
                )

    def _send_command(self, handle: _PoolWorker, command) -> bool:
        try:
            handle.commands.send(command)
            return True
        except (OSError, ValueError):
            # Broken pipe — the worker died; the monitor will respawn it.
            return False

    def _drain_worker(self, handle: _PoolWorker, timeout: float) -> None:
        with self._lock:
            self._draining.add(handle.worker_id)
        self._send_command(handle, ("drain",))
        handle.process.join(timeout=timeout)
        if handle.alive():
            logger.warning(
                "serve worker %d did not drain within %gs; killing",
                handle.worker_id, timeout,
            )
            self._supervisor.kill(handle)
        with self._lock:
            self._supervisor.discard(handle.worker_id)
            self._draining.discard(handle.worker_id)

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            try:
                event = self._events.get(timeout=0.1)
            except (queue_mod.Empty, OSError, ValueError):
                event = None
            if event is not None:
                try:
                    self._handle_event(event)
                except Exception:  # pragma: no cover - monitor must survive
                    logger.exception("serve pool monitor failed on %r", event)
            self._scan()

    def _handle_event(self, event) -> None:
        kind, worker_id = event[0], event[1]
        handle = self._supervisor.get(worker_id)
        if handle is not None:
            handle.beat()
        if kind == "ready":
            with self._lock:
                ready = self._ready.get(worker_id)
            if ready is not None:
                ready.set()
        elif kind == "exit":
            with self._lock:
                exited = self._exited.get(worker_id)
            if exited is not None:
                exited.set()
        elif kind == "reload_request":
            # One worker swapped via HTTP; converge the rest of the
            # fleet on the registry's current pointer.
            _RELOAD_BROADCASTS.inc()
            for other in self._supervisor.handles():
                if other.worker_id != worker_id:
                    self._send_command(other, ("reload",))
        elif kind == "reload_failed":
            logger.warning("serve worker %d reload failed: %s", worker_id, event[2])

    def _scan(self) -> None:
        """Respawn dead workers, kill stalled ones (monitor thread only)."""
        if self._stop.is_set():
            return
        for handle in self._supervisor.stalled(self.heartbeat_timeout_seconds):
            with self._lock:
                if handle.worker_id in self._draining:
                    continue  # drained workers stop heartbeating by design
            logger.warning(
                "serve worker %d silent for >%gs; killing",
                handle.worker_id, self.heartbeat_timeout_seconds,
            )
            _STALL_KILLS.inc()
            self._supervisor.kill(handle)
        for handle in self._supervisor.handles():
            if handle.alive():
                continue
            with self._lock:
                draining = handle.worker_id in self._draining
            if draining:
                continue  # deliberate exit; rolling_restart discards it
            self._supervisor.discard(handle.worker_id)
            logger.warning(
                "serve worker %d died (exitcode %s); respawning",
                handle.worker_id, handle.process.exitcode,
            )
            _RESPAWNS.inc()
            self.respawns += 1
            self._spawn_worker()
