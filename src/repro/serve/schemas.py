"""JSON payload builders shared by the HTTP API and the CLI.

``repro dse --output top.json`` and ``POST /v1/dse/top`` emit the same
schema, so offline runs and server responses are interchangeable
inputs for downstream tooling.  Floats pass through Python's ``json``
round-trip unchanged (shortest-repr), so payload → object → payload is
lossless and server-side predictions stay bit-identical on the client.
"""

from __future__ import annotations

from typing import Dict

from ..designspace.space import DesignPoint
from ..errors import ServeError
from ..explorer.database import deserialize_point, serialize_point
from ..hls.device import DEFAULT_DEVICE
from ..model.predictor import Prediction

__all__ = [
    "DSE_RESULT_SCHEMA_VERSION",
    "prediction_payload",
    "prediction_from_payload",
    "point_payload",
    "point_from_payload",
    "dse_result_payload",
]

#: Version of the ``dse --output`` / ``/v1/dse/top`` result schema.
#: v2 added the ``device`` field (the registered device the search
#: targeted; results predating device provenance stamp the reference).
DSE_RESULT_SCHEMA_VERSION = 2


def prediction_payload(prediction: Prediction) -> Dict[str, object]:
    return {
        "valid": prediction.valid,
        "valid_prob": prediction.valid_prob,
        "objectives": prediction.objectives,
    }


def prediction_from_payload(payload: Dict[str, object]) -> Prediction:
    try:
        objectives = payload["objectives"]
        return Prediction(
            valid=bool(payload["valid"]),
            valid_prob=float(payload["valid_prob"]),
            objectives=None
            if objectives is None
            else {str(k): float(v) for k, v in objectives.items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed prediction payload: {exc}") from None


def point_payload(point: DesignPoint) -> Dict[str, object]:
    return serialize_point(point)


def point_from_payload(payload: Dict[str, object]) -> DesignPoint:
    if not isinstance(payload, dict):
        raise ServeError(f"design point must be an object, got {type(payload).__name__}")
    try:
        return deserialize_point(payload)
    except (TypeError, ValueError) as exc:
        raise ServeError(f"malformed design point: {exc}") from None


def dse_result_payload(result, stats=None) -> Dict[str, object]:
    """JSON form of a :class:`~repro.dse.search.DSEResult`.

    ``stats`` defaults to the stats the search recorded; pass an
    explicit :class:`~repro.dse.pipeline.PipelineStats` to override.
    """
    stats = stats if stats is not None else result.stats
    return {
        "schema_version": DSE_RESULT_SCHEMA_VERSION,
        "kernel": result.kernel,
        "device": getattr(result, "device", "") or DEFAULT_DEVICE.name,
        "explored": result.explored,
        "seconds": result.seconds,
        "exhaustive": result.exhaustive,
        "predictions_per_second": result.predictions_per_second,
        "workers": getattr(result, "workers", 1),
        "shards": getattr(result, "shards", 0),
        "shards_resumed": getattr(result, "shards_resumed", 0),
        "retries": getattr(result, "retries", 0),
        "strategy": getattr(result, "strategy", "beam"),
        "race": getattr(result, "race", None),
        "top": [
            {
                "rank": rank + 1,
                "point": point_payload(candidate.point),
                "prediction": prediction_payload(candidate.prediction),
            }
            for rank, candidate in enumerate(result.top)
        ],
        "pareto": [
            {
                "point": point_payload(candidate.point),
                "prediction": prediction_payload(candidate.prediction),
            }
            for candidate in getattr(result, "pareto", [])
        ],
        "pipeline_stats": None if stats is None else stats.to_dict(),
    }
