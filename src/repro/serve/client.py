"""Python client for the ``repro serve`` HTTP API (stdlib only).

Rebuilds :class:`~repro.model.predictor.Prediction` objects from the
server's JSON, so a client-side prediction compares ``==`` (bit-
identical floats) with the in-process pipeline's output for the same
artifact.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from ..designspace.space import DesignPoint
from ..errors import ServeError
from ..model.predictor import Prediction
from .schemas import point_payload, prediction_from_payload

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ServeError):
    """An HTTP error response, carrying the server's structured payload."""

    def __init__(self, status: int, payload: Dict[str, object]):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.error_type = error.get("type", "unknown")


class ServeClient:
    """Talk to one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8080`` (trailing slash optional).
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                error_payload = json.loads(exc.read())
            except (ValueError, OSError):
                error_payload = {"error": {"type": "http", "message": str(exc)}}
            raise ServeClientError(exc.code, error_payload) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {self.base_url}: {exc.reason}") from None

    # -- API ---------------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def model(self) -> Dict[str, object]:
        """Identity of the artifact currently serving (version/sha256/path)."""
        return self._request("GET", "/v1/model")

    def reload_model(self) -> Dict[str, object]:
        """Ask a registry-backed server to follow its ``current`` pointer.

        Returns ``{"model": {...}, "swapped": bool}``; raises
        :class:`ServeClientError` (400) when the server was not started
        from a registry directory.
        """
        return self._request("POST", "/v1/model/reload", {})

    def predict(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: Optional[float] = None,
        objectives_for: Optional[str] = None,
    ) -> List[Prediction]:
        """Predict a batch of design points."""
        payload: Dict[str, object] = {
            "kernel": kernel,
            "points": [point_payload(p) for p in points],
        }
        if valid_threshold is not None:
            payload["valid_threshold"] = valid_threshold
        if objectives_for is not None:
            payload["objectives_for"] = objectives_for
        response = self._request("POST", "/v1/predict", payload)
        return [prediction_from_payload(p) for p in response["predictions"]]

    def predict_with_model(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: Optional[float] = None,
        objectives_for: Optional[str] = None,
    ):
        """Like :meth:`predict`, also returning the server's model identity.

        Returns ``(predictions, model_info)`` where ``model_info`` names
        the artifact version that computed this batch — stable within a
        response even when the server hot-swaps mid-stream.
        """
        payload: Dict[str, object] = {
            "kernel": kernel,
            "points": [point_payload(p) for p in points],
        }
        if valid_threshold is not None:
            payload["valid_threshold"] = valid_threshold
        if objectives_for is not None:
            payload["objectives_for"] = objectives_for
        response = self._request("POST", "/v1/predict", payload)
        predictions = [prediction_from_payload(p) for p in response["predictions"]]
        return predictions, response.get("model", {})

    def predict_one(
        self,
        kernel: str,
        point: DesignPoint,
        valid_threshold: Optional[float] = None,
        objectives_for: Optional[str] = None,
    ) -> Prediction:
        return self.predict(kernel, [point], valid_threshold, objectives_for)[0]

    def dse_top(
        self,
        kernel: str,
        top: int = 10,
        time_limit: float = 10.0,
        workers: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run the model-driven search server-side; returns the JSON payload
        (same schema as ``repro dse --output``).  ``workers>1`` asks the
        server for the sharded parallel orchestrator (bit-identical
        results, capped server-side)."""
        body = {"kernel": kernel, "top": top, "time_limit": time_limit}
        if workers is not None:
            body["workers"] = workers
        return self._request("POST", "/v1/dse/top", body)
