"""Python client for the ``repro serve`` HTTP API (stdlib only).

Rebuilds :class:`~repro.model.predictor.Prediction` objects from the
server's JSON, so a client-side prediction compares ``==`` (bit-
identical floats) with the in-process pipeline's output for the same
artifact.

Transport runs on :mod:`http.client` with *separate* connect and read
timeouts — the old ``urllib`` transport had a single socket timeout, so
a stalled handler could hold a caller for the full connect budget and a
dead host for the full read budget.  Optional bounded retries with
exponential backoff cover transient transport failures and 429
shed responses (predictions are pure functions of the artifact and the
point, so replaying one is always safe); a 429's ``Retry-After`` header
is honored as the backoff floor.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from ..designspace.space import DesignPoint
from ..errors import ServeError
from ..model.predictor import Prediction
from .schemas import point_payload, prediction_from_payload

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ServeError):
    """An HTTP error response, carrying the server's structured payload."""

    def __init__(self, status: int, payload: Dict[str, object],
                 retry_after_seconds: Optional[float] = None):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.error_type = error.get("type", "unknown")
        #: Parsed ``Retry-After`` header on 429 shed responses, if any.
        self.retry_after_seconds = retry_after_seconds


class ServeClient:
    """Talk to one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8080`` (trailing slash optional).
    timeout:
        Default for both ``connect_timeout`` and ``read_timeout``.
    connect_timeout, read_timeout:
        Separate budgets for establishing the TCP connection and for
        each socket read of the response; a stalled handler fails the
        request after ``read_timeout`` instead of hanging the caller.
    retries:
        Extra attempts after a transport failure (connect refused/timed
        out, read timed out, connection dropped) or a 429 shed
        response.  0 (default) preserves fail-fast behavior.
    backoff_seconds:
        First retry delay; doubles per attempt up to
        ``backoff_cap_seconds``.  A 429's ``Retry-After`` raises the
        floor for that wait.
    """

    #: HTTP statuses worth replaying: admission-control sheds only.
    RETRY_STATUSES = frozenset({429})

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 0,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 2.0,
    ):
        self.base_url = base_url.rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ServeError(f"unsupported URL scheme {split.scheme!r} (http only)")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._base_path = split.path.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = float(
            connect_timeout if connect_timeout is not None else timeout
        )
        self.read_timeout = float(
            read_timeout if read_timeout is not None else timeout
        )
        if retries < 0:
            raise ServeError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.backoff_seconds = float(backoff_seconds)
        self.backoff_cap_seconds = float(backoff_cap_seconds)

    # -- transport ---------------------------------------------------------------

    def _request_once(
        self, method: str, path: str, payload: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        body = None if payload is None else json.dumps(payload).encode()
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout
        )
        try:
            try:
                conn.connect()
            except (socket.timeout, TimeoutError) as exc:
                raise ServeError(
                    f"connect to {self.base_url} timed out "
                    f"after {self.connect_timeout:g}s"
                ) from exc
            except OSError as exc:
                raise ServeError(f"cannot reach {self.base_url}: {exc}") from exc
            conn.sock.settimeout(self.read_timeout)
            try:
                conn.request(
                    method,
                    self._base_path + path,
                    body=body,
                    headers={"Content-Type": "application/json",
                             "Connection": "close"},
                )
                response = conn.getresponse()
                raw = response.read()
            except (socket.timeout, TimeoutError) as exc:
                raise ServeError(
                    f"{method} {path} to {self.base_url} timed out "
                    f"after {self.read_timeout:g}s waiting for the response"
                ) from exc
            except (http.client.HTTPException, OSError) as exc:
                raise ServeError(
                    f"transport error talking to {self.base_url}: {exc}"
                ) from exc
        finally:
            conn.close()
        if 200 <= response.status < 300:
            try:
                return json.loads(raw)
            except ValueError as exc:
                raise ServeError(
                    f"non-JSON {response.status} response from {self.base_url}: {exc}"
                ) from None
        try:
            error_payload = json.loads(raw)
        except ValueError:
            error_payload = {
                "error": {"type": "http", "message": f"HTTP {response.status}"}
            }
        retry_after = None
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        raise ServeClientError(response.status, error_payload, retry_after)

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        delay = self.backoff_seconds
        for attempt in range(self.retries + 1):
            final = attempt == self.retries
            try:
                return self._request_once(method, path, payload)
            except ServeClientError as exc:
                if final or exc.status not in self.RETRY_STATUSES:
                    raise
                wait = max(delay, exc.retry_after_seconds or 0.0)
            except ServeError:
                # Transport failure.  Requests are idempotent (pure
                # predictions), so replaying one that may have executed
                # is safe.
                if final:
                    raise
                wait = delay
            time.sleep(min(wait, self.backoff_cap_seconds))
            delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    # -- API ---------------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def model(self) -> Dict[str, object]:
        """Identity of the artifact currently serving (version/sha256/path)."""
        return self._request("GET", "/v1/model")

    def reload_model(self) -> Dict[str, object]:
        """Ask a registry-backed server to follow its ``current`` pointer.

        Returns ``{"model": {...}, "swapped": bool}``; raises
        :class:`ServeClientError` (400) when the server was not started
        from a registry directory.
        """
        return self._request("POST", "/v1/model/reload", {})

    def _predict_payload(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: Optional[float],
        objectives_for: Optional[str],
        deadline_ms: Optional[float],
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kernel": kernel,
            "points": [point_payload(p) for p in points],
        }
        if valid_threshold is not None:
            payload["valid_threshold"] = valid_threshold
        if objectives_for is not None:
            payload["objectives_for"] = objectives_for
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return payload

    def predict(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: Optional[float] = None,
        objectives_for: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[Prediction]:
        """Predict a batch of design points.

        ``deadline_ms`` is this request's latency budget: the server
        sheds (429 + ``Retry-After``) any point it cannot start by then
        instead of computing a stale answer.
        """
        response = self._request(
            "POST", "/v1/predict",
            self._predict_payload(
                kernel, points, valid_threshold, objectives_for, deadline_ms
            ),
        )
        return [prediction_from_payload(p) for p in response["predictions"]]

    def predict_with_model(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: Optional[float] = None,
        objectives_for: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Tuple[List[Prediction], Dict[str, object]]:
        """Like :meth:`predict`, also returning the server's model identity.

        Returns ``(predictions, model_info)`` where ``model_info`` names
        the artifact version that computed this batch — stable within a
        response even when the server hot-swaps mid-stream.
        """
        response = self._request(
            "POST", "/v1/predict",
            self._predict_payload(
                kernel, points, valid_threshold, objectives_for, deadline_ms
            ),
        )
        predictions = [prediction_from_payload(p) for p in response["predictions"]]
        return predictions, response.get("model", {})

    def predict_one(
        self,
        kernel: str,
        point: DesignPoint,
        valid_threshold: Optional[float] = None,
        objectives_for: Optional[str] = None,
    ) -> Prediction:
        return self.predict(kernel, [point], valid_threshold, objectives_for)[0]

    def dse_top(
        self,
        kernel: str,
        top: int = 10,
        time_limit: float = 10.0,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run the model-driven search server-side; returns the JSON payload
        (same schema as ``repro dse --output``).  ``workers>1`` asks the
        server for the sharded parallel orchestrator (bit-identical
        results, capped server-side).  ``strategy`` selects a budgeted
        searcher (``"race"``/``"sa"``/``"rl"``/``"greedy"``/``"random"``)
        spending at most ``budget`` distinct surrogate queries,
        bit-reproducible for a fixed ``seed``; race payloads carry the
        bandit's budget ledger under ``"race"``."""
        body = {"kernel": kernel, "top": top, "time_limit": time_limit}
        if workers is not None:
            body["workers"] = workers
        if strategy is not None:
            body["strategy"] = strategy
        if budget is not None:
            body["budget"] = budget
        if seed is not None:
            body["seed"] = seed
        return self._request("POST", "/v1/dse/top", body)
