"""The request-level serving façade over one loaded predictor stack.

:class:`PredictorService` owns the evaluation pipeline, the
micro-batcher, and the metrics for one artifact.  The HTTP layer (and
tests) talk to it in domain terms — kernels, design points,
:class:`~repro.model.predictor.Prediction` — while it handles request
validation, point completion, batching, per-request deadlines, and
server-side DSE.

The predictor is held in a *generation*: predictor + pipeline +
micro-batcher + model identity, swapped atomically by
:meth:`PredictorService.swap`.  Each request pins the generation it
entered with (an in-flight refcount), so every response is computed
end-to-end by exactly one model version — the one whose hash it
reports — and a swap drains in-flight work on the old generation
before closing its batcher, dropping zero requests.

Validation errors raise :class:`~repro.errors.ReproError` subclasses
the HTTP layer maps to structured 4xx responses; overload raises
:class:`~repro.errors.BacklogFullError` and expired deadlines raise
:class:`~repro.errors.DeadlineExceededError`, both mapped to HTTP 429
with a ``Retry-After`` hint.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..designspace import DesignSpace, build_design_space
from ..designspace.space import DesignPoint
from ..dse.pipeline import EvaluationPipeline
from ..dse.parallel import ParallelDSE
from ..dse.search import ModelDSE
from ..errors import DesignSpaceError, HLSError, ServeError
from ..hls.device import DEFAULT_DEVICE, get_device, list_devices
from ..kernels import get_kernel, list_kernels
from ..model.predictor import DEFAULT_VALID_THRESHOLD, Prediction
from .batcher import MicroBatcher
from .metrics import ServeMetrics
from .schemas import dse_result_payload

__all__ = ["PredictorService"]


class _Generation:
    """One model version's serving state: pipeline, batcher, identity.

    ``acquire``/``release`` bracket every request served by this
    generation; ``retire`` blocks new entries and waits for the
    in-flight count to drain.  That handshake is what makes a swap
    both zero-drop (nothing is rejected mid-flight) and bit-consistent
    (no request straddles two model versions).
    """

    def __init__(self, predictor, pipeline, batcher, info: Dict[str, object],
                 pipeline_for=None):
        self.predictor = predictor
        self.pipeline = pipeline
        self.batcher = batcher
        self.info = dict(info)
        # ``pipeline_for(device_name)`` lazily builds a pipeline bound
        # to another registered device (sharing this generation's model
        # weights); the default serves only the predictor's own target.
        self.pipeline_for = pipeline_for or (lambda name: pipeline)
        self._cond = threading.Condition()
        self._inflight = 0
        self._retired = False

    def acquire(self) -> bool:
        with self._cond:
            if self._retired:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            if self._inflight <= 0:
                self._cond.notify_all()

    def retire(self) -> None:
        """Refuse new requests, then wait for in-flight ones to finish."""
        with self._cond:
            self._retired = True
            while self._inflight > 0:
                self._cond.wait()


class PredictorService:
    """Predictions, server-side DSE, and metrics for one predictor.

    Parameters
    ----------
    predictor:
        A loaded :class:`~repro.model.predictor.GNNDSEPredictor` (or
        any ``predict_batch`` duck type the pipeline accepts).
    batch_size:
        Micro-batch capacity; also the pipeline's template size so one
        full micro-batch is one compiled forward.
    max_delay_seconds:
        Micro-batcher flush deadline for partial batches.
    max_pending:
        Bound on queued requests before load shedding kicks in.
    request_timeout_seconds:
        Per-request wait bound inside :meth:`predict`.
    max_dse_seconds:
        Cap on client-supplied ``time_limit`` for server-side DSE.
    model_info:
        Identity of the served model (``version``, ``sha256``,
        ``path``), reported by ``/v1/model`` and stamped on every
        response; defaults to an anonymous identity.
    registry:
        Optional :class:`~repro.serve.registry.ModelRegistry` this
        service can :meth:`reload` from (follows the ``current``
        pointer and hot-swaps on change).
    dispatch_overhead_seconds:
        Modeled extra cost per batch dispatch (a sleep before the
        forward pass).  Load tests use it to stand in for accelerator
        inference latency, so worker-scaling measurements are about
        scheduling — not this container's core count.  0 (default)
        disables it.
    """

    def __init__(
        self,
        predictor,
        batch_size: int = 16,
        max_delay_seconds: float = 0.005,
        max_pending: int = 1024,
        engine: str = "auto",
        cache: bool = True,
        request_timeout_seconds: float = 30.0,
        max_dse_seconds: float = 60.0,
        model_info: Optional[Dict[str, object]] = None,
        registry=None,
        dispatch_overhead_seconds: float = 0.0,
    ):
        self.metrics = ServeMetrics()
        self.request_timeout_seconds = float(request_timeout_seconds)
        self.max_dse_seconds = float(max_dse_seconds)
        self.registry = registry
        self._batch_size = int(batch_size)
        self._max_delay_seconds = float(max_delay_seconds)
        self._max_pending = int(max_pending)
        self._engine = engine
        self._cache = cache
        self._dispatch_overhead_seconds = max(float(dispatch_overhead_seconds), 0.0)
        self._spaces: Dict[str, DesignSpace] = {}
        self._spaces_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self._closed = False
        self.swaps = 0
        self._gen = self._make_generation(predictor, model_info)

    def _make_generation(
        self, predictor, model_info: Optional[Dict[str, object]]
    ) -> _Generation:
        pipeline = EvaluationPipeline(
            predictor,
            batch_size=self._batch_size,
            engine=self._engine,
            cache=self._cache,
        )
        home_device = getattr(getattr(predictor, "device", None), "name", "") or ""
        device_pipelines: Dict[str, EvaluationPipeline] = {}
        device_lock = threading.Lock()

        def pipeline_for(device_name: str) -> EvaluationPipeline:
            """Pipeline serving ``device_name`` (lazily built per device).

            "" and the predictor's own target map to the base pipeline;
            other registered devices get a pipeline around the predictor
            re-bound via ``for_device`` — same weights, device-conditioned
            encodings, capacity-rescaled utilizations.
            """
            if not device_name or device_name == home_device:
                return pipeline
            if home_device == "" and device_name == DEFAULT_DEVICE.name:
                return pipeline  # explicit reference device == unbound predictor
            if not hasattr(predictor, "for_device"):
                raise ServeError(
                    f"served model cannot target device {device_name!r}: "
                    "predictor does not support device re-binding"
                )
            with device_lock:
                bound = device_pipelines.get(device_name)
                if bound is None:
                    bound = device_pipelines[device_name] = EvaluationPipeline(
                        predictor.for_device(get_device(device_name)),
                        batch_size=self._batch_size,
                        engine=self._engine,
                        cache=self._cache,
                    )
                return bound

        overhead = self._dispatch_overhead_seconds

        def predict_fn(kernel, points, device="", **kwargs):
            if overhead > 0.0:
                time.sleep(overhead)
            return pipeline_for(device).predict_batch(kernel, points, **kwargs)

        batcher = MicroBatcher(
            predict_fn,
            batch_size=self._batch_size,
            max_delay_seconds=self._max_delay_seconds,
            max_pending=self._max_pending,
            metrics=self.metrics,
        )
        info = {"version": None, "sha256": None, "path": None}
        info.update(model_info or {})
        return _Generation(predictor, pipeline, batcher, info, pipeline_for=pipeline_for)

    # -- generation access (kept as attributes for callers and tests) ----------

    @property
    def predictor(self):
        return self._gen.predictor

    @property
    def pipeline(self) -> EvaluationPipeline:
        return self._gen.pipeline

    @property
    def batcher(self) -> MicroBatcher:
        return self._gen.batcher

    @batcher.setter
    def batcher(self, batcher: MicroBatcher) -> None:
        # Tests replace the batcher to instrument dispatch; the swap
        # machinery owns it otherwise.
        self._gen.batcher = batcher

    @property
    def model_info(self) -> Dict[str, object]:
        return dict(self._gen.info)

    # -- hot swap ---------------------------------------------------------------

    def swap(self, predictor, model_info: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Hot-swap to a new predictor with zero dropped requests.

        Builds the new generation first (same batching/engine knobs),
        flips the service to it, then retires the old generation:
        requests already inside it finish on the old model (and report
        the old hash); everything arriving after the flip runs on the
        new one.  Only after the drain does the old batcher shut down.
        """
        if self._closed:
            raise ServeError("service is shut down")
        new_gen = self._make_generation(predictor, model_info)
        with self._swap_lock:
            old_gen = self._gen
            self._gen = new_gen
            self.swaps += 1
        old_gen.retire()
        old_gen.batcher.close(drain=True)
        return dict(new_gen.info)

    def reload(self) -> Tuple[Dict[str, object], bool]:
        """Follow the registry's ``current`` pointer; swap if it moved.

        Returns ``(model_info, swapped)``.  Raises
        :class:`~repro.errors.ServeError` when the service was not
        started from a registry.
        """
        if self.registry is None:
            raise ServeError(
                "service is not backed by a model registry; "
                "restart `repro serve` with a registry directory to enable reload"
            )
        current = self.registry.current()
        if current is None:
            raise ServeError(f"registry {self.registry.root} has no current version")
        if current.sha256 == self._gen.info.get("sha256"):
            return self.model_info, False
        from .registry import load_artifact

        predictor = load_artifact(current.path)
        info = self.swap(predictor, current.payload())
        return info, True

    def _acquired_generation(self) -> _Generation:
        """Pin the serving generation for one request (retry over swaps)."""
        while True:
            gen = self._gen
            if gen.acquire():
                return gen

    # -- request validation ----------------------------------------------------

    def space(self, kernel: str) -> DesignSpace:
        with self._spaces_lock:
            space = self._spaces.get(kernel)
            if space is None:
                try:
                    spec = get_kernel(kernel)
                except KeyError:
                    raise ServeError(
                        f"unknown kernel {kernel!r}; known: {', '.join(list_kernels())}"
                    ) from None
                space = self._spaces[kernel] = build_design_space(spec)
            return space

    def resolve_device(self, name: str):
        """Registered device for ``name`` ("" = the reference device).

        Raises :class:`~repro.errors.ServeError` (mapped to a 400 by
        the HTTP layer) for names not in the registry.
        """
        if not name:
            return DEFAULT_DEVICE
        try:
            return get_device(name)
        except HLSError:
            raise ServeError(
                f"unknown device {name!r}; known devices: {list_devices()}"
            ) from None

    def complete_point(self, kernel: str, point: DesignPoint) -> DesignPoint:
        """Fill omitted knobs with their neutral setting and validate.

        Clients may send only the pragmas they care about; the completed
        point is what gets predicted, exactly as ``repro synthesize``
        treats ``--set``.
        """
        space = self.space(kernel)
        full = space.default_point()
        for name in point:
            if name not in full:
                raise DesignSpaceError(f"{kernel}: unknown knob {name!r}")
        full.update(point)
        space.validate(full)
        return full

    # -- prediction ------------------------------------------------------------

    def predict_versioned(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        objectives_for: str = "all",
        deadline_seconds: Optional[float] = None,
        device: str = "",
    ) -> Tuple[List[Prediction], Dict[str, object]]:
        """Like :meth:`predict`, also returning which model answered.

        The generation is pinned before the first point is enqueued and
        held until the last future resolves, so the whole batch — and
        the identity reported with it — belongs to one model version
        even when a hot swap lands mid-request.

        ``deadline_seconds`` is the client's latency budget: one
        absolute deadline is stamped for the whole request at admission,
        and the batcher sheds any point still queued when it passes
        (:class:`~repro.errors.DeadlineExceededError`) instead of
        computing an answer nobody is waiting for.
        """
        if self._closed:
            raise ServeError("service is shut down")
        if objectives_for not in ("all", "valid"):
            raise ServeError(f"unknown objectives_for {objectives_for!r}")
        if device:
            resolved = self.resolve_device(device)
            if getattr(resolved, "kind", "fpga") != "fpga":
                raise ServeError(
                    f"device {resolved.name!r} is a {resolved.kind} target; "
                    "the surrogate serves FPGA devices only "
                    "(use /v1/dse/top for analytic CGRA search)"
                )
            device = resolved.name
        deadline = None
        if deadline_seconds is not None:
            if deadline_seconds <= 0:
                raise ServeError(
                    f"deadline_seconds must be > 0, got {deadline_seconds}"
                )
            deadline = time.monotonic() + float(deadline_seconds)
        completed = [self.complete_point(kernel, p) for p in points]
        gen = self._acquired_generation()
        try:
            futures = [
                gen.batcher.submit(
                    kernel, p, valid_threshold, objectives_for,
                    deadline=deadline, device=device,
                )
                for p in completed
            ]
            try:
                predictions = [
                    f.result(timeout=self.request_timeout_seconds) for f in futures
                ]
            except concurrent.futures.TimeoutError:
                raise ServeError(
                    f"prediction timed out after {self.request_timeout_seconds:g}s"
                ) from None
        finally:
            gen.release()
        return predictions, dict(gen.info)

    def predict(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        objectives_for: str = "all",
        device: str = "",
    ) -> List[Prediction]:
        """Validate, enqueue, and await predictions for ``points``.

        Points from one call still ride the shared micro-batcher, so
        concurrent callers' singles and small batches coalesce into
        engine-sized forwards.
        """
        return self.predict_versioned(
            kernel, points, valid_threshold, objectives_for, device=device
        )[0]

    # -- server-side DSE ---------------------------------------------------------

    #: Upper bound on ``workers`` accepted by :meth:`dse_top`.
    MAX_DSE_WORKERS = 8

    #: Upper bound on the surrogate-query budget of a budgeted strategy.
    MAX_DSE_BUDGET = 20_000

    #: Strategies :meth:`dse_top` accepts (beam = the default ModelDSE).
    DSE_STRATEGIES = ("beam", "race", "sa", "rl", "greedy", "random")

    def dse_top(
        self,
        kernel: str,
        top: int = 10,
        time_limit_seconds: float = 10.0,
        workers: int = 1,
        strategy: str = "beam",
        budget: int = 1000,
        seed: int = 0,
        device: str = "",
    ) -> Dict[str, object]:
        """Run the model-driven search server-side; returns the JSON payload.

        With ``workers=1`` (the default) the search shares the service
        pipeline (and therefore its caches and batch templates); the
        pipeline's internal lock interleaves the search's batches with
        concurrent predict traffic.  ``workers>1`` runs the sharded
        :class:`~repro.dse.parallel.ParallelDSE` orchestrator instead —
        worker processes get their own pipelines, and the merged result
        is bit-identical to the serial sweep.

        ``strategy`` selects the searcher: ``"beam"`` is the ModelDSE
        sweep; the budgeted strategies (``"race"``/``"sa"``/``"rl"``/
        ``"greedy"``/``"random"``) spend at most ``budget`` distinct
        surrogate queries and return the shared Pareto front plus, for
        races, the bandit's budget ledger in the payload's ``race``
        field.  Budgeted runs are serial (``workers`` must stay 1) and
        bit-reproducible for a fixed ``seed``.
        """
        if self._closed:
            raise ServeError("service is shut down")
        if top < 1:
            raise ServeError(f"top must be >= 1, got {top}")
        workers = int(workers)
        if not 1 <= workers <= self.MAX_DSE_WORKERS:
            raise ServeError(
                f"workers must be between 1 and {self.MAX_DSE_WORKERS}, got {workers}"
            )
        if strategy not in self.DSE_STRATEGIES:
            raise ServeError(
                f"unknown strategy {strategy!r}; known: {list(self.DSE_STRATEGIES)}"
            )
        budget = int(budget)
        if strategy != "beam":
            if workers != 1:
                raise ServeError(
                    f"strategy {strategy!r} runs serially; workers must be 1"
                )
            if not 1 <= budget <= self.MAX_DSE_BUDGET:
                raise ServeError(
                    f"budget must be between 1 and {self.MAX_DSE_BUDGET}, "
                    f"got {budget}"
                )
        time_limit = min(float(time_limit_seconds), self.max_dse_seconds)
        if time_limit <= 0:
            raise ServeError(f"time_limit must be > 0, got {time_limit_seconds}")
        target = self.resolve_device(device) if device else None
        if target is not None and target.name == DEFAULT_DEVICE.name:
            target = None  # explicit reference device == the default path
        if target is not None and (strategy != "beam" or workers != 1):
            raise ServeError(
                "device-targeted DSE runs the serial beam search; "
                "set strategy='beam' and workers=1"
            )
        space = self.space(kernel)  # raises ServeError on unknown kernels
        gen = self._acquired_generation()
        try:
            if target is not None:
                result = self._device_dse(gen, target, kernel, space, top, time_limit)
                payload = dse_result_payload(result)
            elif strategy != "beam":
                from ..dse.race import DEFAULT_ARMS, run_race

                arms = DEFAULT_ARMS if strategy == "race" else (strategy,)
                race = run_race(
                    gen.pipeline,
                    get_kernel(kernel),
                    space,
                    budget=budget,
                    strategies=arms,
                    top_m=int(top),
                    seed=int(seed),
                )
                result = race.as_dse_result(stats=gen.pipeline.stats_snapshot())
                result.strategy = strategy
                payload = dse_result_payload(result)
            elif workers > 1:
                parallel = ParallelDSE(
                    gen.predictor,
                    get_kernel(kernel),
                    space,
                    workers=workers,
                    top_m=int(top),
                )
                payload = dse_result_payload(
                    parallel.run(time_limit_seconds=time_limit)
                )
            else:
                dse = ModelDSE(
                    gen.predictor,
                    get_kernel(kernel),
                    space,
                    top_m=int(top),
                    pipeline=gen.pipeline,
                )
                result = dse.run(time_limit_seconds=time_limit)
                payload = dse_result_payload(result)
            payload["model"] = dict(gen.info)
        finally:
            gen.release()
        return payload

    def _device_dse(
        self, gen: _Generation, target, kernel: str, space, top: int, time_limit: float
    ):
        """Serial beam search bound to a non-reference registry device.

        FPGA targets reuse the generation's model through a per-device
        pipeline (device-conditioned encodings + capacity-rescaled
        utilizations); CGRA-style targets — which the surrogate was
        never trained for — run the analytic evaluator instead.
        """
        if getattr(target, "kind", "fpga") == "fpga" and hasattr(
            gen.predictor, "for_device"
        ):
            pipeline = gen.pipeline_for(target.name)
            dse = ModelDSE(
                pipeline.predictor,
                get_kernel(kernel),
                space,
                top_m=int(top),
                pipeline=pipeline,
                device=target,
            )
        else:
            from ..dse.crossdevice import AnalyticPredictor

            dse = ModelDSE(
                AnalyticPredictor(target),
                get_kernel(kernel),
                space,
                top_m=int(top),
                pipeline=None,
                use_pipeline=False,
                device=target,
            )
        return dse.run(time_limit_seconds=time_limit)

    # -- health / metrics --------------------------------------------------------

    def health(self) -> Dict[str, object]:
        gen = self._gen
        return {
            "status": "ok" if not self._closed else "draining",
            "kernels": list_kernels(),
            "engine": gen.pipeline.stats.engine or gen.pipeline.engine_mode,
            "batch_size": gen.batcher.batch_size,
            "pending_requests": gen.batcher.pending(),
            "model": dict(gen.info),
            "swaps": self.swaps,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot(self._gen.pipeline.stats_snapshot())

    # -- lifecycle ---------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; with ``drain`` finish in-flight batches."""
        self._closed = True
        self._gen.batcher.close(drain=drain)

    def __enter__(self) -> "PredictorService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
