"""The request-level serving façade over one loaded predictor stack.

:class:`PredictorService` owns the evaluation pipeline, the
micro-batcher, and the metrics for one artifact.  The HTTP layer (and
tests) talk to it in domain terms — kernels, design points,
:class:`~repro.model.predictor.Prediction` — while it handles request
validation, point completion, batching, per-request deadlines, and
server-side DSE.

Validation errors raise :class:`~repro.errors.ReproError` subclasses
the HTTP layer maps to structured 4xx responses; overload raises
:class:`~repro.errors.BacklogFullError` (503).
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Dict, List, Sequence

from ..designspace import DesignSpace, build_design_space
from ..designspace.space import DesignPoint
from ..dse.pipeline import EvaluationPipeline
from ..dse.parallel import ParallelDSE
from ..dse.search import ModelDSE
from ..errors import DesignSpaceError, ServeError
from ..kernels import get_kernel, list_kernels
from ..model.predictor import DEFAULT_VALID_THRESHOLD, Prediction
from .batcher import MicroBatcher
from .metrics import ServeMetrics
from .schemas import dse_result_payload

__all__ = ["PredictorService"]


class PredictorService:
    """Predictions, server-side DSE, and metrics for one predictor.

    Parameters
    ----------
    predictor:
        A loaded :class:`~repro.model.predictor.GNNDSEPredictor` (or
        any ``predict_batch`` duck type the pipeline accepts).
    batch_size:
        Micro-batch capacity; also the pipeline's template size so one
        full micro-batch is one compiled forward.
    max_delay_seconds:
        Micro-batcher flush deadline for partial batches.
    max_pending:
        Bound on queued requests before load shedding kicks in.
    request_timeout_seconds:
        Per-request wait bound inside :meth:`predict`.
    max_dse_seconds:
        Cap on client-supplied ``time_limit`` for server-side DSE.
    """

    def __init__(
        self,
        predictor,
        batch_size: int = 16,
        max_delay_seconds: float = 0.005,
        max_pending: int = 1024,
        engine: str = "auto",
        cache: bool = True,
        request_timeout_seconds: float = 30.0,
        max_dse_seconds: float = 60.0,
    ):
        self.predictor = predictor
        self.pipeline = EvaluationPipeline(
            predictor, batch_size=batch_size, engine=engine, cache=cache
        )
        self.metrics = ServeMetrics()
        self.request_timeout_seconds = float(request_timeout_seconds)
        self.max_dse_seconds = float(max_dse_seconds)
        self.batcher = MicroBatcher(
            self.pipeline.predict_batch,
            batch_size=batch_size,
            max_delay_seconds=max_delay_seconds,
            max_pending=max_pending,
            metrics=self.metrics,
        )
        self._spaces: Dict[str, DesignSpace] = {}
        self._spaces_lock = threading.Lock()
        self._closed = False

    # -- request validation ----------------------------------------------------

    def space(self, kernel: str) -> DesignSpace:
        with self._spaces_lock:
            space = self._spaces.get(kernel)
            if space is None:
                try:
                    spec = get_kernel(kernel)
                except KeyError:
                    raise ServeError(
                        f"unknown kernel {kernel!r}; known: {', '.join(list_kernels())}"
                    ) from None
                space = self._spaces[kernel] = build_design_space(spec)
            return space

    def complete_point(self, kernel: str, point: DesignPoint) -> DesignPoint:
        """Fill omitted knobs with their neutral setting and validate.

        Clients may send only the pragmas they care about; the completed
        point is what gets predicted, exactly as ``repro synthesize``
        treats ``--set``.
        """
        space = self.space(kernel)
        full = space.default_point()
        for name in point:
            if name not in full:
                raise DesignSpaceError(f"{kernel}: unknown knob {name!r}")
        full.update(point)
        space.validate(full)
        return full

    # -- prediction ------------------------------------------------------------

    def predict(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        objectives_for: str = "all",
    ) -> List[Prediction]:
        """Validate, enqueue, and await predictions for ``points``.

        Points from one call still ride the shared micro-batcher, so
        concurrent callers' singles and small batches coalesce into
        engine-sized forwards.
        """
        if self._closed:
            raise ServeError("service is shut down")
        if objectives_for not in ("all", "valid"):
            raise ServeError(f"unknown objectives_for {objectives_for!r}")
        completed = [self.complete_point(kernel, p) for p in points]
        futures = [
            self.batcher.submit(kernel, p, valid_threshold, objectives_for)
            for p in completed
        ]
        try:
            return [
                f.result(timeout=self.request_timeout_seconds) for f in futures
            ]
        except concurrent.futures.TimeoutError:
            raise ServeError(
                f"prediction timed out after {self.request_timeout_seconds:g}s"
            ) from None

    # -- server-side DSE ---------------------------------------------------------

    #: Upper bound on ``workers`` accepted by :meth:`dse_top`.
    MAX_DSE_WORKERS = 8

    def dse_top(
        self,
        kernel: str,
        top: int = 10,
        time_limit_seconds: float = 10.0,
        workers: int = 1,
    ) -> Dict[str, object]:
        """Run the model-driven search server-side; returns the JSON payload.

        With ``workers=1`` (the default) the search shares the service
        pipeline (and therefore its caches and batch templates); the
        pipeline's internal lock interleaves the search's batches with
        concurrent predict traffic.  ``workers>1`` runs the sharded
        :class:`~repro.dse.parallel.ParallelDSE` orchestrator instead —
        worker processes get their own pipelines, and the merged result
        is bit-identical to the serial sweep.
        """
        if self._closed:
            raise ServeError("service is shut down")
        if top < 1:
            raise ServeError(f"top must be >= 1, got {top}")
        workers = int(workers)
        if not 1 <= workers <= self.MAX_DSE_WORKERS:
            raise ServeError(
                f"workers must be between 1 and {self.MAX_DSE_WORKERS}, got {workers}"
            )
        time_limit = min(float(time_limit_seconds), self.max_dse_seconds)
        if time_limit <= 0:
            raise ServeError(f"time_limit must be > 0, got {time_limit_seconds}")
        space = self.space(kernel)  # raises ServeError on unknown kernels
        if workers > 1:
            parallel = ParallelDSE(
                self.predictor,
                get_kernel(kernel),
                space,
                workers=workers,
                top_m=int(top),
            )
            return dse_result_payload(parallel.run(time_limit_seconds=time_limit))
        dse = ModelDSE(
            self.predictor,
            get_kernel(kernel),
            space,
            top_m=int(top),
            pipeline=self.pipeline,
        )
        result = dse.run(time_limit_seconds=time_limit)
        return dse_result_payload(result)

    # -- health / metrics --------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return {
            "status": "ok" if not self._closed else "draining",
            "kernels": list_kernels(),
            "engine": self.pipeline.stats.engine or self.pipeline.engine_mode,
            "batch_size": self.batcher.batch_size,
            "pending_requests": self.batcher.pending(),
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot(self.pipeline.stats_snapshot())

    # -- lifecycle ---------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; with ``drain`` finish in-flight batches."""
        self._closed = True
        self.batcher.close(drain=drain)

    def __enter__(self) -> "PredictorService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
