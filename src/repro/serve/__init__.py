"""Model serving: versioned artifacts, micro-batching, HTTP inference.

The paper's pitch is that the trained GNN surrogate answers "is this
pragma configuration valid, and how fast is it" in milliseconds instead
of HLS-hours — i.e. it is an *inference service* for DSE clients.  This
package turns the batched evaluation pipeline into exactly that:

- :mod:`repro.serve.registry` — versioned, content-addressed save/load
  of a complete trained predictor stack (weights, normalizer, configs,
  vocabulary fingerprint) with manifest/schema checks, plus
  :class:`~repro.serve.registry.ModelRegistry`: a directory of artifact
  versions behind an atomic ``current`` pointer for zero-downtime
  hot swaps;
- :mod:`repro.serve.batcher` — a thread-safe micro-batching scheduler
  that coalesces concurrent predict requests into engine-sized batches
  (flush on batch-size or deadline) behind a bounded queue;
- :mod:`repro.serve.service` — the request-level façade: validation,
  batching, server-side DSE, metrics;
- :mod:`repro.serve.http` — a stdlib-only ``ThreadingHTTPServer`` JSON
  API (``/v1/predict``, ``/v1/dse/top``, ``/healthz``, ``/metrics``);
- :mod:`repro.serve.pool` — pre-fork multi-process scale-out: N workers
  accepting from one shared listener, with heartbeat supervision,
  respawn, fleet-wide hot-swap, and zero-gap rolling restarts;
- :mod:`repro.serve.client` — the matching Python client (connect/read
  timeouts, bounded retry with backoff).

Server predictions are bit-identical to in-process
:class:`~repro.dse.pipeline.EvaluationPipeline` predictions for the
same artifact (see ``tests/test_serve.py``).
"""

from .batcher import MicroBatcher
from .client import ServeClient, ServeClientError
from .http import ServeHTTPServer, start_server
from .metrics import ServeMetrics
from .pool import PoolHooks, WorkerPool
from .registry import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactVersion,
    ModelRegistry,
    artifact_fingerprint,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
    vocab_fingerprint,
)
from .service import PredictorService

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactVersion",
    "MicroBatcher",
    "ModelRegistry",
    "PoolHooks",
    "PredictorService",
    "ServeClient",
    "ServeClientError",
    "ServeHTTPServer",
    "ServeMetrics",
    "WorkerPool",
    "artifact_fingerprint",
    "load_artifact",
    "read_manifest",
    "save_artifact",
    "start_server",
    "verify_artifact",
    "vocab_fingerprint",
]
