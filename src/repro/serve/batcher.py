"""Micro-batching scheduler: coalesce concurrent predicts into batches.

Concurrent clients each ask for one prediction at a time, but the
compiled engine's throughput comes from batch-sized forwards.  The
:class:`MicroBatcher` sits between them: requests enter a bounded
queue; a single worker thread groups requests that can share a forward
pass (same kernel, threshold, and cascade mode) and flushes a group
when it reaches ``batch_size`` **or** its oldest request has waited
``max_delay_seconds`` — whichever comes first.  Excess load is rejected
up front with :class:`~repro.errors.BacklogFullError` instead of
letting the queue (and every client's latency) grow without bound.

Admission control is deadline-aware.  A request may carry an absolute
deadline (monotonic-clock seconds): one that arrives already expired is
rejected at :meth:`submit`; one that expires while queued is rejected
at flush time with :class:`~repro.errors.DeadlineExceededError` instead
of spending forward-pass time on an answer nobody is waiting for; and a
group containing deadline-bound requests flushes no later than its
tightest deadline, even when the batch is not full.  Both rejection
paths carry a ``Retry-After`` hint derived from the queue depth and a
running estimate of dispatch cost.

Results are delivered through :class:`concurrent.futures.Future`, so
callers block only for their own request.  Because the evaluation
pipeline itself is bit-exact for any batch composition, coalescing
changes throughput but never values.

All scheduling math runs on an injectable monotonic ``clock`` — tests
drive the flush/expiry decisions with a fake clock and zero wall-clock
sleeps (see ``tests/test_serve.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, List, Optional, Tuple

from ..designspace.space import DesignPoint
from ..errors import BacklogFullError, DeadlineExceededError, ServeError
from ..model.predictor import DEFAULT_VALID_THRESHOLD, Prediction

__all__ = ["MicroBatcher"]

#: (kernel, valid_threshold, objectives_for, device) — requests sharing
#: this can ride in one ``predict_batch`` call.  The device is part of
#: the key so two targets' traffic can never coalesce into one forward
#: (their encodings and utilization scales differ).
_GroupKey = Tuple[str, float, str, str]


class _Request:
    __slots__ = ("key", "point", "future", "enqueued", "deadline")

    def __init__(self, key: _GroupKey, point: DesignPoint, enqueued: float,
                 deadline: Optional[float]):
        self.key = key
        self.point = point
        self.future: Future = Future()
        self.enqueued = enqueued
        self.deadline = deadline


class MicroBatcher:
    """Bounded request queue + one flushing worker thread.

    Parameters
    ----------
    predict_fn:
        ``predict_fn(kernel, points, valid_threshold, objectives_for)``
        returning one :class:`Prediction` per point; called from the
        worker thread only.
    batch_size:
        Flush a group as soon as it has this many requests.
    max_delay_seconds:
        Flush a group when its oldest request has waited this long,
        even if the batch is not full (bounds added latency under light
        load).
    max_pending:
        Queue bound; :meth:`submit` raises
        :class:`~repro.errors.BacklogFullError` beyond it.
    metrics:
        Optional :class:`~repro.serve.metrics.ServeMetrics` that
        receives batch-fill, rejection, and deadline-expiry counts.
    clock:
        Monotonic time source for every enqueue/deadline/flush decision
        (default :func:`time.monotonic`); injectable for deterministic
        tests.
    start_worker:
        With ``False`` the flushing thread is not started and the
        scheduling core (:meth:`_select_locked`) can be driven
        synchronously — test-only.
    """

    def __init__(
        self,
        predict_fn: Callable[..., List[Prediction]],
        batch_size: int = 16,
        max_delay_seconds: float = 0.005,
        max_pending: int = 1024,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        start_worker: bool = True,
    ):
        if batch_size < 1:
            raise ServeError(f"batch_size must be >= 1, got {batch_size}")
        if max_pending < batch_size:
            raise ServeError("max_pending must be at least batch_size")
        self._predict_fn = predict_fn
        self.batch_size = int(batch_size)
        self.max_delay_seconds = float(max_delay_seconds)
        self.max_pending = int(max_pending)
        self.metrics = metrics
        self._clock = clock
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._drain_on_close = True
        # EWMA of recent dispatch durations: feeds the Retry-After hint
        # so shed clients back off roughly one queue-drain, not a guess.
        self._dispatch_ewma = 0.0
        self._worker: Optional[threading.Thread] = None
        if start_worker:
            self._worker = threading.Thread(
                target=self._run, name="repro-serve-batcher", daemon=True
            )
            self._worker.start()

    # -- client side ---------------------------------------------------------

    def submit(
        self,
        kernel: str,
        point: DesignPoint,
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        objectives_for: str = "all",
        deadline: Optional[float] = None,
        device: str = "",
    ) -> Future:
        """Enqueue one prediction request; returns its future.

        ``deadline`` is an absolute clock value (same epoch as the
        batcher's ``clock``); a request admitted after its deadline is
        rejected immediately, one that expires while queued fails with
        :class:`~repro.errors.DeadlineExceededError` at flush time.
        ``device`` is a registered device name ("" = the predictor's
        own target); it keys the batch group and is forwarded to
        ``predict_fn`` only when non-empty.
        """
        now = self._clock()
        with self._cond:
            if self._closing:
                raise ServeError("batcher is shut down")
            if deadline is not None and now > deadline:
                if self.metrics is not None:
                    self.metrics.record_expired()
                raise DeadlineExceededError(
                    f"deadline passed {now - deadline:.3f}s before admission",
                    retry_after_seconds=self._retry_after_locked(),
                )
            if len(self._queue) >= self.max_pending:
                if self.metrics is not None:
                    self.metrics.record_rejection()
                raise BacklogFullError(
                    f"serving queue full ({self.max_pending} pending requests)",
                    retry_after_seconds=self._retry_after_locked(),
                )
            request = _Request(
                (kernel, float(valid_threshold), objectives_for, device),
                point, now, deadline,
            )
            self._queue.append(request)
            self._cond.notify()
        return request.future

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def retry_after_hint(self) -> float:
        """Estimated seconds until queued work drains (Retry-After)."""
        with self._cond:
            return self._retry_after_locked()

    def close(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) finish queued work
        first, otherwise fail queued requests with :class:`ServeError`."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._drain_on_close = drain
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduling core (pure given queue state + ``now``) -------------------

    def _retry_after_locked(self) -> float:
        """Retry-After hint: queue depth in groups × per-group cost."""
        groups = max(len(self._queue), 1) / self.batch_size
        per_group = max(self._dispatch_ewma, self.max_delay_seconds, 0.01)
        return max(0.05, groups * per_group)

    def _select_locked(
        self, now: float
    ) -> Tuple[Optional[List[_Request]], List[_Request], Optional[float]]:
        """One flush decision at time ``now``; callers hold the lock.

        Returns ``(group, expired, wait)``: a group ready to dispatch
        (or None), requests whose deadline already passed (removed from
        the queue, not yet failed), and how long to wait before the
        next decision (None = until new work arrives).  The head
        request's group key decides the batch: groups flush in arrival
        order, so one kernel's traffic cannot starve another's.
        """
        expired = [
            r for r in self._queue
            if r.deadline is not None and now > r.deadline
        ]
        if expired:
            dead = set(map(id, expired))
            remaining = [r for r in self._queue if id(r) not in dead]
            self._queue.clear()
            self._queue.extend(remaining)
        if not self._queue:
            return None, expired, None
        head = self._queue[0]
        matching = [r for r in self._queue if r.key == head.key]
        flush_at = head.enqueued + self.max_delay_seconds
        # Deadline-aware flush: a group with deadline-bound members
        # dispatches no later than its tightest deadline, so a request
        # never expires merely because its batch was not full.
        for request in matching:
            if request.deadline is not None and request.deadline < flush_at:
                flush_at = request.deadline
        if len(matching) >= self.batch_size or now >= flush_at or self._closing:
            group = matching[: self.batch_size]
            taken = set(map(id, group))
            remaining = [r for r in self._queue if id(r) not in taken]
            self._queue.clear()
            self._queue.extend(remaining)
            return group, expired, 0.0
        return None, expired, flush_at - now

    # -- worker side ---------------------------------------------------------

    def _fail_expired(self, expired: List[_Request]) -> None:
        for request in expired:
            if self.metrics is not None:
                self.metrics.record_expired()
            request.future.set_exception(
                DeadlineExceededError(
                    "deadline passed before the batch flushed; "
                    "request was not computed",
                    retry_after_seconds=self.retry_after_hint(),
                )
            )

    def _take_group(self) -> Optional[List[_Request]]:
        """Block until a group is ready to flush; None when shut down."""
        while True:
            with self._cond:
                while True:
                    if self._closing and not self._drain_on_close:
                        failed = list(self._queue)
                        self._queue.clear()
                        for request in failed:
                            request.future.set_exception(
                                ServeError("batcher shut down before request ran")
                            )
                        return None
                    group, expired, wait = self._select_locked(self._clock())
                    if group is not None or expired:
                        break
                    if self._closing:
                        return None  # queue drained
                    self._cond.wait(timeout=wait)
            # Deliver expiry failures outside the lock: waiters wake
            # without contending for the scheduling mutex.
            self._fail_expired(expired)
            if group is not None:
                return group

    def _run(self) -> None:
        while True:
            group = self._take_group()
            if group is None:
                return
            kernel, threshold, objectives_for, device = group[0].key
            started = self._clock()
            # The device kwarg is passed only when set, so bare
            # predict_fn stubs (tests, load harnesses) keep working.
            extra = {"device": device} if device else {}
            try:
                predictions = self._predict_fn(
                    kernel,
                    [r.point for r in group],
                    valid_threshold=threshold,
                    objectives_for=objectives_for,
                    **extra,
                )
            except BaseException as exc:  # deliver, don't kill the worker
                for request in group:
                    request.future.set_exception(exc)
                continue
            elapsed = max(self._clock() - started, 0.0)
            with self._cond:
                self._dispatch_ewma = (
                    elapsed if self._dispatch_ewma == 0.0
                    else 0.8 * self._dispatch_ewma + 0.2 * elapsed
                )
            if self.metrics is not None:
                self.metrics.record_batch(len(group))
            for request, prediction in zip(group, predictions):
                request.future.set_result(prediction)
