"""Micro-batching scheduler: coalesce concurrent predicts into batches.

Concurrent clients each ask for one prediction at a time, but the
compiled engine's throughput comes from batch-sized forwards.  The
:class:`MicroBatcher` sits between them: requests enter a bounded
queue; a single worker thread groups requests that can share a forward
pass (same kernel, threshold, and cascade mode) and flushes a group
when it reaches ``batch_size`` **or** its oldest request has waited
``max_delay_seconds`` — whichever comes first.  Excess load is rejected
up front with :class:`~repro.errors.BacklogFullError` instead of
letting the queue (and every client's latency) grow without bound.

Results are delivered through :class:`concurrent.futures.Future`, so
callers block only for their own request.  Because the evaluation
pipeline itself is bit-exact for any batch composition, coalescing
changes throughput but never values.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, List, Optional, Tuple

from ..designspace.space import DesignPoint
from ..errors import BacklogFullError, ServeError
from ..model.predictor import DEFAULT_VALID_THRESHOLD, Prediction

__all__ = ["MicroBatcher"]

#: (kernel, valid_threshold, objectives_for) — requests sharing this can
#: ride in one ``predict_batch`` call.
_GroupKey = Tuple[str, float, str]


class _Request:
    __slots__ = ("key", "point", "future", "enqueued")

    def __init__(self, key: _GroupKey, point: DesignPoint):
        self.key = key
        self.point = point
        self.future: Future = Future()
        self.enqueued = time.monotonic()


class MicroBatcher:
    """Bounded request queue + one flushing worker thread.

    Parameters
    ----------
    predict_fn:
        ``predict_fn(kernel, points, valid_threshold, objectives_for)``
        returning one :class:`Prediction` per point; called from the
        worker thread only.
    batch_size:
        Flush a group as soon as it has this many requests.
    max_delay_seconds:
        Flush a group when its oldest request has waited this long,
        even if the batch is not full (bounds added latency under light
        load).
    max_pending:
        Queue bound; :meth:`submit` raises
        :class:`~repro.errors.BacklogFullError` beyond it.
    metrics:
        Optional :class:`~repro.serve.metrics.ServeMetrics` that
        receives batch-fill and rejection counts.
    """

    def __init__(
        self,
        predict_fn: Callable[..., List[Prediction]],
        batch_size: int = 16,
        max_delay_seconds: float = 0.005,
        max_pending: int = 1024,
        metrics=None,
    ):
        if batch_size < 1:
            raise ServeError(f"batch_size must be >= 1, got {batch_size}")
        if max_pending < batch_size:
            raise ServeError("max_pending must be at least batch_size")
        self._predict_fn = predict_fn
        self.batch_size = int(batch_size)
        self.max_delay_seconds = float(max_delay_seconds)
        self.max_pending = int(max_pending)
        self.metrics = metrics
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._drain_on_close = True
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # -- client side ---------------------------------------------------------

    def submit(
        self,
        kernel: str,
        point: DesignPoint,
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        objectives_for: str = "all",
    ) -> Future:
        """Enqueue one prediction request; returns its future."""
        request = _Request((kernel, float(valid_threshold), objectives_for), point)
        with self._cond:
            if self._closing:
                raise ServeError("batcher is shut down")
            if len(self._queue) >= self.max_pending:
                if self.metrics is not None:
                    self.metrics.record_rejection()
                raise BacklogFullError(
                    f"serving queue full ({self.max_pending} pending requests)"
                )
            self._queue.append(request)
            self._cond.notify()
        return request.future

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) finish queued work
        first, otherwise fail queued requests with :class:`ServeError`."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._drain_on_close = drain
            self._cond.notify_all()
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker side ---------------------------------------------------------

    def _take_group(self) -> Optional[List[_Request]]:
        """Block until a group is ready to flush; None when shut down.

        The head request's group key decides the batch: groups flush in
        arrival order, so one kernel's traffic cannot starve another's.
        """
        with self._cond:
            while True:
                if not self._queue:
                    if self._closing:
                        return None
                    self._cond.wait()
                    continue
                if self._closing and not self._drain_on_close:
                    failed = list(self._queue)
                    self._queue.clear()
                    for request in failed:
                        request.future.set_exception(
                            ServeError("batcher shut down before request ran")
                        )
                    return None
                head = self._queue[0]
                matching = [r for r in self._queue if r.key == head.key]
                deadline = head.enqueued + self.max_delay_seconds
                timeout = deadline - time.monotonic()
                if (
                    len(matching) >= self.batch_size
                    or timeout <= 0
                    or self._closing
                ):
                    group = matching[: self.batch_size]
                    taken = set(map(id, group))
                    remaining = [r for r in self._queue if id(r) not in taken]
                    self._queue.clear()
                    self._queue.extend(remaining)
                    return group
                self._cond.wait(timeout=timeout)

    def _run(self) -> None:
        while True:
            group = self._take_group()
            if group is None:
                return
            kernel, threshold, objectives_for = group[0].key
            try:
                predictions = self._predict_fn(
                    kernel,
                    [r.point for r in group],
                    valid_threshold=threshold,
                    objectives_for=objectives_for,
                )
            except BaseException as exc:  # deliver, don't kill the worker
                for request in group:
                    request.future.set_exception(exc)
                continue
            if self.metrics is not None:
                self.metrics.record_batch(len(group))
            for request, prediction in zip(group, predictions):
                request.future.set_result(prediction)
