"""Thread-safe serving metrics: counters, latency quantiles, batch fill.

Everything the ``/metrics`` endpoint reports lives here.  Latencies are
kept in fixed-size reservoirs (most-recent window) so a long-lived
server's memory stays bounded; quantiles are computed on demand from
the window.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Dict

__all__ = ["ServeMetrics"]

#: Most-recent request latencies kept per endpoint.
_LATENCY_WINDOW = 4096


def _quantile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


class ServeMetrics:
    """Cumulative serving statistics, safe to update from any thread."""

    def __init__(self):
        self._lock = threading.Lock()
        self._started = time.time()
        self._requests: Counter = Counter()  # endpoint -> count
        self._statuses: Counter = Counter()  # http status -> count
        self._latencies: Dict[str, deque] = {}
        self._batch_fill: Counter = Counter()  # fill size -> batches
        self._points = 0
        self._rejected = 0

    # -- recording -----------------------------------------------------------

    def record_request(self, endpoint: str, seconds: float, status: int) -> None:
        with self._lock:
            self._requests[endpoint] += 1
            self._statuses[int(status)] += 1
            window = self._latencies.get(endpoint)
            if window is None:
                window = self._latencies[endpoint] = deque(maxlen=_LATENCY_WINDOW)
            window.append(seconds)

    def record_batch(self, fill: int) -> None:
        with self._lock:
            self._batch_fill[int(fill)] += 1
            self._points += int(fill)

    def record_rejection(self) -> None:
        with self._lock:
            self._rejected += 1

    # -- reading -------------------------------------------------------------

    def mean_batch_fill(self) -> float:
        with self._lock:
            batches = sum(self._batch_fill.values())
            return self._points / batches if batches else 0.0

    def snapshot(self, pipeline_stats=None) -> Dict[str, object]:
        """One JSON-ready dict of everything, for ``/metrics``."""
        with self._lock:
            batches = sum(self._batch_fill.values())
            latency = {}
            for endpoint, window in self._latencies.items():
                values = sorted(window)
                latency[endpoint] = {
                    "count": self._requests[endpoint],
                    "p50_ms": _quantile(values, 0.50) * 1000.0,
                    "p99_ms": _quantile(values, 0.99) * 1000.0,
                    "max_ms": (values[-1] if values else 0.0) * 1000.0,
                }
            out: Dict[str, object] = {
                "uptime_seconds": time.time() - self._started,
                "requests": dict(self._requests),
                "statuses": {str(k): v for k, v in self._statuses.items()},
                "rejected_requests": self._rejected,
                "latency": latency,
                "batches": batches,
                "batched_points": self._points,
                "mean_batch_fill": self._points / batches if batches else 0.0,
                "batch_fill_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_fill.items())
                },
            }
        if pipeline_stats is not None:
            out["pipeline"] = pipeline_stats.to_dict()
        return out
