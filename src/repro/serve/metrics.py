"""Thread-safe serving metrics: counters, latency quantiles, batch fill.

Everything the ``/metrics`` endpoint reports lives here.  Since the
``repro.obs`` subsystem landed, this module is a *consumer* of its
instrument classes rather than a parallel implementation: per-endpoint
latencies are :class:`repro.obs.Histogram` windows (bounded memory,
nearest-rank quantiles — the old private ``_quantile`` helper was
upper-biased, returning 3 for the median of ``[1, 2, 3, 4]``), and the
snapshot surfaces the process-wide :data:`repro.obs.REGISTRY` (pipeline
cache hits, shard retries, heartbeat lag, …) next to the per-server
request stats.

Uptime and latency math run on monotonic clocks; wall-clock time
appears only as the human-facing ``started_at`` stamp.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Dict

from ..obs import Histogram, metrics_payload

__all__ = ["ServeMetrics"]

#: Most-recent request latencies kept per endpoint.
_LATENCY_WINDOW = 4096


class ServeMetrics:
    """Cumulative serving statistics, safe to update from any thread.

    Request/latency/batch-fill state is per-instance (one server, one
    window); the ``obs`` section of :meth:`snapshot` reads the shared
    process registry so DSE and pipeline instruments ride along.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self.started_at = time.time()  # wall clock, display only
        self._requests: Counter = Counter()  # endpoint -> count
        self._statuses: Counter = Counter()  # http status -> count
        self._latencies: Dict[str, Histogram] = {}
        self._batch_fill: Counter = Counter()  # fill size -> batches
        self._points = 0
        self._rejected = 0
        self._expired = 0

    # -- recording -----------------------------------------------------------

    def record_request(self, endpoint: str, seconds: float, status: int) -> None:
        with self._lock:
            self._requests[endpoint] += 1
            self._statuses[int(status)] += 1
            window = self._latencies.get(endpoint)
            if window is None:
                window = self._latencies[endpoint] = Histogram(
                    f"serve.latency.{endpoint}", _LATENCY_WINDOW
                )
        window.observe(seconds)

    def record_batch(self, fill: int) -> None:
        with self._lock:
            self._batch_fill[int(fill)] += 1
            self._points += int(fill)

    def record_rejection(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_expired(self) -> None:
        """Count a request shed because its deadline had already passed."""
        with self._lock:
            self._expired += 1

    # -- reading -------------------------------------------------------------

    def mean_batch_fill(self) -> float:
        with self._lock:
            batches = sum(self._batch_fill.values())
            return self._points / batches if batches else 0.0

    def snapshot(self, pipeline_stats=None) -> Dict[str, object]:
        """One JSON-ready dict of everything, for ``/metrics``."""
        with self._lock:
            batches = sum(self._batch_fill.values())
            latency = {}
            for endpoint, window in self._latencies.items():
                snap = window.snapshot()
                latency[endpoint] = {
                    "count": self._requests[endpoint],
                    "p50_ms": snap["p50"] * 1000.0,
                    "p99_ms": snap["p99"] * 1000.0,
                    "p999_ms": snap["p999"] * 1000.0,
                    "max_ms": snap["max"] * 1000.0,
                }
            out: Dict[str, object] = {
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "started_at": self.started_at,
                "requests": dict(self._requests),
                "statuses": {str(k): v for k, v in self._statuses.items()},
                "rejected_requests": self._rejected,
                "expired_requests": self._expired,
                "latency": latency,
                "batches": batches,
                "batched_points": self._points,
                "mean_batch_fill": self._points / batches if batches else 0.0,
                "batch_fill_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_fill.items())
                },
            }
        if pipeline_stats is not None:
            out["pipeline"] = pipeline_stats.to_dict()
        # Process-wide instruments (dse.*, pipeline.*, serve.*): cache
        # hits, shard retries, heartbeat lag, batch spans, …
        out["obs"] = metrics_payload()
        return out
