"""Table 2: model comparison M1–M7 on the shared database.

For each model variant, trains the regression stack (latency/DSP/LUT/FF
+ separate BRAM model) on the valid designs and the validity classifier
on all designs, then reports per-objective RMSE, their sum ("All"), and
classification accuracy / F1 on the held-out 20% test split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..model.config import MODEL_CONFIGS
from ..model.predictor import train_predictor
from ..model.trainer import TrainConfig
from .context import ExperimentContext, default_context

__all__ = ["Table2Row", "run_table2", "format_table2", "TABLE2_PAPER"]

#: The paper's Table 2 numbers, for side-by-side comparison.
TABLE2_PAPER: Dict[str, Dict[str, float]] = {
    "M1": {"latency": 3.2756, "DSP": 0.5857, "LUT": 0.3115, "FF": 0.2483, "BRAM": 0.3356, "all": 4.7567, "accuracy": 0.52, "f1": 0.42},
    "M2": {"latency": 2.9444, "DSP": 0.4650, "LUT": 0.2401, "FF": 0.1349, "BRAM": 0.1597, "all": 3.9442, "accuracy": 0.78, "f1": 0.40},
    "M3": {"latency": 1.6825, "DSP": 0.4265, "LUT": 0.1642, "FF": 0.1277, "BRAM": 0.1593, "all": 2.5602, "accuracy": 0.79, "f1": 0.51},
    "M4": {"latency": 1.1819, "DSP": 0.2557, "LUT": 0.1266, "FF": 0.1009, "BRAM": 0.1178, "all": 1.7829, "accuracy": 0.85, "f1": 0.68},
    "M5": {"latency": 1.1323, "DSP": 0.2540, "LUT": 0.1245, "FF": 0.0938, "BRAM": 0.1231, "all": 1.7277, "accuracy": 0.85, "f1": 0.76},
    "M6": {"latency": 1.0846, "DSP": 0.2521, "LUT": 0.1112, "FF": 0.0933, "BRAM": 0.0912, "all": 1.6324, "accuracy": 0.92, "f1": 0.86},
    "M7": {"latency": 0.5359, "DSP": 0.1253, "LUT": 0.0762, "FF": 0.0632, "BRAM": 0.0515, "all": 0.8521, "accuracy": 0.93, "f1": 0.87},
}

_METHOD_NAMES = {
    "M1": "MLP-pragma (as in Kwon et al.)",
    "M2": "MLP-pragma-program context",
    "M3": "GNN-DSE - GCN",
    "M4": "GNN-DSE - GAT",
    "M5": "GNN-DSE - TransformerConv",
    "M6": "GNN-DSE - TransformerConv + JKN",
    "M7": "GNN-DSE (TransformerConv + JKN + node att.)",
}


@dataclass
class Table2Row:
    model: str
    method: str
    metrics: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)
    train_seconds: float = 0.0


def run_table2(
    ctx: Optional[ExperimentContext] = None,
    models: Sequence[str] = ("M1", "M2", "M3", "M4", "M5", "M6", "M7"),
    epochs: Optional[int] = None,
    use_cache: bool = True,
) -> List[Table2Row]:
    """Train and evaluate the requested model variants.

    Results are cached per (scale, epochs, seed) context so repeated
    benchmark runs skip the multi-model retraining; pass
    ``use_cache=False`` to force recomputation.
    """
    import time

    ctx = ctx or default_context()
    database = ctx.database()
    epochs = epochs if epochs is not None else ctx.epochs
    cache_name = f"table2_e{epochs}"
    if use_cache:
        cached = ctx.load_result(cache_name)
        if cached and set(cached.get("models", [])) >= set(models):
            by_model = {r["model"]: r for r in cached["rows"]}
            return [
                Table2Row(
                    model=name,
                    method=by_model[name]["method"],
                    metrics=by_model[name]["metrics"],
                    paper=TABLE2_PAPER.get(name, {}),
                    train_seconds=by_model[name].get("train_seconds", 0.0),
                )
                for name in models
            ]
    rows: List[Table2Row] = []
    for name in models:
        if name not in MODEL_CONFIGS:
            raise KeyError(f"unknown model {name!r}")
        start = time.monotonic()
        _, metrics = train_predictor(
            database,
            config_name=name,
            train_config=TrainConfig(epochs=epochs, seed=ctx.seed),
            seed=ctx.seed,
            return_metrics=True,
        )
        rows.append(
            Table2Row(
                model=name,
                method=_METHOD_NAMES[name],
                metrics={k: round(float(v), 4) for k, v in metrics.items()},
                paper=TABLE2_PAPER.get(name, {}),
                train_seconds=time.monotonic() - start,
            )
        )
    if use_cache:
        ctx.save_result(
            cache_name,
            {
                "models": list(models),
                "rows": [
                    {
                        "model": r.model,
                        "method": r.method,
                        "metrics": r.metrics,
                        "train_seconds": r.train_seconds,
                    }
                    for r in rows
                ],
            },
        )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """Render in the paper's column order, with the paper's numbers."""
    header = (
        f"{'Model':5s} {'Method':44s} {'Latency':>8s} {'DSP':>7s} {'LUT':>7s} "
        f"{'FF':>7s} {'BRAM':>7s} {'All':>8s} {'Acc':>6s} {'F1':>6s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        m = row.metrics
        lines.append(
            f"{row.model:5s} {row.method:44s} {m['latency']:8.4f} {m['DSP']:7.4f} "
            f"{m['LUT']:7.4f} {m['FF']:7.4f} {m['BRAM']:7.4f} {m['all']:8.4f} "
            f"{m['accuracy']:6.2f} {m['f1']:6.2f}"
        )
        p = row.paper
        if p:
            lines.append(
                f"{'':5s} {'(paper)':44s} {p['latency']:8.4f} {p['DSP']:7.4f} "
                f"{p['LUT']:7.4f} {p['FF']:7.4f} {p['BRAM']:7.4f} {p['all']:8.4f} "
                f"{p['accuracy']:6.2f} {p['f1']:6.2f}"
            )
    return "\n".join(lines)
