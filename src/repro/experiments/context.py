"""Shared experiment context: cached database and trained predictors.

The heavyweight artifacts (the explorer-generated design database and
the trained predictor stack) are produced once and cached on disk under
``.repro_cache/`` so every table/figure experiment — and repeated
benchmark runs — reuse them.

Environment knobs (all optional):

``REPRO_SCALE``
    Multiplier on the Table 1 database targets (default 0.3; use 1.0
    for the full-size database, 0.1 for smoke runs).
``REPRO_EPOCHS``
    Training epochs for the cached predictor (default 16; raise for
    tighter Table 2 numbers).
``REPRO_CACHE``
    Cache directory (default ``<repo>/.repro_cache``).
``REPRO_SEED``
    Global experiment seed (default 0).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..explorer.database import Database
from ..explorer.runner import generate_database
from ..graph.encoding import EDGE_DIM, NODE_DIM
from ..hls.tool import MerlinHLSTool
from ..model.config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES
from ..model.dataset import GraphDatasetBuilder
from ..model.models import build_model
from ..model.normalizer import TargetNormalizer
from ..model.predictor import GNNDSEPredictor, train_predictor
from ..model.trainer import TrainConfig, Trainer

__all__ = ["ExperimentContext", "default_context"]


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


class ExperimentContext:
    """Lazily builds and caches the shared experiment artifacts."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        scale: Optional[float] = None,
        epochs: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        root = Path(__file__).resolve().parents[3]
        self.cache_dir = Path(
            cache_dir or os.environ.get("REPRO_CACHE", root / ".repro_cache")
        )
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.scale = scale if scale is not None else _env_float("REPRO_SCALE", 0.3)
        self.epochs = epochs if epochs is not None else _env_int("REPRO_EPOCHS", 16)
        self.seed = seed if seed is not None else _env_int("REPRO_SEED", 0)
        self.tool = MerlinHLSTool()
        self._database: Optional[Database] = None
        self._predictors: Dict[str, GNNDSEPredictor] = {}

    # -- database -------------------------------------------------------------

    @property
    def database_path(self) -> Path:
        return self.cache_dir / f"database_s{self.scale:g}_r{self.seed}.json"

    def database(self, refresh: bool = False) -> Database:
        """The initial training database (Table 1's, scaled)."""
        if self._database is not None and not refresh:
            return self._database
        if self.database_path.exists() and not refresh:
            self._database = Database.load(self.database_path)
        else:
            self._database = generate_database(
                scale=self.scale, seed=self.seed, tool=self.tool
            )
            self._database.save(self.database_path)
        return self._database

    # -- predictor ------------------------------------------------------------

    def _predictor_path(self, config_name: str) -> Path:
        return self.cache_dir / (
            f"predictor_{config_name}_s{self.scale:g}_e{self.epochs}_r{self.seed}.npz"
        )

    def predictor(self, config_name: str = "M7", refresh: bool = False) -> GNNDSEPredictor:
        """Train (or load) the full predictor stack for a model config."""
        if config_name in self._predictors and not refresh:
            return self._predictors[config_name]
        path = self._predictor_path(config_name)
        if path.exists() and not refresh:
            predictor = self.load_predictor(path, config_name)
        else:
            predictor = train_predictor(
                self.database(),
                config_name=config_name,
                train_config=TrainConfig(epochs=self.epochs, seed=self.seed),
                seed=self.seed,
            )
            self.save_predictor(predictor, path)
        self._predictors[config_name] = predictor
        return predictor

    # -- predictor persistence ----------------------------------------------------

    @staticmethod
    def save_predictor(predictor: GNNDSEPredictor, path: Path) -> None:
        arrays = {}
        for prefix, model in (
            ("cls", predictor.classifier),
            ("reg", predictor.regressor),
            ("bram", predictor.bram_regressor),
        ):
            for name, value in model.state_dict().items():
                arrays[f"{prefix}::{name}"] = value
        arrays["__norm__"] = np.array([predictor.normalizer.normalization_factor])
        np.savez_compressed(path, **arrays)

    def load_predictor(self, path: Path, config_name: str) -> GNNDSEPredictor:
        data = np.load(path)
        base = MODEL_CONFIGS[config_name]
        normalizer = TargetNormalizer(float(data["__norm__"][0]))
        builder = GraphDatasetBuilder(self.database(), normalizer=normalizer)
        models = {}
        for prefix, config in (
            ("cls", base.for_task("classification")),
            ("reg", base.for_task("regression", REGRESSION_OBJECTIVES)),
            ("bram", base.for_task("regression", BRAM_OBJECTIVE)),
        ):
            model = build_model(config, NODE_DIM, EDGE_DIM, seed=self.seed)
            state = {
                key.split("::", 1)[1]: data[key]
                for key in data.files
                if key.startswith(f"{prefix}::")
            }
            model.load_state_dict(state)
            models[prefix] = model
        return GNNDSEPredictor(
            models["cls"], models["reg"], models["bram"], normalizer, builder
        )

    def clone_predictor(self, predictor: GNNDSEPredictor, config_name: str = "M7") -> GNNDSEPredictor:
        """Deep-copy a predictor stack (so fine-tuning cannot mutate the
        context-cached instance other experiments rely on)."""
        base = MODEL_CONFIGS[config_name]
        clones = {}
        for prefix, (model, config) in {
            "cls": (predictor.classifier, base.for_task("classification")),
            "reg": (predictor.regressor, base.for_task("regression", REGRESSION_OBJECTIVES)),
            "bram": (predictor.bram_regressor, base.for_task("regression", BRAM_OBJECTIVE)),
        }.items():
            clone = build_model(config, NODE_DIM, EDGE_DIM, seed=self.seed)
            clone.load_state_dict(model.state_dict())
            clones[prefix] = clone
        return GNNDSEPredictor(
            clones["cls"],
            clones["reg"],
            clones["bram"],
            predictor.normalizer,
            predictor.builder,
        )

    # -- fine-tuning (used by the Fig. 7 rounds) -----------------------------------

    def fine_tune(
        self, predictor: GNNDSEPredictor, database: Database, epochs: int = 6
    ) -> GNNDSEPredictor:
        """Continue training the stack on an augmented database.

        Uses a reduced learning rate: restarting Adam at the full lr on
        already-trained weights causes a warm-restart shock that a short
        fine-tune cannot recover from.
        """
        builder = GraphDatasetBuilder(database, normalizer=predictor.normalizer)
        samples = builder.build()
        valid = [s for s in samples if s.label == 1]
        trainer = Trainer(
            TrainConfig(epochs=epochs, seed=self.seed, lr=0.0004, lr_decay=0.9)
        )
        trainer.fit(predictor.classifier, samples)
        trainer.fit(predictor.regressor, valid)
        trainer.fit(predictor.bram_regressor, valid)
        predictor.builder = builder
        return predictor

    # -- results persistence ---------------------------------------------------------

    def result_path(self, name: str) -> Path:
        return self.cache_dir / f"{name}_s{self.scale:g}_e{self.epochs}_r{self.seed}.json"

    def load_result(self, name: str):
        path = self.result_path(name)
        if path.exists():
            return json.loads(path.read_text())
        return None

    def save_result(self, name: str, payload) -> None:
        self.result_path(name).write_text(json.dumps(payload, indent=1))


_default: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """Process-wide shared context (honours the REPRO_* env knobs)."""
    global _default
    if _default is None:
        _default = ExperimentContext()
    return _default
