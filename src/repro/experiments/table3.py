"""Table 3: GNN-DSE on unseen kernels vs the AutoDSE baseline.

The predictor is trained only on the nine training kernels; bicg,
doitgen, gesummv, and 2mm never appear in its database.  For each
unseen kernel:

* **GNN-DSE**: model-driven DSE (exhaustive where feasible, one-hour
  heuristic for 2mm's ~10⁸ space), then the top-10 designs are
  synthesised in parallel with the (simulated) HLS tool.  Runtime =
  DSE wall-clock + the longest of the 10 parallel synthesis jobs.
* **AutoDSE**: the bottleneck explorer with the HLS tool in the loop,
  for up to 21 simulated hours with 8 parallel workers.

Reported: #pragmas, #configs, DSE+HLS runtime in minutes, #explored,
runtime speedup over AutoDSE, and the achieved-latency ratio (the paper
reports −2%..+5% of AutoDSE's quality, mean +1%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..designspace.generator import build_design_space
from ..dse.search import ModelDSE
from ..explorer.bottleneck import BottleneckExplorer
from ..explorer.database import Database
from ..explorer.evaluator import Evaluator
from ..kernels import UNSEEN_KERNELS, get_kernel
from .context import ExperimentContext, default_context

__all__ = ["Table3Row", "run_table3", "format_table3", "TABLE3_PAPER"]

#: Paper numbers: (#pragmas, #configs, DSE+HLS minutes, #explored, speedup).
TABLE3_PAPER = {
    "bicg": (5, 3_536, 18, 3_536, 69),
    "doitgen": (6, 179, 16, 179, 11),
    "gesummv": (4, 1_581, 16, 1_581, 79),
    "2mm": (14, 492_787_501, 74, 78_676, 17),
}


@dataclass
class Table3Row:
    kernel: str
    num_pragmas: int
    design_configs: int
    dse_hls_minutes: float
    explored: int
    runtime_speedup: float
    gnn_dse_latency: Optional[int]
    autodse_latency: Optional[int]
    autodse_hours: float
    latency_ratio: float  # gnn_dse / autodse (1.0 = parity; lower = better)


def run_table3(
    ctx: Optional[ExperimentContext] = None,
    kernels: Sequence[str] = tuple(UNSEEN_KERNELS),
    top_m: int = 10,
    autodse_max_hours: float = 21.0,
    autodse_max_evals: int = 163,
    dse_time_limit: float = 3600.0,
    fit_threshold: float = 0.8,
    use_cache: bool = True,
) -> List[Table3Row]:
    """Run the unseen-kernel comparison (Section 5.4).

    Results are cached per context (see ``run_table2``); pass
    ``use_cache=False`` to force recomputation.
    """
    from dataclasses import asdict

    ctx = ctx or default_context()
    if use_cache:
        cached = ctx.load_result("table3")
        if cached and {r["kernel"] for r in cached} >= set(kernels):
            by_kernel = {r["kernel"]: r for r in cached}
            return [Table3Row(**by_kernel[name]) for name in kernels]
    predictor = ctx.predictor("M7")
    rows: List[Table3Row] = []
    for name in kernels:
        spec = get_kernel(name)
        space = build_design_space(spec)

        # --- GNN-DSE: model search + parallel HLS of the top designs.
        # The top-M jobs run in parallel; the design is in hand when its
        # own job completes, so runtime-to-best counts the slowest *valid*
        # job of the evaluated batch(es) — a timed-out straggler does not
        # block obtaining the already-finished best design.  If a batch
        # yields nothing usable, the flow evaluates the next batch of
        # predictions (up to three batches), paying each batch's cost.
        dse = ModelDSE(
            predictor, spec, space, fit_threshold=fit_threshold, top_m=top_m * 3
        )
        result = dse.run(time_limit_seconds=dse_time_limit)
        synth_seconds = 0.0
        best_latency: Optional[int] = None
        for batch_start in range(0, len(result.top), top_m):
            batch = result.top[batch_start : batch_start + top_m]
            if not batch:
                break
            valid_seconds = []
            batch_max = 0.0
            for candidate in batch:
                hls = ctx.tool.synthesize(spec, candidate.point)
                batch_max = max(batch_max, hls.synth_seconds)
                if hls.valid and hls.fits(fit_threshold):
                    valid_seconds.append(hls.synth_seconds)
                    latency = hls.latency
                    best_latency = (
                        latency if best_latency is None else min(best_latency, latency)
                    )
            synth_seconds += max(valid_seconds) if valid_seconds else batch_max
            if best_latency is not None:
                break
        gnn_dse_seconds = result.seconds + synth_seconds

        # --- AutoDSE baseline: HLS in the loop for up to 21 hours.
        scratch = Database()
        evaluator = Evaluator(ctx.tool, scratch, parallelism=8)
        explorer = BottleneckExplorer(
            spec, space, evaluator, fit_threshold=fit_threshold, seed=ctx.seed
        )
        autodse = explorer.run(max_evals=autodse_max_evals, max_hours=autodse_max_hours)
        autodse_seconds = min(autodse.elapsed_hours, autodse_max_hours) * 3600.0

        speedup = autodse_seconds / gnn_dse_seconds if gnn_dse_seconds > 0 else 0.0
        ratio = (
            best_latency / autodse.best_latency
            if best_latency is not None and autodse.best_latency
            else float("inf")
        )
        rows.append(
            Table3Row(
                kernel=name,
                num_pragmas=len(spec.pragmas),
                design_configs=space.size(),
                dse_hls_minutes=gnn_dse_seconds / 60.0,
                explored=result.explored,
                runtime_speedup=speedup,
                gnn_dse_latency=best_latency,
                autodse_latency=autodse.best_latency,
                autodse_hours=autodse.elapsed_hours,
                latency_ratio=ratio if ratio != float("inf") else 999.0,
            )
        )
    if use_cache:
        ctx.save_result("table3", [asdict(r) for r in rows])
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    header = (
        f"{'Kernel':10s} {'#pragma':>7s} {'#configs':>12s} {'DSE+HLS(m)':>10s} "
        f"{'#explored':>9s} {'speedup':>8s} {'lat ratio':>9s}  (paper: m / explored / speedup)"
    )
    lines = [header, "-" * len(header)]
    speedups = []
    for row in rows:
        paper = TABLE3_PAPER.get(row.kernel)
        paper_txt = f"{paper[2]}m / {paper[3]:,} / {paper[4]}x" if paper else "-"
        lines.append(
            f"{row.kernel:10s} {row.num_pragmas:7d} {row.design_configs:12,d} "
            f"{row.dse_hls_minutes:10.1f} {row.explored:9,d} {row.runtime_speedup:7.1f}x "
            f"{row.latency_ratio:9.3f}  ({paper_txt})"
        )
        if row.runtime_speedup > 0:
            speedups.append(row.runtime_speedup)
    if speedups:
        lines.append(
            f"average runtime speedup: {sum(speedups) / len(speedups):.1f}x "
            f"(paper: 48x average, 11-79x range)"
        )
    return "\n".join(lines)
