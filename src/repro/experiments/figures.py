"""Figures 5 and 6: attention scores and t-SNE embedding structure.

Fig. 5: per-node readout attention of a stencil design under the full
M7 model — the paper's claim is that pragma nodes rank among the most
attended nodes, with trip-count context (``icmp``/constants) also high.

Fig. 6: t-SNE of (a) initial graph-level embeddings (summed initial
node features) vs (b) the trained GNN encoder's embeddings, colour-
codable by latency.  We report a quantitative *neighborhood coherence*
score (mean local latency spread / global spread; lower = tighter
latency clustering) for both embeddings, which is the measurable form
of the figure's visual claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.attention import AttentionReport, attention_report
from ..analysis.tsne import neighborhood_coherence, tsne
from ..model.predictor import GNNDSEPredictor
from ..nn.data import DataLoader
from ..nn.tensor import no_grad
from .context import ExperimentContext, default_context

__all__ = ["run_fig5", "Fig6Result", "run_fig6", "format_fig5", "format_fig6"]


def run_fig5(
    ctx: Optional[ExperimentContext] = None,
    kernel: str = "stencil",
    predictor: Optional[GNNDSEPredictor] = None,
) -> AttentionReport:
    """Attention report for one (well-optimised) design of ``kernel``."""
    ctx = ctx or default_context()
    predictor = predictor or ctx.predictor("M7")
    record = ctx.database().best_valid(kernel)
    point = record.design_point if record else {}
    return attention_report(predictor, kernel, point)


def format_fig5(report: AttentionReport, k: int = 12) -> str:
    lines = [
        f"Fig. 5 — node attention for a {report.kernel} design",
        f"{'rank':>4s} {'score':>8s} {'type':12s} key_text",
    ]
    for rank, node in enumerate(report.top(k)):
        lines.append(f"{rank:4d} {node.score:8.4f} {node.ntype:12s} {node.key_text}")
    lines.append("mean attention by node type: ")
    for ntype, score in sorted(report.mean_score_by_type().items(), key=lambda kv: -kv[1]):
        lines.append(f"  {ntype:12s} {score:.5f}")
    return "\n".join(lines)


@dataclass
class Fig6Result:
    kernel: str
    initial_embedding: np.ndarray
    learned_embedding: np.ndarray
    latencies: np.ndarray
    initial_coherence: float
    learned_coherence: float


def run_fig6(
    ctx: Optional[ExperimentContext] = None,
    kernel: str = "stencil",
    predictor: Optional[GNNDSEPredictor] = None,
    max_designs: int = 250,
    tsne_iterations: int = 300,
) -> Fig6Result:
    """t-SNE of initial vs learned embeddings for one kernel's designs."""
    ctx = ctx or default_context()
    predictor = predictor or ctx.predictor("M7")
    records = ctx.database().valid_records(kernel)[:max_designs]
    if not records:
        raise ValueError(f"no valid designs for {kernel} in the database")
    builder = predictor.builder
    samples = [builder.sample(r) for r in records]
    latencies = np.array([r.latency for r in records], dtype=np.float64)

    # (a) initial embeddings: summed initial node features per design.
    initial = np.stack([s.x.sum(axis=0) for s in samples])
    # (b) learned embeddings from the trained GNN encoder.
    learned_chunks: List[np.ndarray] = []
    with no_grad():
        for batch in DataLoader(samples, batch_size=64, shuffle=False):
            learned_chunks.append(predictor.regressor.embed(batch).data)
    learned = np.concatenate(learned_chunks, axis=0)

    initial_2d = tsne(initial, iterations=tsne_iterations, seed=ctx.seed)
    learned_2d = tsne(learned, iterations=tsne_iterations, seed=ctx.seed)
    log_lat = np.log2(np.maximum(latencies, 1.0))
    return Fig6Result(
        kernel=kernel,
        initial_embedding=initial_2d,
        learned_embedding=learned_2d,
        latencies=latencies,
        initial_coherence=neighborhood_coherence(initial_2d, log_lat),
        learned_coherence=neighborhood_coherence(learned_2d, log_lat),
    )


def format_fig6(result: Fig6Result, plots: bool = True) -> str:
    from ..analysis.plotting import ascii_scatter

    lines = [
        f"Fig. 6 — t-SNE latency coherence for {result.kernel} "
        f"({len(result.latencies)} designs; lower = tighter clustering)",
        f"  initial embeddings: {result.initial_coherence:.3f}",
        f"  learned embeddings: {result.learned_coherence:.3f}",
    ]
    if plots:
        log_lat = np.log2(np.maximum(result.latencies, 1.0))
        lines.append("")
        lines.append(
            ascii_scatter(
                result.initial_embedding, log_lat,
                title="(a) initial embeddings (glyph = latency quantile)",
            )
        )
        lines.append("")
        lines.append(
            ascii_scatter(
                result.learned_embedding, log_lat,
                title="(b) embeddings learned by the GNN encoder",
            )
        )
    return "\n".join(lines)
