"""Fig. 7: DSE speedup over the best initial-database design, per round.

Runs the multi-round database-augmentation loop of Section 4.4 on the
nine training kernels.  The paper reports average speedups of
0.71 / 0.82 / 1.02 / 1.23× after rounds 1–4: the model starts off
over-optimistic (its top-10 are worse than the database's best), and
the added mispredicted points fix exactly that.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..dse.augment import AugmentationResult, run_dse_rounds
from ..kernels import TRAINING_KERNELS
from .context import ExperimentContext, default_context

__all__ = ["run_fig7", "format_fig7", "FIG7_PAPER_AVERAGES"]

#: The paper's per-round average speedups.
FIG7_PAPER_AVERAGES = (0.71, 0.82, 1.02, 1.23)


def run_fig7(
    ctx: Optional[ExperimentContext] = None,
    kernels: Sequence[str] = tuple(TRAINING_KERNELS),
    rounds: int = 4,
    top_m: int = 10,
    fine_tune_epochs: int = 6,
    time_limit_seconds: float = 120.0,
) -> AugmentationResult:
    """Run the Fig. 7 experiment (expensive: retrains between rounds)."""
    ctx = ctx or default_context()

    def factory(db):
        # Round 1 uses a CLONE of the cached predictor: the rounds
        # fine-tune it in place, and other experiments (e.g. Table 3)
        # must keep seeing the pristine model.
        return ctx.clone_predictor(ctx.predictor("M7"))

    def refine(predictor, db):
        return ctx.fine_tune(predictor, db, epochs=fine_tune_epochs)

    return run_dse_rounds(
        list(kernels),
        ctx.database(),
        predictor_factory=factory,
        tool=ctx.tool,
        rounds=rounds,
        top_m=top_m,
        time_limit_seconds=time_limit_seconds,
        refine=refine,
    )


def format_fig7(result: AugmentationResult) -> str:
    table = result.speedup_table()
    rounds = len(result.rounds)
    header = f"{'Kernel':14s} " + " ".join(f"{'DSE' + str(r + 1):>8s}" for r in range(rounds))
    lines = [header, "-" * len(header)]
    for kernel, speedups in table.items():
        cells = " ".join(f"{s:8.2f}" for s in speedups)
        lines.append(f"{kernel:14s} {cells}")
    averages = [r.average_speedup() for r in result.rounds]
    lines.append(f"{'Average':14s} " + " ".join(f"{a:8.2f}" for a in averages))
    paper = FIG7_PAPER_AVERAGES[:rounds]
    lines.append(f"{'(paper avg)':14s} " + " ".join(f"{p:8.2f}" for p in paper))
    from ..analysis.plotting import ascii_bars

    lines.append("")
    lines.append(
        ascii_bars(
            dict(table),
            title="speedup vs best initial-database design (| marks 1.0x)",
        )
    )
    return "\n".join(lines)
