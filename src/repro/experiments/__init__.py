"""One entry point per paper table/figure (see DESIGN.md's index).

All experiments share an :class:`ExperimentContext` that caches the
design database and trained predictors on disk; set ``REPRO_SCALE`` /
``REPRO_EPOCHS`` to trade fidelity for runtime.
"""

from .context import ExperimentContext, default_context
from .figures import Fig6Result, format_fig5, format_fig6, run_fig5, run_fig6
from .fig7 import FIG7_PAPER_AVERAGES, format_fig7, run_fig7
from .speed import InferenceSpeed, run_inference_speed
from .table1 import Table1Row, format_table1, run_table1
from .table2 import TABLE2_PAPER, Table2Row, format_table2, run_table2
from .table3 import TABLE3_PAPER, Table3Row, format_table3, run_table3

__all__ = [
    "ExperimentContext",
    "default_context",
    "Fig6Result",
    "format_fig5",
    "format_fig6",
    "run_fig5",
    "run_fig6",
    "FIG7_PAPER_AVERAGES",
    "format_fig7",
    "run_fig7",
    "InferenceSpeed",
    "run_inference_speed",
    "Table1Row",
    "format_table1",
    "run_table1",
    "TABLE2_PAPER",
    "Table2Row",
    "format_table2",
    "run_table2",
    "TABLE3_PAPER",
    "Table3Row",
    "format_table3",
    "run_table3",
]
