"""Inference-throughput measurement (Section 5.3's "22 inferences/s")."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..designspace.generator import build_design_space
from ..kernels import get_kernel
from .context import ExperimentContext, default_context

__all__ = ["InferenceSpeed", "run_inference_speed"]


@dataclass
class InferenceSpeed:
    kernel: str
    num_points: int
    seconds: float
    inferences_per_second: float
    milliseconds_per_inference: float


def run_inference_speed(
    ctx: Optional[ExperimentContext] = None,
    kernel: str = "gemm-ncubed",
    num_points: int = 512,
    batch_size: int = 128,
) -> InferenceSpeed:
    """Time batched predictor inference over sampled design points."""
    import random

    ctx = ctx or default_context()
    predictor = ctx.predictor("M7")
    spec = get_kernel(kernel)
    space = build_design_space(spec)
    points = space.sample(random.Random(ctx.seed), num_points)
    # Warm-up (graph encoding cache, CSR plans).
    predictor.predict_batch(kernel, points[: min(8, num_points)])
    start = time.monotonic()
    for i in range(0, num_points, batch_size):
        predictor.predict_batch(kernel, points[i : i + batch_size])
    seconds = time.monotonic() - start
    per_second = num_points / seconds if seconds > 0 else float("inf")
    return InferenceSpeed(
        kernel=kernel,
        num_points=num_points,
        seconds=seconds,
        inferences_per_second=per_second,
        milliseconds_per_inference=1000.0 / per_second if per_second else float("inf"),
    )
