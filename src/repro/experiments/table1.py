"""Table 1: design space and database statistics per training kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..designspace.generator import build_design_space
from ..explorer.database import Database
from ..kernels import TRAINING_KERNELS, get_kernel
from .context import ExperimentContext, default_context

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass
class Table1Row:
    kernel: str
    num_pragmas: int
    design_configs: int
    initial_total: int
    initial_valid: int
    final_total: int
    final_valid: int


def run_table1(
    ctx: Optional[ExperimentContext] = None,
    final_database: Optional[Database] = None,
) -> List[Table1Row]:
    """Regenerate Table 1.

    ``final_database`` (the database after the Fig. 7 augmentation
    rounds) is optional; without it the final columns equal the initial
    ones, matching the state before any DSE round has run.
    """
    ctx = ctx or default_context()
    database = ctx.database()
    rows: List[Table1Row] = []
    for name in TRAINING_KERNELS:
        spec = get_kernel(name)
        space = build_design_space(spec)
        initial = database.stats(kernel=name, max_round=0)
        final_db = final_database or database
        final = final_db.stats(kernel=name)
        rows.append(
            Table1Row(
                kernel=name,
                num_pragmas=len(spec.pragmas),
                design_configs=space.size(),
                initial_total=initial["total"],
                initial_valid=initial["valid"],
                final_total=final["total"],
                final_valid=final["valid"],
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render rows in the paper's layout."""
    header = (
        f"{'Kernel':14s} {'#pragmas':>8s} {'#configs':>12s} "
        f"{'init total/valid':>17s} {'final total/valid':>18s}"
    )
    lines = [header, "-" * len(header)]
    totals = [0, 0, 0, 0, 0]
    for row in rows:
        lines.append(
            f"{row.kernel:14s} {row.num_pragmas:8d} {row.design_configs:12,d} "
            f"{row.initial_total:8d} / {row.initial_valid:5d} "
            f"{row.final_total:9d} / {row.final_valid:5d}"
        )
        totals[0] += row.design_configs
        totals[1] += row.initial_total
        totals[2] += row.initial_valid
        totals[3] += row.final_total
        totals[4] += row.final_valid
    lines.append(
        f"{'Total':14s} {'-':>8s} {totals[0]:12,d} "
        f"{totals[1]:8d} / {totals[2]:5d} {totals[3]:9d} / {totals[4]:5d}"
    )
    return "\n".join(lines)
