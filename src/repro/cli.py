"""Command-line interface: ``python -m repro <command>``.

Commands mirror the three operating modes of Fig. 1(a) plus utilities:

- ``kernels``     — list registered kernels and their design spaces;
- ``synthesize``  — run the simulated Merlin+HLS flow on one design point;
- ``database``    — generate a training database with the explorers;
- ``train``       — train a predictor stack on a database;
- ``dse``         — model-driven DSE on a kernel (requires a trained
  predictor cached by ``train`` or a saved artifact);
- ``save-model``  — package trained weights as a versioned artifact;
- ``load-model``  — inspect/verify a saved artifact;
- ``serve``       — serve predictions from an artifact (or registry) over HTTP;
- ``loop``        — closed-loop active learning: DSE → HLS labels →
  fine-tune → publish to a registry (→ hot-swap a live server);
- ``artifacts``   — list and verify a model-registry directory;
- ``autodse``     — run the HLS-in-the-loop bottleneck explorer;
- ``experiment``  — regenerate one paper table/figure.

Examples::

    python -m repro kernels
    python -m repro synthesize -k gemm-ncubed -s __PARA__L2=8 -s __PIPE__L2=cg
    python -m repro database -o db.json --scale 0.2
    python -m repro train -d db.json -o predictor.npz --epochs 12
    python -m repro dse -k gesummv -d db.json -p predictor.npz
    python -m repro save-model -d db.json -p predictor.npz -o artifact/
    python -m repro dse -k gesummv --model artifact/ --output top.json
    python -m repro serve --model artifact/ --port 8080
    python -m repro loop -d db.json -p predictor.npz --registry registry/ \
        --kernels bicg gesummv 2mm --rounds 3 --serve-url http://127.0.0.1:8080
    python -m repro artifacts registry/
    python -m repro experiment table1
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .designspace import build_design_space
from .errors import ReproError
from .frontend.pragmas import PipelineOption
from .hls import MerlinHLSTool
from .kernels import get_kernel, list_kernels

__all__ = ["main", "build_parser"]


def _parse_setting(text: str):
    """Parse one ``NAME=value`` pragma setting from the command line."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected NAME=value, got {text!r}")
    name, raw = text.split("=", 1)
    if raw in ("off", "cg", "fg"):
        return name, PipelineOption(raw)
    try:
        return name, int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad pragma value {raw!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNN-DSE reproduction (DAC 2022) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("kernels", help="list registered kernels")
    p.add_argument("--sizes", action="store_true", help="compute design-space sizes")

    sub.add_parser("devices", help="list the device registry")

    p = sub.add_parser("synthesize", help="evaluate one design point with the HLS simulator")
    p.add_argument("-k", "--kernel", required=True)
    p.add_argument(
        "-s", "--set", dest="settings", action="append", type=_parse_setting,
        default=[], metavar="NAME=VALUE", help="pragma setting (repeatable)",
    )
    p.add_argument("--device", default=None,
                   help="target device from the registry (see `repro devices`)")
    p.add_argument("--json", action="store_true", help="emit JSON")

    p = sub.add_parser("database", help="generate a training database")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kernels", nargs="*", default=None)

    p = sub.add_parser("train", help="train a predictor stack on a database")
    p.add_argument("-d", "--database", required=True)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--model", default="M7", help="model config (M1-M7)")
    p.add_argument("--epochs", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="enable tracing and write per-epoch spans as trace JSON")

    p = sub.add_parser("dse", help="model-driven DSE on one kernel")
    p.add_argument("-k", "--kernel", required=True)
    p.add_argument("-d", "--database", default=None,
                   help="database the predictor was trained on (with -p)")
    p.add_argument("-p", "--predictor", default=None, help="weights saved by `train`")
    p.add_argument(
        "--model", default="M7",
        help="model config (M1-M7) with -d/-p, or the path to a saved "
             "artifact directory (see `repro save-model`)",
    )
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--time-limit", type=float, default=300.0)
    p.add_argument("--device", default=None,
                   help="target device from the registry (see `repro devices`); "
                        "FPGA targets use the trained surrogate when one is "
                        "given, CGRA targets the analytic evaluator")
    p.add_argument("--all-devices", action="store_true",
                   help="one DSE per registered device, plus the merged "
                        "device-annotated cross-device Pareto front")
    p.add_argument(
        "--strategy", default="beam",
        choices=["beam", "race", "sa", "rl", "greedy", "random"],
        help="search strategy: 'beam' is the exhaustive/ordered-beam "
             "ModelDSE; the others are budgeted searchers — 'race' "
             "runs sa/greedy/rl/random under one shared query budget "
             "with UCB reallocation",
    )
    p.add_argument("--budget", type=int, default=1000,
                   help="surrogate query budget for budgeted strategies "
                        "(distinct design points; memo revisits are free)")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for budgeted strategies (bit-reproducible)")
    p.add_argument("--batch-size", type=int, default=24,
                   help="evaluation pipeline batch size")
    p.add_argument("--engine", choices=["auto", "compiled", "reference", "fused"],
                   default="auto", help="surrogate inference engine")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the pipeline's per-point prediction cache")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sharded parallel orchestrator "
                        "(1 = plain serial search; results are bit-identical)")
    p.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="JSON journal of completed shards, rewritten atomically "
                        "as the run progresses")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint, skipping completed shards")
    p.add_argument("--shard-size", type=int, default=None,
                   help="design points per shard (default: space split into "
                        "workers x 4 shards)")
    p.add_argument("--evaluate", action="store_true", help="synthesize the top designs")
    p.add_argument(
        "--output", metavar="FILE",
        help="dump the top-k points, predictions, and pipeline stats as "
             "JSON (same schema as the server's /v1/dse/top endpoint)",
    )
    p.add_argument(
        "--emit-source", metavar="FILE",
        help="write the best design as concrete pragma-annotated C",
    )
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="enable tracing and write the run's spans (shards, "
                        "batches, merges) as schema-validated trace JSON")

    p = sub.add_parser(
        "save-model",
        help="convert trained weights (+ their database) into a versioned artifact",
    )
    p.add_argument("-d", "--database", required=True)
    p.add_argument("-p", "--predictor", required=True, help="weights saved by `train`")
    p.add_argument("--model", default="M7", help="model config (M1-M7)")
    p.add_argument("-o", "--output", required=True, help="artifact directory to write")

    p = sub.add_parser("load-model", help="inspect and verify a saved artifact")
    p.add_argument("artifact", help="artifact directory written by `save-model`")

    p = sub.add_parser("serve", help="serve predictions over HTTP from an artifact")
    p.add_argument("--model", required=True,
                   help="artifact directory, or a registry directory (serves "
                        "its `current` version and enables POST /v1/model/reload)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--batch-size", type=int, default=16,
                   help="micro-batch capacity per forward pass")
    p.add_argument("--max-delay-ms", type=float, default=5.0,
                   help="partial-batch flush deadline")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="pending-request bound before 429 load shedding")
    p.add_argument("--engine", choices=["auto", "compiled", "reference", "fused"],
                   default="auto")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes behind one shared listener; "
                        ">1 enables the pre-fork pool (respawn, rolling "
                        "restart, fleet-wide hot-swap)")
    p.add_argument("--trace", action="store_true",
                   help="enable tracing so GET /v1/trace serves live "
                        "per-request spans")

    p = sub.add_parser(
        "loop",
        help="closed-loop active learning: DSE, HLS labels, fine-tune, publish",
    )
    p.add_argument("-d", "--database", required=True,
                   help="seed training database (JSON); augmented copies are "
                        "written next to --state each round")
    p.add_argument("-p", "--predictor", default=None,
                   help="starting weights saved by `train` (with -d); omit to "
                        "start from the registry's current artifact")
    p.add_argument("--model", default="M7", help="model config (M1-M7)")
    p.add_argument("--registry", required=True,
                   help="model registry directory (created if missing); every "
                        "accepted round publishes a new version here")
    p.add_argument("--kernels", nargs="+", required=True,
                   help="target kernels to explore and label")
    p.add_argument("--rounds", type=int, default=3)
    p.add_argument("--label-budget", type=int, default=15,
                   help="HLS labels per kernel per round")
    p.add_argument("--scan", type=int, default=300,
                   help="design points scored per kernel per round")
    p.add_argument("--eval-points", type=int, default=60,
                   help="held-out evaluation points sampled per kernel")
    p.add_argument("--epochs", type=int, default=6,
                   help="warm-start fine-tune epochs per round")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=["auto", "compiled", "reference", "fused"],
                   default="auto", help="surrogate engine for the DSE scan")
    p.add_argument("--serve-url", default=None,
                   help="live `repro serve` endpoint to hot-swap after each "
                        "accepted publish (POST /v1/model/reload)")
    p.add_argument("--state", default=None,
                   help="resume journal path (default: <registry>/loop-state.json)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --state, skipping completed rounds")
    p.add_argument("--no-gate", action="store_true",
                   help="publish every round even if held-out RMSE regressed")
    p.add_argument("--wall-clock", action="store_true",
                   help="stamp records/artifacts with wall-clock time instead "
                        "of the deterministic logical clock (breaks bit-"
                        "identical resume)")

    p = sub.add_parser("artifacts", help="list and verify a model registry")
    p.add_argument("registry", help="registry directory written by `repro loop` "
                                    "(or a single artifact directory)")

    p = sub.add_parser("coverage", help="database coverage report for one kernel")
    p.add_argument("-k", "--kernel", required=True)
    p.add_argument("-d", "--database", required=True)

    p = sub.add_parser("autodse", help="HLS-in-the-loop bottleneck explorer")
    p.add_argument("-k", "--kernel", required=True)
    p.add_argument("--max-evals", type=int, default=100)
    p.add_argument("--max-hours", type=float, default=None, help="simulated tool-hours budget")

    p = sub.add_parser("experiment", help="regenerate one paper table/figure")
    p.add_argument(
        "name",
        choices=["table1", "table2", "table3", "fig5", "fig6", "fig7", "speed"],
    )
    return parser


# -- command implementations -------------------------------------------------


def _cmd_kernels(args) -> int:
    print(f"{'kernel':14s} {'suite':10s} {'split':8s} {'#pragmas':>8s}"
          + (f" {'#configs':>14s}" if args.sizes else ""))
    for name in list_kernels():
        spec = get_kernel(name)
        split = "unseen" if spec.unseen else "train"
        line = f"{name:14s} {spec.suite:10s} {split:8s} {len(spec.pragmas):8d}"
        if args.sizes:
            line += f" {build_design_space(spec).size():14,d}"
        print(line)
    return 0


def _cmd_devices(args) -> int:
    from .hls import get_device, list_devices

    print(f"{'device':10s} {'kind':6s} {'axes':16s} capacities")
    for name in list_devices():
        device = get_device(name)
        caps = ", ".join(
            f"{axis}={int(cap):,}" for axis, cap in device.capacities().items()
        )
        print(f"{name:10s} {device.kind:6s} {'/'.join(device.axes):16s} {caps}")
    return 0


def _resolve_device(name):
    """Device registry lookup for CLI flags (None passes through)."""
    if name is None:
        return None
    from .hls import get_device

    return get_device(name)  # HLSError (a ReproError) on unknown names


def _cmd_synthesize(args) -> int:
    spec = get_kernel(args.kernel)
    space = build_design_space(spec)
    point = space.default_point()
    point.update(dict(args.settings))
    space.validate(point)
    device = _resolve_device(args.device)
    tool = MerlinHLSTool(device=device) if device is not None else MerlinHLSTool()
    result = tool.synthesize(spec, point)
    if args.json:
        print(json.dumps({
            "kernel": result.kernel,
            "device": result.device,
            "valid": result.valid,
            "invalid_reason": result.invalid_reason,
            "latency": result.latency,
            "utilization": result.utilization,
            "synth_seconds": result.synth_seconds,
        }, indent=1))
        return 0
    status = "valid" if result.valid else f"INVALID: {result.invalid_reason}"
    print(f"{result.kernel}: {status}")
    print(f"  device         {result.device}")
    print(f"  latency        {result.latency:,} cycles")
    for res, value in result.utilization.items():
        print(f"  {res:14s} {value:.3f}")
    print(f"  synth time     {result.synth_seconds / 60:.1f} min (modeled)")
    return 0


def _cmd_database(args) -> int:
    from .explorer import generate_database

    database = generate_database(kernels=args.kernels, scale=args.scale, seed=args.seed)
    database.save(args.output)
    stats = database.stats()
    print(f"wrote {args.output}: {stats['total']} designs, {stats['valid']} valid")
    return 0


def _start_trace(path) -> None:
    """Enable process-wide tracing when a ``--trace`` path was given."""
    if path:
        from . import obs

        obs.enable()


def _finish_trace(path, root_name: str) -> None:
    """Validate + write the collected spans, if tracing was requested."""
    if not path:
        return
    from . import obs

    payload = obs.write_trace(path)
    roots = [s for s in payload["spans"] if s["name"] == root_name]
    total = sum(s["duration_s"] for s in roots)
    print(
        f"wrote {path}: {payload['span_count']} spans "
        f"({len(roots)} {root_name}, {total:.2f}s traced)"
    )


def _cmd_train(args) -> int:
    from .experiments.context import ExperimentContext
    from .explorer import Database
    from .model import TrainConfig, train_predictor
    from .obs import span

    _start_trace(args.trace)
    database = Database.load(args.database)
    with span("train.run", model=args.model, epochs=args.epochs):
        predictor, metrics = train_predictor(
            database,
            config_name=args.model,
            train_config=TrainConfig(epochs=args.epochs, seed=args.seed),
            seed=args.seed,
            return_metrics=True,
        )
    _finish_trace(args.trace, "train.run")
    ExperimentContext.save_predictor(predictor, args.output)
    print(f"wrote {args.output}")
    for key in ("latency", "DSP", "LUT", "FF", "BRAM", "all", "accuracy", "f1"):
        print(f"  {key:9s} {metrics[key]:.4f}")
    return 0


def _load_predictor(database_path: str, predictor_path: str, model: str):
    from .experiments.context import ExperimentContext
    from .explorer import Database

    ctx = ExperimentContext.__new__(ExperimentContext)  # no cache dir side effects
    ctx.seed = 0
    ctx._database = Database.load(database_path)
    ctx._predictors = {}
    return ExperimentContext.load_predictor(ctx, predictor_path, model)


def _run_device_dse(args, spec, space, device, predictor):
    """One serial beam search bound to a registry device.

    FPGA targets ride the trained surrogate when one was loaded
    (re-bound via ``for_device``); CGRA targets — and model-less
    invocations — run the analytic evaluator.
    """
    from .dse import AnalyticPredictor, EvaluationPipeline, ModelDSE

    if (
        predictor is not None
        and getattr(device, "kind", "fpga") == "fpga"
        and hasattr(predictor, "for_device")
    ):
        bound = predictor.for_device(device)
        pipeline = EvaluationPipeline(
            bound,
            batch_size=args.batch_size,
            engine=args.engine,
            cache=not args.no_cache,
        )
        dse = ModelDSE(
            bound, spec, space, top_m=args.top, pipeline=pipeline, device=device
        )
    else:
        dse = ModelDSE(
            AnalyticPredictor(device),
            spec,
            space,
            top_m=args.top,
            pipeline=None,
            use_pipeline=False,
            device=device,
        )
    return dse.run(time_limit_seconds=args.time_limit)


def _cmd_dse_all_devices(args, spec, space, predictor) -> int:
    from .dse import run_cross_device_dse
    from .hls import list_devices
    from .obs import span
    from .serve.schemas import DSE_RESULT_SCHEMA_VERSION

    with span("dse.cross_device", kernel=args.kernel):
        result = run_cross_device_dse(
            spec,
            space,
            list_devices(),
            predictor=predictor,
            top_m=args.top,
            batch_size=args.batch_size,
            time_limit_seconds=args.time_limit,
        )
    _finish_trace(args.trace, "dse.cross_device")
    for name in result.devices:
        per = result.per_device[name]
        mode = "exhaustive" if per.exhaustive else "heuristic"
        print(
            f"{args.kernel} @ {name}: explored {per.explored:,} configs in "
            f"{per.seconds:.1f}s ({mode}), {len(per.pareto)} on the device front"
        )
    print(f"merged cross-device front ({len(result.merged)} designs):")
    for entry in result.merged:
        info = entry.payload()
        print(
            f"  {info['device']:10s} latency {info['latency']:>12,.0f} "
            f"util_max {info['util_max']:.3f}  {info['point']}"
        )
    if args.output:
        payload = {"schema_version": DSE_RESULT_SCHEMA_VERSION, **result.payload()}
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_dse(args) -> int:
    import os

    from .dse import EvaluationPipeline, ModelDSE
    from .obs import span

    _start_trace(args.trace)
    spec = get_kernel(args.kernel)
    space = build_design_space(spec)
    if args.all_devices and args.device:
        raise ReproError("--device and --all-devices are mutually exclusive")
    device = _resolve_device(args.device)
    if os.path.isdir(args.model):
        from .model.predictor import GNNDSEPredictor

        predictor = GNNDSEPredictor.load(args.model)
    elif args.database is not None and args.predictor is not None:
        predictor = _load_predictor(args.database, args.predictor, args.model)
    elif args.device or args.all_devices:
        # Device-targeted runs can fall back to the analytic evaluator,
        # so a trained model is optional.
        predictor = None
    else:
        raise ReproError(
            "dse needs either --model <artifact-dir> or both -d/--database "
            "and -p/--predictor (or --device/--all-devices for the "
            "analytic evaluator)"
        )
    if args.resume and not args.checkpoint:
        raise ReproError("--resume requires --checkpoint FILE")
    if args.strategy != "beam" and (args.workers > 1 or args.checkpoint):
        raise ReproError(
            "--strategy race/sa/rl/greedy/random runs serially; "
            "drop --workers/--checkpoint or use --strategy beam"
        )
    if (device is not None or args.all_devices) and (
        args.strategy != "beam" or args.workers > 1 or args.checkpoint
    ):
        raise ReproError(
            "--device/--all-devices run the serial beam search; "
            "drop --strategy/--workers/--checkpoint"
        )
    if args.all_devices:
        return _cmd_dse_all_devices(args, spec, space, predictor)
    with span("dse.run", kernel=args.kernel, workers=args.workers):
        if device is not None:
            result = _run_device_dse(args, spec, space, device, predictor)
        elif args.strategy != "beam":
            from .dse import DEFAULT_ARMS, run_race

            pipeline = EvaluationPipeline(
                predictor,
                batch_size=args.batch_size,
                engine=args.engine,
                cache=not args.no_cache,
            )
            arms = DEFAULT_ARMS if args.strategy == "race" else (args.strategy,)
            race = run_race(
                pipeline, spec, space,
                budget=args.budget,
                strategies=arms,
                top_m=args.top,
                seed=args.seed,
            )
            result = race.as_dse_result(stats=pipeline.stats_snapshot())
            result.strategy = args.strategy
        elif args.workers > 1 or args.checkpoint:
            from .dse import ParallelDSE

            parallel = ParallelDSE(
                predictor, spec, space,
                workers=args.workers,
                top_m=args.top,
                pipeline_batch_size=args.batch_size,
                engine=args.engine,
                cache=not args.no_cache,
                shard_size=args.shard_size,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
            )
            result = parallel.run(time_limit_seconds=args.time_limit)
        else:
            # The plain serial code path, byte-for-byte what pre-parallel
            # builds ran (no sharding, no journal).
            pipeline = EvaluationPipeline(
                predictor,
                batch_size=args.batch_size,
                engine=args.engine,
                cache=not args.no_cache,
            )
            dse = ModelDSE(predictor, spec, space, top_m=args.top, pipeline=pipeline)
            result = dse.run(time_limit_seconds=args.time_limit)
    _finish_trace(args.trace, "dse.run")
    mode = "exhaustive" if result.exhaustive else "heuristic"
    target = f" on {result.device}" if result.device else ""
    print(
        f"{args.kernel}: explored {result.explored:,} configs in {result.seconds:.1f}s "
        f"({mode}{target}, {result.predictions_per_second:.0f} inferences/s)"
    )
    if result.race is not None:
        race_info = result.race
        arms = ", ".join(
            f"{name}={totals['queries']}q/{totals['new_pareto']}p"
            for name, totals in race_info["strategies"].items()
        )
        print(
            f"  {result.strategy}: {race_info['queries']}/{race_info['budget']} "
            f"budget over {len(race_info['rounds'])} rounds ({arms})"
        )
        print(f"  pareto front: {len(result.pareto)} non-dominated designs")
    if result.shards:
        line = (
            f"  parallel: {result.workers} worker(s), {result.shards} shards, "
            f"{result.shards_resumed} resumed, {result.retries} retried"
        )
        print(line)
        print(f"  pareto front: {len(result.pareto)} non-dominated designs")
    if result.stats is not None:
        print(f"  pipeline {result.stats.summary()}")
    tool = MerlinHLSTool(device=device) if device is not None else MerlinHLSTool()
    for rank, candidate in enumerate(result.top):
        line = f"  top-{rank + 1:02d} predicted latency {candidate.predicted_latency:>12,.0f}"
        if args.evaluate:
            truth = tool.synthesize(spec, candidate.point)
            line += f"  true {truth.latency:>10,} ({'valid' if truth.valid else 'invalid'})"
        print(line)
    if args.output:
        from .serve.schemas import dse_result_payload

        with open(args.output, "w") as handle:
            json.dump(dse_result_payload(result), handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.emit_source and result.top:
        from .designspace import render_source

        with open(args.emit_source, "w") as handle:
            handle.write(render_source(spec, result.top[0].point))
        print(f"wrote {args.emit_source}")
    return 0


def _cmd_save_model(args) -> int:
    predictor = _load_predictor(args.database, args.predictor, args.model)
    manifest = predictor.save(args.output)
    total = sum(m["parameters"] for m in manifest["models"].values())
    print(f"wrote artifact {args.output} ({total:,} parameters)")
    for role, entry in manifest["models"].items():
        print(f"  {role:15s} {entry['dtype']:8s} sha256:{entry['sha256'][:12]}…")
    return 0


def _cmd_load_model(args) -> int:
    from .serve.registry import verify_artifact

    manifest = verify_artifact(args.artifact)
    print(f"{args.artifact}: schema v{manifest['schema_version']}, blobs verified")
    print(f"  normalization_factor {manifest['normalization_factor']:g}")
    for role, entry in manifest["models"].items():
        config = entry["config"]
        print(
            f"  {role:15s} {config['name']}/{config['task']:14s} "
            f"{entry['dtype']:8s} {entry['parameters']:,} params"
        )
    return 0


def _cmd_serve(args) -> int:
    from .errors import ArtifactError
    from .model.predictor import GNNDSEPredictor
    from .serve import ModelRegistry, PredictorService, ServeHTTPServer
    from .serve.registry import artifact_fingerprint, load_artifact, read_manifest

    if args.trace:
        from . import obs

        obs.enable()
    registry = None
    if ModelRegistry.is_registry(args.model):
        registry = ModelRegistry(args.model)
        current = registry.current()
        if current is None:
            raise ArtifactError(
                f"registry {args.model} has no current version; "
                "run `repro loop` (or ModelRegistry.publish) first"
            )
        predictor = load_artifact(current.path)
        model_info = current.payload()
        served = f"{args.model} ({current.version})"
    else:
        predictor = GNNDSEPredictor.load(args.model)
        manifest = read_manifest(args.model)
        model_info = {
            "version": None,
            "sha256": artifact_fingerprint(manifest),
            "path": str(args.model),
        }
        served = str(args.model)
    def make_service():
        return PredictorService(
            predictor,
            batch_size=args.batch_size,
            max_delay_seconds=args.max_delay_ms / 1000.0,
            max_pending=args.max_queue,
            engine=args.engine,
            model_info=model_info,
            registry=registry,
        )

    if args.workers > 1:
        from .serve import WorkerPool

        pool = WorkerPool(
            make_service, workers=args.workers, host=args.host, port=args.port
        ).start()
        print(f"serving {served} on {pool.url} "
              f"({args.workers} workers, batch={args.batch_size}, "
              f"flush={args.max_delay_ms:g}ms"
              f"{', hot-swappable' if registry else ''}) — Ctrl-C to stop")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("draining workers…")
        finally:
            pool.stop()
        return 0

    service = make_service()
    server = ServeHTTPServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    print(f"serving {served} on http://{host}:{port} "
          f"(batch={args.batch_size}, flush={args.max_delay_ms:g}ms"
          f"{', hot-swappable' if registry else ''}"
          f"{', tracing' if args.trace else ''}) — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining…")
    finally:
        server.server_close()
        service.close(drain=True)
    return 0


def _cmd_loop(args) -> int:
    import os

    from .errors import LoopError
    from .explorer import Database
    from .loop import ActiveLoop, LoopConfig
    from .serve import ModelRegistry
    from .serve.registry import load_artifact

    registry = ModelRegistry(args.registry)
    database = Database.load(args.database)
    if args.predictor is not None:
        predictor = _load_predictor(args.database, args.predictor, args.model)
    else:
        current = registry.current()
        if current is None:
            raise LoopError(
                "no --predictor given and the registry has no current "
                "version to start from"
            )
        predictor = load_artifact(current.path)
    state_path = args.state or os.path.join(args.registry, "loop-state.json")
    database_path = os.path.join(
        os.path.dirname(os.path.abspath(state_path)), "loop-database.json"
    )
    config = LoopConfig(
        kernels=tuple(args.kernels),
        rounds=args.rounds,
        label_budget=args.label_budget,
        scan=args.scan,
        eval_points=args.eval_points,
        config_name=args.model,
        epochs=args.epochs,
        seed=args.seed,
        engine=args.engine,
        gate_on_holdout=not args.no_gate,
    )
    loop = ActiveLoop(
        predictor,
        database,
        registry,
        config,
        database_path,
        state_path,
        serve_url=args.serve_url,
        clock=time.time if args.wall_clock else None,
        log=print,
    )
    result = loop.run(resume=args.resume)
    trajectory = " -> ".join(f"{v:.4f}" for v in result.rmse_trajectory())
    print(f"held-out RMSE: {trajectory}")
    final = result.final_metrics
    print(
        f"final: accuracy {final['classification']['accuracy']:.3f}, "
        f"f1 {final['classification']['f1']:.3f}, "
        f"database {len(loop.database)} records, "
        f"current {registry.current_version_name()}"
    )
    return 0


def _cmd_artifacts(args) -> int:
    from .serve import ModelRegistry
    from .serve.registry import artifact_fingerprint, verify_artifact

    if not ModelRegistry.is_registry(args.registry):
        # Grace for a bare artifact directory: verify it like load-model.
        manifest = verify_artifact(args.registry)
        sha = artifact_fingerprint(manifest)
        print(f"{args.registry}: single artifact, schema "
              f"v{manifest['schema_version']}, sha256:{sha[:12]}… verified")
        return 0
    registry = ModelRegistry(args.registry)
    versions = registry.versions()
    current_name = registry.current_version_name()
    if not versions:
        print(f"{args.registry}: empty registry")
        return 0
    print(f"{'version':9s} {'schema':>6s} {'created':>10s} {'sha256':14s} verified")
    failures = 0
    for version in versions:
        try:
            verify_artifact(version.path)
            status = "ok"
        except ReproError as exc:
            status = f"FAILED: {exc}"
            failures += 1
        marker = "*" if version.version == current_name else " "
        print(
            f"{marker}{version.version:8s} {version.schema_version:6d} "
            f"{version.created:10g} {version.sha256[:12] + '…':14s} {status}"
        )
    print(f"current: {current_name or '(none)'}; "
          f"{len(versions)} version(s), {failures} failed verification")
    return 1 if failures else 0


def _cmd_coverage(args) -> int:
    from .explorer import Database, measure_coverage

    spec = get_kernel(args.kernel)
    space = build_design_space(spec)
    database = Database.load(args.database)
    print(measure_coverage(database, space).pretty())
    return 0


def _cmd_autodse(args) -> int:
    from .explorer import BottleneckExplorer, Database, Evaluator

    spec = get_kernel(args.kernel)
    space = build_design_space(spec)
    evaluator = Evaluator(MerlinHLSTool(), Database(), parallelism=8)
    explorer = BottleneckExplorer(spec, space, evaluator)
    result = explorer.run(max_evals=args.max_evals, max_hours=args.max_hours)
    best = f"{result.best_latency:,}" if result.best_latency else "none"
    print(
        f"{args.kernel}: {result.evaluations} designs, "
        f"{result.elapsed_hours:.1f} simulated tool-hours, best latency {best}"
    )
    return 0


def _cmd_experiment(args) -> int:
    from . import experiments as exp

    ctx = exp.default_context()
    if args.name == "table1":
        print(exp.format_table1(exp.run_table1(ctx)))
    elif args.name == "table2":
        print(exp.format_table2(exp.run_table2(ctx)))
    elif args.name == "table3":
        print(exp.format_table3(exp.run_table3(ctx)))
    elif args.name == "fig5":
        print(exp.format_fig5(exp.run_fig5(ctx)))
    elif args.name == "fig6":
        print(exp.format_fig6(exp.run_fig6(ctx)))
    elif args.name == "fig7":
        print(exp.format_fig7(exp.run_fig7(ctx)))
    elif args.name == "speed":
        result = exp.run_inference_speed(ctx)
        print(
            f"{result.inferences_per_second:.1f} inferences/s "
            f"({result.milliseconds_per_inference:.2f} ms each)"
        )
    return 0


_COMMANDS = {
    "kernels": _cmd_kernels,
    "devices": _cmd_devices,
    "synthesize": _cmd_synthesize,
    "database": _cmd_database,
    "train": _cmd_train,
    "dse": _cmd_dse,
    "save-model": _cmd_save_model,
    "load-model": _cmd_load_model,
    "serve": _cmd_serve,
    "loop": _cmd_loop,
    "artifacts": _cmd_artifacts,
    "autodse": _cmd_autodse,
    "coverage": _cmd_coverage,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
