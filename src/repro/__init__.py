"""GNN-DSE reproduction: automated accelerator optimization aided by GNNs.

Reproduction of Sohrabizadeh et al., DAC 2022.  The package is layered
bottom-up (each layer usable on its own):

- :mod:`repro.frontend` / :mod:`repro.ir` — C-subset front-end and
  LLVM-like IR with loop-nest analysis (the Clang/LLVM substitute);
- :mod:`repro.graph` — pragma-extended ProGraML-style program graphs;
- :mod:`repro.designspace` — pragma knobs, pruning rules, enumeration;
- :mod:`repro.hls` — the simulated Merlin+HLS evaluator (ground truth);
- :mod:`repro.nn` — numpy autograd + GNN layers (PyTorch substitute);
- :mod:`repro.model` — the M1–M7 predictive models and training;
- :mod:`repro.explorer` — database generation (AutoDSE-style);
- :mod:`repro.dse` — model-driven design-space exploration;
- :mod:`repro.analysis` — t-SNE and attention analysis;
- :mod:`repro.experiments` — one entry point per paper table/figure.

Quickstart::

    from repro.kernels import get_kernel
    from repro.designspace import build_design_space
    from repro.hls import MerlinHLSTool

    spec = get_kernel("gemm-ncubed")
    space = build_design_space(spec)
    tool = MerlinHLSTool()
    result = tool.synthesize(spec, space.default_point())
    print(result.latency, result.utilization)
"""

__version__ = "1.0.0"

from . import errors
from .kernels import KERNELS, TRAINING_KERNELS, UNSEEN_KERNELS, get_kernel, list_kernels

__all__ = [
    "__version__",
    "errors",
    "KERNELS",
    "TRAINING_KERNELS",
    "UNSEEN_KERNELS",
    "get_kernel",
    "list_kernels",
]
