"""Target device registry and operator cost models.

The paper targets a Xilinx Virtex UltraScale+ VCU1525 (XCVU9P part);
that pool remains the default device and the reference every surrogate
prediction is trained against.  The registry adds further FPGA parts
with distinct DSP/BRAM/LUT/FF budgets, port counts and AXI widths, and
(see :mod:`repro.hls.cgra`) one CGRA-style target whose resource axes
are PE-grid occupancy and instruction slots rather than the FPGA
resource vector.  Operator latency/area costs are representative of
Vitis HLS's default floating-point and integer operator libraries at
~250 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import HLSError

__all__ = [
    "ResourcePool",
    "OpCost",
    "VCU1525",
    "U50",
    "ZCU102",
    "DEFAULT_DEVICE",
    "register_device",
    "get_device",
    "list_devices",
    "OP_COSTS",
    "MEM_READ_LATENCY",
    "BRAM_BITS",
]

#: Capacity of one BRAM18K block in bits.
BRAM_BITS = 18 * 1024

#: Cycles to read from an on-chip BRAM (registered output).
MEM_READ_LATENCY = 2


@dataclass(frozen=True)
class ResourcePool:
    """On-chip resource capacities of an FPGA part.

    ``axi_ports`` × ``axi_bits`` is the off-chip bandwidth the
    estimator charges transfers against; the defaults reproduce the
    original single 512-bit AXI port, so the reference device's
    estimates are unchanged.
    """

    name: str
    dsp: int
    bram: int  # BRAM18K blocks
    lut: int
    ff: int
    axi_ports: int = 1
    axi_bits: int = 512

    #: Target family; the HLS tool dispatches its scheduler on this.
    kind = "fpga"

    #: Resource axes this pool accounts, in reporting order.
    axes: Tuple[str, ...] = ("DSP", "BRAM", "LUT", "FF")

    @property
    def pareto_keys(self) -> Tuple[str, ...]:
        """Objective keys (all minimised) for Pareto dominance on this device."""
        return ("latency",) + tuple(self.axes)

    @property
    def fit_axes(self) -> Tuple[str, ...]:
        """Axes the DSE fit threshold applies to: every resource axis —
        an FPGA design must leave headroom on all of them."""
        return tuple(self.axes)

    def capacities(self) -> Dict[str, float]:
        """Absolute capacity per declared axis."""
        return {
            "DSP": float(self.dsp),
            "BRAM": float(self.bram),
            "LUT": float(self.lut),
            "FF": float(self.ff),
        }

    def utilization(self, usage: Dict[str, float]) -> Dict[str, float]:
        """Normalise absolute usage numbers by the pool capacities.

        The result is derived from the pool's declared ``axes`` —
        axes absent from ``usage`` read as 0.0, but a usage key the
        pool does not account (a typo'd axis, or another target
        family's axis such as CGRA PE slots) raises instead of
        silently reading as zero utilization and masking an invalid
        design.
        """
        capacities = self.capacities()
        unknown = sorted(k for k in usage if k not in capacities)
        if unknown:
            raise HLSError(
                f"device {self.name!r} does not account resource axes {unknown}; "
                f"known axes: {list(self.axes)}"
            )
        return {axis: usage.get(axis, 0.0) / capacities[axis] for axis in self.axes}


#: Xilinx VCU1525 (XCVU9P): the paper's target board.
VCU1525 = ResourcePool(name="xcvu9p", dsp=6840, bram=4320, lut=1_182_240, ff=2_364_480)

#: Xilinx Alveo U50 (XCU50): smaller datacenter card, two HBM-backed ports.
U50 = ResourcePool(
    name="xcu50",
    dsp=5952,
    bram=2688,
    lut=872_000,
    ff=1_743_360,
    axi_ports=2,
    axi_bits=256,
)

#: Xilinx ZCU102 (XCZU9EG): embedded-class part with a narrow 128-bit HP port.
ZCU102 = ResourcePool(
    name="xczu9eg",
    dsp=2520,
    bram=1824,
    lut=274_080,
    ff=548_160,
    axi_ports=1,
    axi_bits=128,
)

#: The device every surrogate artifact is trained against and the
#: default for every tool/CLI/HTTP entry point that omits ``device``.
DEFAULT_DEVICE = VCU1525


# -- device registry -----------------------------------------------------------

_REGISTRY: Dict[str, object] = {}


def register_device(device, replace: bool = False) -> None:
    """Add ``device`` to the registry under ``device.name``."""
    name = device.name
    if not replace and name in _REGISTRY and _REGISTRY[name] is not device:
        raise HLSError(f"device {name!r} is already registered")
    _REGISTRY[name] = device


def get_device(name: str):
    """Look up a registered device by name; raises listing known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise HLSError(
            f"unknown device {name!r}; known devices: {list_devices()}"
        ) from None


def list_devices() -> List[str]:
    """Sorted names of every registered device."""
    return sorted(_REGISTRY)


for _pool in (VCU1525, U50, ZCU102):
    register_device(_pool)
del _pool


@dataclass(frozen=True)
class OpCost:
    """Latency (cycles) and area of one operator instance."""

    latency: int
    dsp: int = 0
    lut: int = 0
    ff: int = 0


#: Operator library.  Float entries use double-precision costs since the
#: Polybench-style kernels compute in double.
OP_COSTS: Dict[str, OpCost] = {
    "fadd": OpCost(latency=5, dsp=3, lut=400, ff=500),
    "fmul": OpCost(latency=4, dsp=11, lut=300, ff=500),
    "fdiv": OpCost(latency=30, dsp=0, lut=3200, ff=3200),
    "iadd": OpCost(latency=1, dsp=0, lut=32, ff=32),
    "imul": OpCost(latency=3, dsp=3, lut=30, ff=60),
    "idiv": OpCost(latency=34, dsp=0, lut=1100, ff=1200),
    "cmp": OpCost(latency=1, dsp=0, lut=24, ff=8),
    "bitop": OpCost(latency=1, dsp=0, lut=16, ff=8),
    "shift": OpCost(latency=1, dsp=0, lut=24, ff=8),
    "select": OpCost(latency=1, dsp=0, lut=16, ff=8),
    "special": OpCost(latency=28, dsp=8, lut=3000, ff=3000),
}

#: Per-loop controller overhead (FSM + counters), scaled by replication.
LOOP_CTRL_LUT = 120
LOOP_CTRL_FF = 90

#: Base design overhead (AXI interfaces, control registers).
BASE_LUT = 9000
BASE_FF = 12000
BASE_BRAM = 8

#: Off-chip interface width in bits per cycle (one 512-bit AXI port) —
#: the reference device's bandwidth; per-device values come from
#: ``axi_ports * axi_bits``.
AXI_BITS_PER_CYCLE = 512
