"""Target device and operator cost models.

The paper targets a Xilinx Virtex UltraScale+ VCU1525 (XCVU9P part).
Resource pools below are the real part's; operator latency/area costs
are representative of Vitis HLS's default floating-point and integer
operator libraries at ~250 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ResourcePool", "OpCost", "VCU1525", "OP_COSTS", "MEM_READ_LATENCY", "BRAM_BITS"]

#: Capacity of one BRAM18K block in bits.
BRAM_BITS = 18 * 1024

#: Cycles to read from an on-chip BRAM (registered output).
MEM_READ_LATENCY = 2


@dataclass(frozen=True)
class ResourcePool:
    """On-chip resource capacities of an FPGA part."""

    name: str
    dsp: int
    bram: int  # BRAM18K blocks
    lut: int
    ff: int

    def utilization(self, usage: Dict[str, float]) -> Dict[str, float]:
        """Normalise absolute usage numbers by the pool capacities."""
        return {
            "DSP": usage.get("DSP", 0.0) / self.dsp,
            "BRAM": usage.get("BRAM", 0.0) / self.bram,
            "LUT": usage.get("LUT", 0.0) / self.lut,
            "FF": usage.get("FF", 0.0) / self.ff,
        }


#: Xilinx VCU1525 (XCVU9P): the paper's target board.
VCU1525 = ResourcePool(name="xcvu9p", dsp=6840, bram=4320, lut=1_182_240, ff=2_364_480)


@dataclass(frozen=True)
class OpCost:
    """Latency (cycles) and area of one operator instance."""

    latency: int
    dsp: int = 0
    lut: int = 0
    ff: int = 0


#: Operator library.  Float entries use double-precision costs since the
#: Polybench-style kernels compute in double.
OP_COSTS: Dict[str, OpCost] = {
    "fadd": OpCost(latency=5, dsp=3, lut=400, ff=500),
    "fmul": OpCost(latency=4, dsp=11, lut=300, ff=500),
    "fdiv": OpCost(latency=30, dsp=0, lut=3200, ff=3200),
    "iadd": OpCost(latency=1, dsp=0, lut=32, ff=32),
    "imul": OpCost(latency=3, dsp=3, lut=30, ff=60),
    "idiv": OpCost(latency=34, dsp=0, lut=1100, ff=1200),
    "cmp": OpCost(latency=1, dsp=0, lut=24, ff=8),
    "bitop": OpCost(latency=1, dsp=0, lut=16, ff=8),
    "shift": OpCost(latency=1, dsp=0, lut=24, ff=8),
    "select": OpCost(latency=1, dsp=0, lut=16, ff=8),
    "special": OpCost(latency=28, dsp=8, lut=3000, ff=3000),
}

#: Per-loop controller overhead (FSM + counters), scaled by replication.
LOOP_CTRL_LUT = 120
LOOP_CTRL_FF = 90

#: Base design overhead (AXI interfaces, control registers).
BASE_LUT = 9000
BASE_FF = 12000
BASE_BRAM = 8

#: Off-chip interface width in bits per cycle (one 512-bit AXI port).
AXI_BITS_PER_CYCLE = 512
