"""The HLS-tool façade: synthesize a (kernel, design point) pair.

:class:`MerlinHLSTool` plays the role of "Merlin Compiler + Vitis HLS"
in the GNN-DSE flow (the *Evaluator* box of Fig. 2).  It returns an
:class:`~repro.hls.report.HLSResult` with

* validity — designs time out (modeled synthesis > 4 h), get refused
  (partitioning beyond the tool's bank limit), or blow past any
  plausible device (Section 4.3.2's invalidity sources);
* latency in cycles and DSP/BRAM/LUT/FF usage + utilization;
* ``synth_seconds``, a deterministic model of the real tool's runtime
  used for every "X hours of DSE" comparison in the evaluation.

Results are memoised per (device, kernel, point) since explorers
revisit points; the device name is part of the key so a tool whose
target changes can never serve one device's QoR for another.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..designspace.space import DesignPoint, point_key
from ..ir.analysis import KernelAnalysis
from ..kernels.base import KernelSpec
from .config import MAX_PARTITION, configure
from .device import DEFAULT_DEVICE, ResourcePool
from .estimator import Estimator
from .report import (
    INVALID_PARTITION,
    INVALID_RESOURCE,
    INVALID_TIMEOUT,
    HLSResult,
)

__all__ = ["MerlinHLSTool", "SYNTH_TIMEOUT_SECONDS"]

#: The paper's synthesis wall-clock limit: 4 hours.
SYNTH_TIMEOUT_SECONDS = 4 * 3600.0

#: Instantiated-operator count beyond which modeled synthesis exceeds 4 h.
_EFFORT_TIMEOUT = 12_000.0

#: Any utilization beyond this is a design the tool refuses outright.
_UTIL_REFUSE = 5.0


class MerlinHLSTool:
    """Simulated Merlin + HLS evaluator.

    Parameters
    ----------
    device:
        Target device — an FPGA :class:`ResourcePool` or a
        :class:`~repro.hls.cgra.CGRADevice` from the registry
        (defaults to the paper's VCU1525).
    cache:
        Memoise results per (device, kernel, point) — on by default.
    """

    def __init__(self, device: ResourcePool = DEFAULT_DEVICE, cache: bool = True):
        self.device = device
        self._cache: Optional[Dict[str, HLSResult]] = {} if cache else None
        self.invocations = 0

    def synthesize(self, spec: KernelSpec, point: DesignPoint) -> HLSResult:
        """Run the modeled Merlin+HLS flow on one design point."""
        key = f"{self.device.name}::{spec.name}::{point_key(point)}"
        if self._cache is not None and key in self._cache:
            return self._cache[key]
        result = self._synthesize_uncached(spec.name, spec.analysis, point)
        self.invocations += 1
        if self._cache is not None:
            self._cache[key] = result
        return result

    def baseline(self, spec: KernelSpec) -> HLSResult:
        """Synthesize the all-neutral design (no optimisation applied)."""
        return self.synthesize(spec, {})

    # -- internals ---------------------------------------------------------------

    def _synthesize_uncached(
        self, name: str, analysis: KernelAnalysis, point: DesignPoint
    ) -> HLSResult:
        configured = configure(analysis, point)
        if getattr(self.device, "kind", "fpga") == "cgra":
            from .cgra import estimate_cgra

            estimate = estimate_cgra(configured, self.device)
        else:
            estimate = Estimator(configured, self.device).run()
        utilization = self.device.utilization(estimate.usage)
        synth_seconds = self._synth_seconds(estimate.effort, estimate.max_banks)

        invalid_reason: Optional[str] = None
        util_refuse = getattr(self.device, "refuse_utilization", _UTIL_REFUSE)
        if estimate.max_banks > MAX_PARTITION:
            invalid_reason = INVALID_PARTITION
        elif estimate.effort > _EFFORT_TIMEOUT or synth_seconds >= SYNTH_TIMEOUT_SECONDS:
            invalid_reason = INVALID_TIMEOUT
            synth_seconds = SYNTH_TIMEOUT_SECONDS
        elif max(utilization.values()) > util_refuse:
            invalid_reason = INVALID_RESOURCE

        return HLSResult(
            kernel=name,
            point_key=point_key(point),
            valid=invalid_reason is None,
            latency=estimate.cycles,
            usage=estimate.usage,
            utilization=utilization,
            synth_seconds=synth_seconds,
            invalid_reason=invalid_reason,
            loops=estimate.loops,
            transfer_cycles=estimate.transfer_cycles,
            device=self.device.name,
        )

    @staticmethod
    def _synth_seconds(effort: float, max_banks: int) -> float:
        """Deterministic synthesis-runtime model.

        Grows with instantiated logic and banking complexity; the
        offset reflects the flow's fixed overhead (Merlin source-to-
        source + HLS elaboration).  Calibrated so typical points take
        minutes and aggressive ones approach the 4-hour ceiling —
        matching the "minutes to hours" characterisation in Section 1.
        """
        base = 150.0
        seconds = base + 2.2 * effort + 30.0 * math.log2(1 + max_banks) * math.sqrt(effort + 1)
        return min(seconds, SYNTH_TIMEOUT_SECONDS)
