"""CGRA-style target: PE-grid occupancy and instruction-slot scheduling.

Modeled on the ESL CGRA simulator's machine: a small grid of processing
elements (PEs), each with a private instruction memory, executing one
instruction per cycle from a kernel that the compiler time-multiplexes
across the grid.  A loop body of ``W`` instruction-cycles of work mapped
onto ``P`` PEs runs with an initiation interval of ``ceil(W / P)``; the
whole program (every loop's kernel) must fit in each PE's instruction
memory, so the accounted resource axes are **PE** (peak grid occupancy)
and **ISLOT** (instruction slots per PE), not the FPGA resource vector.

Consequences that make the CGRA front genuinely different from the FPGA
fronts over the same pragma space:

* ``parallel`` pragmas widen the mapped kernel (more work per
  invocation, fewer invocations) until the grid saturates — beyond
  ``P`` PEs of work the kernel just gets longer;
* ``pipeline`` pragmas enable modulo scheduling (no per-iteration sync
  bubble) but cannot beat the grid's issue width;
* ``partition``/``tile`` pragmas are no-ops — there are no banks to
  multiply and no on-chip buffers to shrink — so points an FPGA must
  pay area for are free here, and instruction-memory overflow (not
  LUT/DSP exhaustion) is what invalidates aggressive points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import HLSError
from ..ir.analysis import OpCensus
from .config import ConfiguredKernel, ConfiguredLoop
from .device import OP_COSTS, register_device
from .estimator import Estimate
from .report import LoopReport

__all__ = ["CGRADevice", "CGRA4X4", "estimate_cgra"]

#: Kernel-invocation overhead (configuration fetch + drain), cycles.
_KERNEL_OVERHEAD = 4

#: Synchronisation bubble between non-pipelined iterations, cycles.
_SYNC_CYCLES = 2

#: Instruction slots reserved for prologue/epilogue control code.
_BASE_ISLOTS = 8

#: OpCensus fields charged as PE instructions (calls are inlined bodies).
_OP_FIELDS = (
    "fadd", "fmul", "fdiv", "iadd", "imul", "idiv",
    "cmp", "bitop", "shift", "select", "special",
)


@dataclass(frozen=True)
class CGRADevice:
    """A coarse-grained reconfigurable array target.

    ``rows`` × ``cols`` PEs, each holding up to ``instruction_slots``
    instructions of the mapped program.  Off-chip bandwidth is the
    (narrow) system bus, ``axi_ports`` × ``axi_bits`` bits per cycle.
    """

    name: str
    rows: int = 4
    cols: int = 4
    instruction_slots: int = 256
    axi_ports: int = 1
    axi_bits: int = 64

    kind = "cgra"
    axes: Tuple[str, ...] = ("PE", "ISLOT")

    #: Instruction memory cannot be oversubscribed: any utilization
    #: beyond 1.0 simply does not fit and the mapper refuses it.
    refuse_utilization = 1.0

    #: Axes the DSE's fit threshold (Eq. 7's T_u) applies to.  PE is
    #: excluded on purpose: full grid occupancy is time-multiplexed
    #: compute — the *goal*, not a budget violation — whereas filling
    #: the instruction memory is the real capacity constraint.
    fit_axes: Tuple[str, ...] = ("ISLOT",)

    @property
    def pe_count(self) -> int:
        return self.rows * self.cols

    @property
    def pareto_keys(self) -> Tuple[str, ...]:
        return ("latency",) + tuple(self.axes)

    def capacities(self) -> Dict[str, float]:
        return {"PE": float(self.pe_count), "ISLOT": float(self.instruction_slots)}

    def utilization(self, usage: Dict[str, float]) -> Dict[str, float]:
        """Normalise usage by grid size / instruction-memory depth.

        Same contract as :meth:`ResourcePool.utilization`: axes are the
        device's own, and unknown usage keys raise rather than silently
        reading as zero.
        """
        capacities = self.capacities()
        unknown = sorted(k for k in usage if k not in capacities)
        if unknown:
            raise HLSError(
                f"device {self.name!r} does not account resource axes {unknown}; "
                f"known axes: {list(self.axes)}"
            )
        return {axis: usage.get(axis, 0.0) / capacities[axis] for axis in self.axes}


#: The registered 4×4 reference grid (ESL-CGRA's default topology).
CGRA4X4 = CGRADevice(name="cgra4x4")

register_device(CGRA4X4)


def _body_instructions(census: OpCensus, accesses: int) -> int:
    """Instruction-cycles one body occupies on the grid.

    Multi-cycle operators (fdiv, ...) run iteratively on a PE and hold
    it for their latency; every array access is one load/store
    instruction.
    """
    work = accesses
    for field_name in _OP_FIELDS:
        count = getattr(census, field_name)
        if count:
            work += count * OP_COSTS[field_name].latency
    return work


class _CGRAScheduler:
    """Maps a configured loop tree onto the PE grid."""

    def __init__(self, configured: ConfiguredKernel, device: CGRADevice):
        self._cfg = configured
        self._device = device
        self._fn_cycles: Dict[str, int] = {}
        self._islots = _BASE_ISLOTS
        self._pe_peak = 1
        self._effort = 0.0

    def run(self) -> Estimate:
        analysis = self._cfg.analysis
        reports: List[LoopReport] = []
        for fn_name in analysis.functions:
            cycles, fn_reports = self._schedule_function(fn_name)
            self._fn_cycles[fn_name] = cycles
            if fn_name == analysis.top_function:
                reports = fn_reports
        transfer = self._transfer_cycles()
        total = self._fn_cycles[analysis.top_function] + transfer
        return Estimate(
            cycles=int(total),
            usage={"PE": float(self._pe_peak), "ISLOT": float(self._islots)},
            loops=reports,
            effort=self._effort,
            max_banks=1,  # no banking on a CGRA
            transfer_cycles=int(transfer),
        )

    def _schedule_function(self, fn_name: str) -> Tuple[int, List[LoopReport]]:
        fa = self._cfg.analysis.functions[fn_name]
        cycles = self._fragment(fa.preamble_ops, 0, factor=1)[0]
        cycles += self._call_cycles(fa.preamble_ops)
        reports: List[LoopReport] = []
        for top in self._cfg.functions[fn_name]:
            loop_cycles, report = self._schedule_loop(top, fn_name)
            cycles += loop_cycles
            reports.append(report)
        return int(cycles), reports

    def _fragment(self, census: OpCensus, accesses: int, factor: int) -> Tuple[int, int]:
        """Map one body fragment; returns (kernel_len, pe_used).

        ``factor`` copies of the body are issued together (spatial
        unroll); the grid time-multiplexes whatever exceeds its width.
        """
        work = _body_instructions(census, accesses) * max(factor, 1)
        if work <= 0:
            return 0, 0
        pe = self._device.pe_count
        kernel_len = math.ceil(work / pe)
        pe_used = min(work, pe)
        self._islots += kernel_len
        self._pe_peak = max(self._pe_peak, pe_used)
        self._effort += work
        return kernel_len, pe_used

    def _schedule_loop(self, cfg: ConfiguredLoop, fn_name: str) -> Tuple[int, LoopReport]:
        loop = cfg.loop
        factor = max(cfg.parallel, 1)
        if cfg.children:
            iters = math.ceil(loop.trip_count / factor)
            stages = 0
            child_reports: List[LoopReport] = []
            for child in cfg.children:
                child_cycles, child_report = self._schedule_loop(child, fn_name)
                stages += child_cycles
                child_reports.append(child_report)
            own_len, _ = self._fragment(loop.body_ops, len(loop.accesses), factor)
            own_len += self._call_cycles(loop.body_ops)
            cycles = iters * (stages + own_len + _SYNC_CYCLES) + _KERNEL_OVERHEAD
            report = LoopReport(
                function=fn_name,
                label=loop.label,
                cycles=int(cycles),
                trip_count=loop.trip_count,
                ii=0,
                depth=int(stages + own_len),
                bottleneck="trip",
                children=child_reports,
            )
            return int(cycles), report

        iters = math.ceil(loop.trip_count / factor)
        kernel_len, _ = self._fragment(loop.body_ops, len(loop.accesses), factor)
        kernel_len += self._call_cycles(loop.body_ops)
        # A loop-carried reduction serialises successive iterations to at
        # least the reduction operator's latency, pipelined or not.
        red_lat = 0
        for red in loop.reductions:
            if loop.induction_var in red.free_vars:
                continue
            lat = OP_COSTS["fadd"].latency if red.is_float else OP_COSTS["iadd"].latency
            red_lat = max(red_lat, lat)
        ii = max(kernel_len, red_lat, 1)
        if cfg.is_pipelined:
            cycles = ii * max(iters - 1, 0) + max(kernel_len, 1) + _KERNEL_OVERHEAD
            bottleneck = "dependence" if red_lat > kernel_len else "compute"
        else:
            cycles = iters * (max(kernel_len, 1) + _SYNC_CYCLES) + _KERNEL_OVERHEAD
            ii = 0
            bottleneck = "trip"
        report = LoopReport(
            function=fn_name,
            label=loop.label,
            cycles=int(cycles),
            trip_count=loop.trip_count,
            ii=int(ii),
            depth=int(max(kernel_len, 1)),
            bottleneck=bottleneck,
        )
        return int(cycles), report

    def _call_cycles(self, census: OpCensus) -> int:
        return sum(self._fn_cycles.get(callee, 0) for callee in census.callees)

    def _transfer_cycles(self) -> int:
        bits_per_cycle = self._device.axi_bits * self._device.axi_ports
        total = 0.0
        for array in self._cfg.analysis.top.arrays.values():
            if array.is_param:
                total += array.total_bits() / bits_per_cycle
        return int(total)


def estimate_cgra(configured: ConfiguredKernel, device: CGRADevice) -> Estimate:
    """Schedule a configured kernel on a CGRA device."""
    return _CGRAScheduler(configured, device).run()
