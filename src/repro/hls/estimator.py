"""Cycle and resource estimation for a configured kernel.

This module is the core of the HLS-tool substitute.  It walks the
configured loop tree and reproduces the qualitative mechanisms that make
real HLS QoR a hard, non-linear function of the pragmas:

* **pipelining**: an innermost pipelined loop costs ``depth + II*(n-1)``;
  the initiation interval II is the max of the memory-port pressure and
  the loop-carried-dependence recurrence;
* **memory ports**: unrolling multiplies concurrent accesses; Merlin's
  automatic array partitioning multiplies banks to match — except for
  irregular (indirect) accesses, which stay on one bank and serialise;
* **reductions**: a scalar accumulation pins II to the adder latency
  (Merlin's tree reduction keeps it from growing with the unroll factor
  but deepens the pipeline); a cross-element array recurrence (nw-style
  wavefront) makes pipelining useless;
* **coarse-grained pipelining** overlaps the stages (sub-loops) of a
  non-innermost loop, unless a recurrence forbids the overlap;
* **fine-grained pipelining** fully unrolls the sub-nest: massive
  parallelism, massive resources — great for tiny nests, fatal for big
  ones;
* **tiling** shrinks on-chip buffers and (with cg pipelining) overlaps
  off-chip transfers with compute, at a small flush overhead per tile;
* **operator sharing**: HLS binds ``ceil(count/II)`` operator instances,
  coupling aggressive pipelining to area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..frontend.pragmas import PipelineOption
from ..ir.analysis import ArrayAccess, LoopInfo, OpCensus, Reduction
from .config import ConfiguredKernel, ConfiguredLoop
from .device import (
    BASE_BRAM,
    BASE_FF,
    BASE_LUT,
    AXI_BITS_PER_CYCLE,
    BRAM_BITS,
    LOOP_CTRL_FF,
    LOOP_CTRL_LUT,
    MEM_READ_LATENCY,
    OP_COSTS,
    ResourcePool,
)
from .report import LoopReport

__all__ = ["Estimate", "Estimator"]

#: Operator kinds in OpCensus, paired with their OP_COSTS key.
_OP_KINDS = (
    ("fadd", "fadd"),
    ("fmul", "fmul"),
    ("fdiv", "fdiv"),
    ("iadd", "iadd"),
    ("imul", "imul"),
    ("idiv", "idiv"),
    ("cmp", "cmp"),
    ("bitop", "bitop"),
    ("shift", "shift"),
    ("select", "select"),
    ("special", "special"),
)

#: Loop setup/flush overhead cycles.
_LOOP_OVERHEAD = 4

#: Per-tile boundary flush cycles.
_TILE_FLUSH = 8


@dataclass
class Estimate:
    """Raw output of the estimator, before validity policy is applied."""

    cycles: int
    usage: Dict[str, float]
    loops: List[LoopReport]
    effort: float  # instantiated-operator count, drives synth time
    max_banks: int
    transfer_cycles: int


@dataclass
class _BodyMetrics:
    census: OpCensus
    accesses: List[ArrayAccess]
    reductions: List[Reduction]
    unrolled: int = 1  # inner iterations absorbed by fg pipelining


class Estimator:
    """Estimates cycles/resources of one configured design point."""

    def __init__(self, configured: ConfiguredKernel, device: ResourcePool):
        self._cfg = configured
        self._device = device
        # Off-chip bandwidth comes from the device (ports × width); the
        # defaults reproduce the original single 512-bit AXI port.
        self._axi_bits = getattr(device, "axi_bits", AXI_BITS_PER_CYCLE) * getattr(
            device, "axi_ports", 1
        )
        self._fn_cycles: Dict[str, int] = {}
        self._usage = {"DSP": 0.0, "BRAM": 0.0, "LUT": 0.0, "FF": 0.0}
        self._effort = 0.0

    # -- public API -----------------------------------------------------------

    def run(self) -> Estimate:
        analysis = self._cfg.analysis
        reports: List[LoopReport] = []
        for fn_name, fa in analysis.functions.items():
            cycles, fn_reports = self._schedule_function(fn_name)
            self._fn_cycles[fn_name] = cycles
            if fn_name == analysis.top_function:
                reports = fn_reports
        self._account_memory()
        self._usage["LUT"] += BASE_LUT
        self._usage["FF"] += BASE_FF
        self._usage["BRAM"] += BASE_BRAM
        transfer = self._transfer_cycles()
        total = self._fn_cycles[analysis.top_function] + transfer
        return Estimate(
            cycles=int(total),
            usage=dict(self._usage),
            loops=reports,
            effort=self._effort,
            max_banks=max(
                (self._cfg.partition_raw.get(a, 1) for a in self._cfg.partition_raw),
                default=1,
            ),
            transfer_cycles=int(transfer),
        )

    # -- function / loop scheduling -------------------------------------------

    def _schedule_function(self, fn_name: str) -> Tuple[int, List[LoopReport]]:
        fa = self._cfg.analysis.functions[fn_name]
        cycles = self._body_depth(fa.preamble_ops, unroll=1, reduction_lat=0)
        cycles += self._call_cycles(fa.preamble_ops)
        self._charge_ops(fa.preamble_ops, replication=1, share=2)
        reports: List[LoopReport] = []
        for top in self._cfg.functions[fn_name]:
            loop_cycles, report = self._schedule_loop(top, fn_name, enclosing={})
            cycles += loop_cycles
            reports.append(report)
        return int(cycles), reports

    def _schedule_loop(
        self, cfg: ConfiguredLoop, fn_name: str, enclosing: Dict[str, int]
    ) -> Tuple[int, LoopReport]:
        """Return (cycles, report) for one configured loop.

        ``enclosing`` maps enclosing induction variables to the unroll
        factor replicating this loop's hardware (parallel factors plus
        fg-absorbed trip counts).
        """
        if cfg.is_fg:
            return self._schedule_fg(cfg, fn_name, enclosing)
        if cfg.children:
            return self._schedule_outer(cfg, fn_name, enclosing)
        return self._schedule_innermost(cfg, fn_name, enclosing)

    # .. innermost ..............................................................

    def _schedule_innermost(
        self,
        cfg: ConfiguredLoop,
        fn_name: str,
        enclosing: Dict[str, int],
        metrics: Optional[_BodyMetrics] = None,
        report_ii_only: bool = False,
    ) -> Tuple[int, LoopReport]:
        loop = cfg.loop
        if metrics is None:
            metrics = _BodyMetrics(
                census=loop.body_ops,
                accesses=list(loop.accesses),
                reductions=list(loop.reductions),
            )
        factor = max(cfg.parallel, 1)
        iters = math.ceil(loop.trip_count / factor)
        inner = dict(enclosing)
        inner[loop.induction_var] = factor

        dep_ii, dep_lat, has_recurrence = self._dependence_ii(metrics, loop, inner)
        total_unroll = factor * metrics.unrolled
        depth = self._body_depth(metrics.census, total_unroll, dep_lat)
        depth += self._call_cycles(metrics.census)
        mem_ii = self._memory_ii(metrics.accesses, inner)
        if has_recurrence:
            dep_ii = depth  # wavefront recurrence: next iteration waits
        ii = max(1, mem_ii, dep_ii)

        pipelined = cfg.is_pipelined
        if pipelined:
            cycles = depth + ii * max(iters - 1, 0) + _LOOP_OVERHEAD
            share = max(ii, 1)
        else:
            per_iter = depth + 1 + (dep_lat if dep_ii > 1 else 0)
            cycles = iters * per_iter + _LOOP_OVERHEAD
            share = 3  # sequential execution lets HLS share operators
            ii = 0

        replication = self._replication(enclosing) * factor * metrics.unrolled
        self._charge_ops(metrics.census, replication, share=max(share, 1))
        self._charge_loop_ctrl(self._replication(enclosing))

        bottleneck = "trip"
        if pipelined:
            if mem_ii >= dep_ii and mem_ii > 1:
                bottleneck = "memory"
            elif dep_ii > 1:
                bottleneck = "dependence"
        elif metrics.census.total() > 4:
            bottleneck = "compute"
        report = LoopReport(
            function=fn_name,
            label=loop.label,
            cycles=int(cycles),
            trip_count=loop.trip_count,
            ii=int(ii),
            depth=int(depth),
            bottleneck=bottleneck,
        )
        return int(cycles), report

    # .. fg: aggregate the whole sub-nest .........................................

    def _schedule_fg(
        self, cfg: ConfiguredLoop, fn_name: str, enclosing: Dict[str, int]
    ) -> Tuple[int, LoopReport]:
        metrics = self._aggregate(cfg)
        cycles, report = self._schedule_innermost(cfg, fn_name, enclosing, metrics=metrics)
        report.bottleneck = report.bottleneck or "compute"
        return cycles, report

    def _aggregate(self, cfg: ConfiguredLoop) -> _BodyMetrics:
        """Sum ops/accesses of the fully-unrolled sub-nest of an fg loop."""
        census = OpCensus()
        census.merge(cfg.loop.body_ops)
        accesses = list(cfg.loop.accesses)
        reductions = list(cfg.loop.reductions)
        unrolled = 1

        def visit(child: ConfiguredLoop, multiplier: int):
            nonlocal unrolled
            m = multiplier * child.trip_count
            unrolled = max(unrolled, m)
            body = child.loop.body_ops
            for name in (
                "fadd", "fmul", "fdiv", "iadd", "imul", "idiv",
                "cmp", "bitop", "shift", "select", "special", "calls",
            ):
                setattr(census, name, getattr(census, name) + getattr(body, name) * m)
            census.callees.extend(body.callees * m)
            for access in child.loop.accesses:
                accesses.extend([access] * m)
            reductions.extend(child.loop.reductions)
            for grandchild in child.children:
                visit(grandchild, m)

        for child in cfg.children:
            visit(child, 1)
        return _BodyMetrics(
            census=census, accesses=accesses, reductions=reductions, unrolled=unrolled
        )

    # .. outer loops ................................................................

    def _schedule_outer(
        self, cfg: ConfiguredLoop, fn_name: str, enclosing: Dict[str, int]
    ) -> Tuple[int, LoopReport]:
        loop = cfg.loop
        factor = max(cfg.parallel, 1)
        iters = math.ceil(loop.trip_count / factor)
        inner_env = dict(enclosing)
        inner_env[loop.induction_var] = factor

        stages: List[int] = []
        child_reports: List[LoopReport] = []
        for child in cfg.children:
            child_cycles, child_report = self._schedule_loop(child, fn_name, inner_env)
            stages.append(child_cycles)
            child_reports.append(child_report)
        own_depth = 0
        if loop.body_ops.total() > 0:
            own_depth = self._body_depth(loop.body_ops, factor, 0)
            own_depth += self._call_cycles(loop.body_ops)
            stages.append(own_depth)
            self._charge_ops(loop.body_ops, self._replication(inner_env), share=2)
        self._charge_loop_ctrl(self._replication(enclosing))

        body_cycles = sum(stages) + 2
        recurrence = self._has_recurrence(cfg, loop)
        tile_overhead = 0
        if cfg.tile > 1:
            tile_overhead = (loop.trip_count // cfg.tile) * _TILE_FLUSH

        if cfg.pipeline is PipelineOption.COARSE and not recurrence:
            stage_max = max(stages) if stages else 2
            cycles = body_cycles + stage_max * max(iters - 1, 0) + _LOOP_OVERHEAD
            ii = stage_max
            bottleneck = "memory" if stage_max == max(stages or [0]) else "trip"
        else:
            cycles = iters * (body_cycles + 2) + _LOOP_OVERHEAD
            ii = 0
            bottleneck = "dependence" if recurrence else "trip"
        cycles += tile_overhead

        report = LoopReport(
            function=fn_name,
            label=loop.label,
            cycles=int(cycles),
            trip_count=loop.trip_count,
            ii=int(ii),
            depth=int(body_cycles),
            bottleneck=bottleneck,
            children=child_reports,
        )
        return int(cycles), report

    def _has_recurrence(self, cfg: ConfiguredLoop, loop: LoopInfo) -> bool:
        """True when a subtree recurrence is carried by this loop."""
        for sub in cfg.subtree():
            for red in sub.loop.reductions:
                if not red.free_vars and loop.induction_var not in red.free_vars:
                    # Only array recurrences serialise an outer loop;
                    # scalar accumulators are handled by reduction trees.
                    arrays = self._cfg.analysis.functions[loop.function].arrays
                    if red.target in arrays:
                        return True
        return False

    # -- II components ---------------------------------------------------------------

    def _memory_ii(self, accesses: List[ArrayAccess], env: Dict[str, int]) -> int:
        demand: Dict[str, float] = {}
        for access in accesses:
            multiplier = 1
            for var, factor in env.items():
                if factor > 1 and access.depends_on(var):
                    multiplier *= factor
            demand[access.array] = demand.get(access.array, 0.0) + multiplier
        worst = 1
        for array, total in demand.items():
            ports = 2.0 * self._cfg.banks(array)
            worst = max(worst, math.ceil(total / ports))
        return worst

    def _dependence_ii(
        self, metrics: _BodyMetrics, loop: LoopInfo, env: Dict[str, int]
    ) -> Tuple[int, int, bool]:
        """Return (dep_ii, reduction_op_latency, has_array_recurrence)."""
        dep_ii = 1
        red_lat = 0
        recurrence = False
        arrays = self._cfg.analysis.functions[loop.function].arrays
        for red in metrics.reductions:
            if loop.induction_var in red.free_vars:
                continue  # dependence not carried by this loop
            lat = OP_COSTS["fadd"].latency if red.is_float else OP_COSTS["iadd"].latency
            if not red.free_vars and red.target in arrays:
                recurrence = True
            dep_ii = max(dep_ii, lat)
            red_lat = max(red_lat, lat)
        return dep_ii, red_lat, recurrence

    def _body_depth(self, census: OpCensus, unroll: int, reduction_lat: int) -> int:
        """Critical-path estimate of one (possibly unrolled) body."""
        depth = MEM_READ_LATENCY
        for field_name, cost_key in _OP_KINDS:
            if getattr(census, field_name) > 0:
                depth += OP_COSTS[cost_key].latency
        if reduction_lat and unroll > 1:
            # Merlin's reduction tree: log2(unroll) extra adder levels.
            depth += int(math.ceil(math.log2(unroll))) * reduction_lat
        return depth + 1  # final store/writeback

    def _call_cycles(self, census: OpCensus) -> int:
        total = 0
        for callee in census.callees:
            total += self._fn_cycles.get(callee, 0)
        return total

    # -- resource accounting ------------------------------------------------------------

    def _replication(self, env: Dict[str, int]) -> int:
        repl = 1
        for factor in env.values():
            repl *= max(factor, 1)
        return repl

    def _charge_ops(self, census: OpCensus, replication: int, share: int) -> None:
        for field_name, cost_key in _OP_KINDS:
            count = getattr(census, field_name)
            if not count:
                continue
            cost = OP_COSTS[cost_key]
            instances = math.ceil(count * replication / max(share, 1))
            self._usage["DSP"] += instances * cost.dsp
            self._usage["LUT"] += instances * cost.lut
            self._usage["FF"] += instances * cost.ff
            self._effort += instances

    def _charge_loop_ctrl(self, replication: int) -> None:
        self._usage["LUT"] += LOOP_CTRL_LUT * replication
        self._usage["FF"] += LOOP_CTRL_FF * replication
        self._effort += replication

    def _account_memory(self) -> None:
        """BRAM for on-chip buffers plus banking mux logic."""
        seen = set()
        for fa in self._cfg.analysis.functions.values():
            for array in fa.arrays.values():
                if array.name in seen:
                    continue
                seen.add(array.name)
                banks = self._cfg.banks(array.name)
                scale = self._cfg.footprint_scale.get(array.name, 1.0)
                footprint_bits = array.total_bits() * scale
                per_bank = footprint_bits / max(banks, 1)
                brams = banks * max(1, math.ceil(per_bank / BRAM_BITS))
                if self._cfg.overlapped.get(array.name, False):
                    brams *= 2  # double buffering
                self._usage["BRAM"] += brams
                self._usage["LUT"] += banks * 24  # banking crossbar/mux
                self._effort += banks

    def _transfer_cycles(self) -> int:
        """Off-chip transfer cost for top-function parameter arrays."""
        total = 0.0
        top = self._cfg.analysis.top
        for array in top.arrays.values():
            if not array.is_param:
                continue
            cycles = array.total_bits() / self._axi_bits
            if self._cfg.overlapped.get(array.name, False):
                cycles *= 0.15  # double-buffered: mostly hidden
            total += cycles
        return int(total)
