"""Per-knob sensitivity sweeps over the HLS simulator.

Answers "what does each pragma *do* to this kernel?" — for every tunable
knob, sweep its candidates while holding the rest of the design at a
base point, and record latency/resources/validity.  Useful both for
understanding the simulator's behaviour and as a cheap feature-
importance baseline to compare the GNN's attention against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..designspace.space import DesignPoint, DesignSpace
from ..kernels.base import KernelSpec
from .tool import MerlinHLSTool

__all__ = ["KnobSweep", "SweepResult", "sweep_kernel"]


@dataclass
class KnobSweep:
    """One knob's sweep: candidate option -> outcome."""

    knob: str
    kind: str
    loop: str
    options: List[str] = field(default_factory=list)
    latencies: List[Optional[int]] = field(default_factory=list)  # None = invalid
    dsp: List[float] = field(default_factory=list)

    @property
    def sensitivity(self) -> float:
        """Max/min valid-latency ratio (1.0 = the knob does nothing)."""
        valid = [lat for lat in self.latencies if lat]
        if len(valid) < 2:
            return 1.0
        return max(valid) / min(valid)

    def best_option(self) -> Optional[str]:
        best = None
        for option, latency in zip(self.options, self.latencies):
            if latency is not None and (best is None or latency < best[1]):
                best = (option, latency)
        return best[0] if best else None


@dataclass
class SweepResult:
    kernel: str
    base_latency: Optional[int]
    knobs: List[KnobSweep] = field(default_factory=list)

    def ranked(self) -> List[KnobSweep]:
        """Knobs ordered by decreasing latency sensitivity."""
        return sorted(self.knobs, key=lambda k: k.sensitivity, reverse=True)

    def pretty(self) -> str:
        base = f"{self.base_latency:,}" if self.base_latency else "invalid"
        lines = [f"sensitivity sweep of {self.kernel} (base latency {base})"]
        lines.append(f"{'knob':16s} {'loop':6s} {'sensitivity':>11s} {'best option':>12s}")
        for knob in self.ranked():
            best = knob.best_option() or "-"
            lines.append(
                f"{knob.knob:16s} {knob.loop:6s} {knob.sensitivity:11.1f} {best:>12s}"
            )
        return "\n".join(lines)


def sweep_kernel(
    spec: KernelSpec,
    space: DesignSpace,
    tool: Optional[MerlinHLSTool] = None,
    base_point: Optional[DesignPoint] = None,
) -> SweepResult:
    """Sweep every knob one-at-a-time around ``base_point``."""
    tool = tool or MerlinHLSTool()
    base = dict(base_point) if base_point else space.default_point()
    base_result = tool.synthesize(spec, base)
    result = SweepResult(
        kernel=spec.name,
        base_latency=base_result.latency if base_result.valid else None,
    )
    for knob in space.knobs:
        sweep = KnobSweep(
            knob=knob.name, kind=knob.kind.keyword, loop=knob.loop_label
        )
        for candidate in knob.candidates:
            point = dict(base)
            point[knob.name] = candidate
            if space.rules is not None:
                point = space.rules.canonicalize(point)
            outcome = tool.synthesize(spec, point)
            sweep.options.append(
                candidate.value if hasattr(candidate, "value") else str(candidate)
            )
            sweep.latencies.append(outcome.latency if outcome.valid else None)
            sweep.dsp.append(outcome.utilization["DSP"])
        result.knobs.append(sweep)
    return result
