"""Result records produced by the HLS simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LoopReport", "HLSResult", "INVALID_TIMEOUT", "INVALID_PARTITION", "INVALID_RESOURCE"]

#: Invalidity reasons (Section 4.3.2 enumerates these failure sources).
INVALID_TIMEOUT = "synthesis timeout (> 4h)"
INVALID_PARTITION = "array partitioning refused (too many banks)"
INVALID_RESOURCE = "design far exceeds device resources"


@dataclass
class LoopReport:
    """Per-loop scheduling outcome (drives the bottleneck explorer)."""

    function: str
    label: str
    cycles: int
    trip_count: int
    ii: int = 0  # 0 when the loop is not pipelined
    depth: int = 0
    bottleneck: str = ""  # "memory" | "dependence" | "trip" | "compute"
    children: List["LoopReport"] = field(default_factory=list)

    def flat(self) -> List["LoopReport"]:
        out = [self]
        for child in self.children:
            out.extend(child.flat())
        return out


@dataclass
class HLSResult:
    """One synthesis outcome: QoR + validity + modeled tool runtime.

    ``latency`` is in cycles; ``usage`` holds absolute resource counts
    and ``utilization`` the same normalised by device capacity.
    ``synth_seconds`` models the wall-clock the real HLS run would take
    (used for the Table 3 runtime-speedup arithmetic).
    """

    kernel: str
    point_key: str
    valid: bool
    latency: int
    usage: Dict[str, float]
    utilization: Dict[str, float]
    synth_seconds: float
    invalid_reason: Optional[str] = None
    loops: List[LoopReport] = field(default_factory=list)
    transfer_cycles: int = 0
    #: Registered device the result was synthesized for ("" = the
    #: reference device, for records predating device provenance).
    device: str = ""

    @property
    def objectives(self) -> Dict[str, float]:
        """Predicted objectives: latency + the device's utilizations."""
        return {"latency": float(self.latency), **self.utilization}

    def fits(self, threshold: float = 0.8) -> bool:
        """True when every utilization is below ``threshold`` (Eq. 7)."""
        return all(u < threshold for u in self.utilization.values())

    def all_loops(self) -> List[LoopReport]:
        out: List[LoopReport] = []
        for loop in self.loops:
            out.extend(loop.flat())
        return out

    def pretty(self) -> str:
        """Human-readable synthesis report (Vitis-log flavoured)."""
        status = "PASS" if self.valid else f"FAIL ({self.invalid_reason})"
        lines = [
            f"== {self.kernel} :: {status}",
            f"   latency {self.latency:,} cycles "
            f"(incl. {self.transfer_cycles:,} transfer), "
            f"modeled synthesis {self.synth_seconds / 60.0:.1f} min",
            "   utilization: "
            + "  ".join(f"{k}={v:.3f}" for k, v in sorted(self.utilization.items())),
        ]
        if self.loops:
            lines.append("   loop schedule:")

            def emit(report: LoopReport, indent: int) -> None:
                pad = "     " + "  " * indent
                ii = f"II={report.ii}" if report.ii else "no pipeline"
                lines.append(
                    f"{pad}{report.function}/{report.label}: "
                    f"{report.cycles:,} cycles, trips={report.trip_count}, "
                    f"{ii}, bottleneck={report.bottleneck or '-'}"
                )
                for child in report.children:
                    emit(child, indent + 1)

            for top in self.loops:
                emit(top, 0)
        return "\n".join(lines)
