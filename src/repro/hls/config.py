"""Design-point application: from knob values to a configured loop tree.

Applies the Merlin compiler's semantics to a raw design point:

* fine-grained (``fg``) pipelining of a loop fully unrolls every nested
  loop, so their own pragma settings are discarded;
* a parallel factor at or above the trip count is a full unroll and the
  loop's pipeline setting becomes irrelevant;
* fixed (non-tunable) pragmas always apply.

The resulting :class:`ConfiguredLoop` tree plus per-array partition
factors feed the scheduler and resource estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..frontend.pragmas import Pragma, PragmaKind, PipelineOption
from ..ir.analysis import FunctionAnalysis, KernelAnalysis, LoopInfo

__all__ = ["ConfiguredLoop", "ConfiguredKernel", "configure"]

#: Maximum banks Merlin/HLS will partition one array into.
MAX_PARTITION = 128


@dataclass
class ConfiguredLoop:
    """One loop with its effective pragma settings for a design point."""

    loop: LoopInfo
    pipeline: PipelineOption = PipelineOption.OFF
    parallel: int = 1
    tile: int = 1
    absorbed: bool = False  # an ancestor's fg pipelining swallowed this loop
    children: List["ConfiguredLoop"] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.loop.label

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count

    @property
    def is_fg(self) -> bool:
        return self.pipeline is PipelineOption.FINE and bool(self.children)

    @property
    def is_pipelined(self) -> bool:
        return self.pipeline is not PipelineOption.OFF

    def subtree(self) -> List["ConfiguredLoop"]:
        out: List[ConfiguredLoop] = [self]
        for child in self.children:
            out.extend(child.subtree())
        return out


@dataclass
class ConfiguredKernel:
    """Loop configuration for every function, plus array partitioning."""

    analysis: KernelAnalysis
    functions: Dict[str, List[ConfiguredLoop]] = field(default_factory=dict)
    #: array name -> uncapped bank product (regular accesses only)
    partition_raw: Dict[str, int] = field(default_factory=dict)
    #: array name -> True when any access to it is irregular/indirect
    irregular: Dict[str, bool] = field(default_factory=dict)
    #: array name -> footprint scale in (0, 1] from tiling
    footprint_scale: Dict[str, float] = field(default_factory=dict)
    #: array name -> overlapped transfer (tile + coarse pipeline)
    overlapped: Dict[str, bool] = field(default_factory=dict)

    def banks(self, array: str) -> int:
        """Effective bank count (1 for irregular arrays, capped)."""
        if self.irregular.get(array, False):
            return 1
        return min(self.partition_raw.get(array, 1), MAX_PARTITION)

    def all_loops(self) -> List[ConfiguredLoop]:
        out: List[ConfiguredLoop] = []
        for loops in self.functions.values():
            for top in loops:
                out.extend(top.subtree())
        return out


def _knob_value(point, pragma: Pragma):
    if pragma.fixed_value is not None:
        return pragma.fixed_value
    value = point.get(pragma.placeholder)
    if value is None:
        return PipelineOption.OFF if pragma.kind is PragmaKind.PIPELINE else 1
    return value


def _configure_loop(loop: LoopInfo, point, absorbed: bool) -> ConfiguredLoop:
    cfg = ConfiguredLoop(loop=loop, absorbed=absorbed)
    if not absorbed:
        for pragma in loop.pragmas:
            value = _knob_value(point, pragma)
            if pragma.kind is PragmaKind.PIPELINE:
                cfg.pipeline = value if isinstance(value, PipelineOption) else PipelineOption(value)
            elif pragma.kind is PragmaKind.PARALLEL:
                cfg.parallel = min(int(value), loop.trip_count)
            else:
                cfg.tile = min(int(value), loop.trip_count)
        if cfg.parallel >= loop.trip_count and loop.trip_count > 1:
            # Full unroll: nothing left to pipeline at this level.
            cfg.parallel = loop.trip_count
            cfg.pipeline = PipelineOption.OFF
    swallow = absorbed or cfg.pipeline is PipelineOption.FINE
    for child in loop.children:
        cfg.children.append(_configure_loop(child, point, swallow))
    return cfg


def _collect_partitioning(kernel: ConfiguredKernel, fa: FunctionAnalysis, cfg: ConfiguredLoop):
    """Accumulate per-array bank products and irregularity flags."""
    # The unroll factor this loop contributes: explicit parallel factor,
    # or the full trip count when an ancestor's fg pipelining absorbed it.
    factor = cfg.trip_count if cfg.absorbed else cfg.parallel
    for access in cfg.loop.accesses:
        name = access.array
        kernel.partition_raw.setdefault(name, 1)
        kernel.irregular.setdefault(name, False)
        if access.is_irregular:
            kernel.irregular[name] = True
    if factor > 1:
        var = cfg.loop.induction_var
        # Any access in the subtree that varies with this loop's variable
        # demands partitioned banks on its array.
        affected = set()
        for sub in cfg.subtree():
            for access in sub.loop.accesses:
                if access.depends_on(var) and not access.is_irregular:
                    affected.add(access.array)
        for name in affected:
            kernel.partition_raw[name] = kernel.partition_raw.get(name, 1) * factor
    for child in cfg.children:
        _collect_partitioning(kernel, fa, child)


def _collect_tiling(kernel: ConfiguredKernel, cfg: ConfiguredLoop):
    """Record footprint reduction and transfer overlap from tiling."""
    if cfg.tile > 1 and cfg.trip_count > cfg.tile:
        var = cfg.loop.induction_var
        scale = cfg.tile / float(cfg.trip_count)
        overlapping = cfg.pipeline is PipelineOption.COARSE
        for sub in cfg.subtree():
            for access in sub.loop.accesses:
                if access.is_irregular or not access.depends_on(var):
                    continue
                name = access.array
                current = kernel.footprint_scale.get(name, 1.0)
                kernel.footprint_scale[name] = min(current, scale)
                if overlapping:
                    kernel.overlapped[name] = True
    for child in cfg.children:
        _collect_tiling(kernel, child)


def configure(analysis: KernelAnalysis, point) -> ConfiguredKernel:
    """Apply a design point to a kernel analysis.

    Parameters
    ----------
    analysis:
        The kernel's loop-nest analysis.
    point:
        Mapping of knob placeholder name to option.  Missing knobs
        default to neutral.
    """
    kernel = ConfiguredKernel(analysis=analysis)
    for name, fa in analysis.functions.items():
        tops = [_configure_loop(loop, point, absorbed=False) for loop in fa.top_loops]
        kernel.functions[name] = tops
        for top in tops:
            _collect_partitioning(kernel, fa, top)
            _collect_tiling(kernel, top)
    for name, fa in analysis.functions.items():
        for array in fa.arrays:
            kernel.partition_raw.setdefault(array, 1)
            kernel.irregular.setdefault(array, False)
            kernel.footprint_scale.setdefault(array, 1.0)
    return kernel
