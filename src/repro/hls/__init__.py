"""Simulated Merlin-compiler + HLS evaluator (the paper's tool H).

The original flow calls Xilinx's Merlin compiler and Vitis HLS, which
take minutes to hours per design point.  This package substitutes an
analytical-but-heuristic model that preserves the qualitative structure
of HLS QoR (see DESIGN.md for the substitution argument):

- :class:`MerlinHLSTool` — synthesize (kernel, design point) pairs;
- :class:`HLSResult` — latency, resources, validity, modeled runtime;
- :mod:`repro.hls.estimator` — the scheduling/area model itself.
"""

from .config import MAX_PARTITION, ConfiguredKernel, ConfiguredLoop, configure
from .device import (
    DEFAULT_DEVICE,
    OP_COSTS,
    U50,
    VCU1525,
    ZCU102,
    OpCost,
    ResourcePool,
    get_device,
    list_devices,
    register_device,
)
from .cgra import CGRA4X4, CGRADevice, estimate_cgra
from .estimator import Estimate, Estimator
from .sweep import KnobSweep, SweepResult, sweep_kernel
from .report import (
    INVALID_PARTITION,
    INVALID_RESOURCE,
    INVALID_TIMEOUT,
    HLSResult,
    LoopReport,
)
from .tool import SYNTH_TIMEOUT_SECONDS, MerlinHLSTool

__all__ = [
    "MAX_PARTITION",
    "ConfiguredKernel",
    "ConfiguredLoop",
    "configure",
    "OP_COSTS",
    "VCU1525",
    "U50",
    "ZCU102",
    "DEFAULT_DEVICE",
    "OpCost",
    "ResourcePool",
    "register_device",
    "get_device",
    "list_devices",
    "CGRADevice",
    "CGRA4X4",
    "estimate_cgra",
    "Estimate",
    "Estimator",
    "INVALID_PARTITION",
    "INVALID_RESOURCE",
    "INVALID_TIMEOUT",
    "HLSResult",
    "LoopReport",
    "SYNTH_TIMEOUT_SECONDS",
    "MerlinHLSTool",
    "KnobSweep",
    "SweepResult",
    "sweep_kernel",
]
