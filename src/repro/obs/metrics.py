"""Process-wide thread-safe counters and windowed histograms.

One :class:`MetricsRegistry` instance (:data:`REGISTRY`) backs the
whole process: the evaluation pipeline, the parallel-DSE orchestrator,
and the trainer all increment named instruments here, and the serving
layer's ``/metrics`` endpoint snapshots them next to its own request
stats.  :class:`~repro.serve.metrics.ServeMetrics` keeps its per-server
isolation by owning a private registry built from these same classes.

Instruments are cheap enough to leave always-on: a counter increment is
one lock acquisition around an integer add, and a histogram observation
appends to a bounded deque — no allocation beyond the deque's ring.

Quantiles use **nearest-rank** indexing (``ceil(q*n) - 1``): the p50 of
``[1, 2, 3, 4]`` is 2, and p100 is the maximum.  (The previous serving
helper used ``int(q*n)``, which is upper-biased — it returned 3 for
that median.)
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "histogram",
    "nearest_rank_quantile",
]

#: Most-recent observations kept per histogram window.
DEFAULT_WINDOW = 4096


def nearest_rank_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted sequence.

    ``q`` is clamped to [0, 1]; an empty sequence yields 0.0.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    q = min(max(float(q), 0.0), 1.0)
    index = min(max(math.ceil(q * n) - 1, 0), n - 1)
    return sorted_values[index]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """Bounded most-recent window of observations + lifetime totals.

    The window bounds a long-lived process's memory; quantiles are
    computed on demand from the window, while ``count``/``total`` keep
    accumulating for the whole lifetime.
    """

    __slots__ = ("name", "_lock", "_window", "_count", "_total", "_max")

    def __init__(self, name: str, window: int = DEFAULT_WINDOW):
        self.name = name
        self._lock = threading.Lock()
        self._window: deque = deque(maxlen=int(window))
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        with self._lock:
            values = sorted(self._window)
        return nearest_rank_quantile(values, q)

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Several quantiles from one sort of the window."""
        with self._lock:
            values = sorted(self._window)
        return [nearest_rank_quantile(values, q) for q in qs]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            values = sorted(self._window)
            count, total, maximum = self._count, self._total, self._max
        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "max": maximum,
            "p50": nearest_rank_quantile(values, 0.50),
            "p95": nearest_rank_quantile(values, 0.95),
            "p99": nearest_rank_quantile(values, 0.99),
            "p999": nearest_rank_quantile(values, 0.999),
        }

    def reset(self) -> None:
        with self._lock:
            self._window.clear()
            self._count = 0
            self._total = 0.0
            self._max = 0.0


class MetricsRegistry:
    """Named instrument store; get-or-create keeps callers allocation-free."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def histogram(self, name: str, window: int = DEFAULT_WINDOW) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, window)
            return instrument

    def counters(self) -> Dict[str, int]:
        with self._lock:
            items = list(self._counters.values())
        return {c.name: c.value for c in sorted(items, key=lambda c: c.name)}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = list(self._histograms.values())
        return {h.name: h.snapshot() for h in sorted(items, key=lambda h: h.name)}

    def reset(self) -> None:
        """Zero every instrument (tests; instruments stay registered)."""
        with self._lock:
            instruments = list(self._counters.values()) + list(self._histograms.values())
        for instrument in instruments:
            instrument.reset()


#: The process-wide registry shared by all instrumented subsystems.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the global registry."""
    return REGISTRY.counter(name)


def histogram(name: str, window: Optional[int] = None) -> Histogram:
    """Get-or-create a histogram on the global registry."""
    return REGISTRY.histogram(name, window or DEFAULT_WINDOW)
