"""``repro.obs`` — zero-dependency observability for the whole stack.

Three pieces, shared process-wide:

- **Tracing** (:mod:`repro.obs.trace`): hierarchical spans via
  ``with span("dse.shard", shard=3): ...``, recording monotonic start,
  duration, attributes, and parentage.  Disabled by default; the
  disabled path returns a shared no-op span (one flag test, no
  allocation), so hot-path instrumentation is effectively free until
  someone opts in (``repro dse --trace``, ``enable()``).
- **Metrics** (:mod:`repro.obs.metrics`): process-wide thread-safe
  counters and windowed histograms with nearest-rank quantiles, always
  on.  The serving layer's :class:`~repro.serve.metrics.ServeMetrics`
  consumes the same instrument classes and surfaces this registry under
  ``/metrics``.
- **Export** (:mod:`repro.obs.export`): trace JSON (schema-validated,
  see ``make trace-smoke``) plus JSON and Prometheus-style metric
  dumps.

Everything here is stdlib-only, importable before any heavy module, and
safe in forked workers (children inherit a disabled tracer copy and
their own counter values; cross-process aggregation rides the existing
shard-result/stats channels, not this module).
"""

from .export import (
    TRACE_SCHEMA_VERSION,
    TraceValidationError,
    metrics_payload,
    metrics_text,
    trace_payload,
    validate_trace,
    write_trace,
)
from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    histogram,
    nearest_rank_quantile,
)
from .trace import (
    NULL_SPAN,
    Span,
    TRACER,
    Tracer,
    disable,
    enable,
    is_enabled,
    reset,
    span,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "Span",
    "TRACER",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "TraceValidationError",
    "counter",
    "disable",
    "enable",
    "histogram",
    "is_enabled",
    "metrics_payload",
    "metrics_text",
    "nearest_rank_quantile",
    "reset",
    "span",
    "trace_payload",
    "validate_trace",
    "write_trace",
]
