"""Hierarchical tracing spans with near-zero disabled-path cost.

A span is one timed region of the pipeline — a request, a DSE shard, a
training epoch, an evaluation batch — with a name, free-form attributes,
and a parent (the span that was open on the same thread when it
started).  Spans nest through an ordinary ``with`` block::

    with span("dse.shard", shard=3, points=128):
        ...

Durations come from :func:`time.perf_counter` (monotonic); wall-clock
time appears only once, as the tracer's ``started_at`` epoch stamp for
human consumption — duration math never touches ``time.time()``, so a
stepped system clock cannot corrupt a trace.

Tracing is **disabled by default** and the disabled path is a near
no-op: :func:`span` returns a shared :data:`NULL_SPAN` singleton
without allocating, timing, or locking, so always-on instrumentation
in the hot paths (one ``span`` call per evaluation batch) costs a
single flag test when nobody is tracing.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

__all__ = ["NULL_SPAN", "Span", "TRACER", "Tracer", "enable", "disable", "is_enabled", "reset", "span"]

#: Finished spans kept per tracer; older spans are dropped (and counted).
DEFAULT_MAX_SPANS = 100_000


class Span:
    """One open (then finished) traced region."""

    __slots__ = ("name", "span_id", "parent_id", "start_s", "duration_s", "attrs", "thread", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], start_s: float, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s  #: seconds since the tracer's epoch (monotonic)
        self.duration_s: Optional[float] = None  #: set when the span closes
        self.attrs = attrs
        self.thread = threading.current_thread().name

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open span (e.g. a late status code)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        dur = f"{self.duration_s * 1e3:.3f}ms" if self.duration_s is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, {dur})"


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; one per process is the normal setup.

    Thread-safe: each thread keeps its own open-span stack (so nesting
    is per thread of control), finished spans land in one bounded,
    lock-protected list.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        self.enabled = False
        self.max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._spans: List[Span] = []
        self.dropped = 0
        self.epoch = time.perf_counter()
        self.started_at = time.time()  # wall clock, display only

    # -- lifecycle ---------------------------------------------------------

    def enable(self, max_spans: Optional[int] = None) -> None:
        with self._lock:
            if max_spans is not None:
                self.max_spans = int(max_spans)
            self.enabled = True

    def disable(self) -> None:
        with self._lock:
            self.enabled = False

    def reset(self) -> None:
        """Drop all finished spans and restart the epoch."""
        with self._lock:
            self._spans = []
            self.dropped = 0
            self._ids = itertools.count(1)
            self.epoch = time.perf_counter()
            self.started_at = time.time()

    # -- recording ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return Span(
            self, name, next(self._ids), parent_id,
            time.perf_counter() - self.epoch, attrs,
        )

    def record(self, name: str, start_s: float, duration_s: float,
               parent_id: Optional[int] = None, **attrs) -> None:
        """Record an externally timed region (e.g. a worker-process shard
        observed from the orchestrator) as a finished span.

        Without an explicit ``parent_id`` the span nests under whichever
        span is open on the calling thread, the same parentage rule
        ``with span(...)`` applies.
        """
        if not self.enabled:
            return
        if parent_id is None:
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
        s = Span(self, name, next(self._ids), parent_id, start_s, attrs)
        s.duration_s = max(float(duration_s), 0.0)
        self._store(s)

    def now(self) -> float:
        """Monotonic seconds since this tracer's epoch."""
        return time.perf_counter() - self.epoch

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - self.epoch - span.start_s
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._store(span)

    def _store(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    # -- reading -----------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-wide tracer every instrumented module records into.
TRACER = Tracer()


def span(name: str, **attrs) -> Span:
    """Open a span on the global tracer (no-op singleton when disabled)."""
    if not TRACER.enabled:
        return NULL_SPAN
    return TRACER.span(name, **attrs)


def enable(max_spans: Optional[int] = None) -> None:
    """Turn on trace collection process-wide."""
    TRACER.enable(max_spans)


def disable() -> None:
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    TRACER.reset()
