"""Exports: trace JSON (+ schema validation) and metrics JSON/text dumps.

The trace file is a single JSON object (see :data:`TRACE_SCHEMA_VERSION`)::

    {
      "schema_version": 1,
      "clock": "monotonic",
      "started_at": 1754450000.0,        # wall clock, display only
      "span_count": 42,
      "dropped_spans": 0,
      "spans": [
        {"name": "dse.shard", "id": 7, "parent_id": 1,
         "start_s": 0.0123, "duration_s": 0.5101,
         "thread": "MainThread", "attrs": {"shard": 3}},
        ...
      ]
    }

``start_s``/``duration_s`` are monotonic seconds relative to the
tracer's epoch, so spans from one process compare and sum exactly.
:func:`validate_trace` is the schema gate ``make trace-smoke`` and the
tests run over every exported trace.

Metrics export twice: :func:`metrics_payload` (JSON, nested under
``counters``/``histograms``) and :func:`metrics_text` (Prometheus-style
``name value`` lines with ``.`` flattened to ``_``).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .metrics import REGISTRY, MetricsRegistry
from .trace import TRACER, Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceValidationError",
    "metrics_payload",
    "metrics_text",
    "trace_payload",
    "validate_trace",
    "write_trace",
]

TRACE_SCHEMA_VERSION = 1


class TraceValidationError(ValueError):
    """An exported trace violates the schema."""


# ---------------------------------------------------------------------------
# traces


def trace_payload(tracer: Optional[Tracer] = None) -> Dict[str, object]:
    """JSON-ready dump of every finished span, in start order."""
    tracer = tracer or TRACER
    spans = sorted(tracer.finished_spans(), key=lambda s: (s.start_s, s.span_id))
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "clock": "monotonic",
        "started_at": tracer.started_at,
        "span_count": len(spans),
        "dropped_spans": tracer.dropped,
        "spans": [
            {
                "name": s.name,
                "id": s.span_id,
                "parent_id": s.parent_id,
                "start_s": s.start_s,
                "duration_s": s.duration_s,
                "thread": s.thread,
                "attrs": s.attrs,
            }
            for s in spans
        ],
    }


def write_trace(path: str, tracer: Optional[Tracer] = None) -> Dict[str, object]:
    """Validate and write the trace JSON; returns the payload."""
    payload = trace_payload(tracer)
    validate_trace(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise TraceValidationError(message)


def validate_trace(payload: Dict[str, object]) -> None:
    """Structurally validate a trace payload; raises on any violation."""
    _check(isinstance(payload, dict), "trace must be a JSON object")
    _check(
        payload.get("schema_version") == TRACE_SCHEMA_VERSION,
        f"schema_version must be {TRACE_SCHEMA_VERSION}, "
        f"got {payload.get('schema_version')!r}",
    )
    _check(payload.get("clock") == "monotonic", "clock must be 'monotonic'")
    spans = payload.get("spans")
    _check(isinstance(spans, list), "'spans' must be a list")
    _check(payload.get("span_count") == len(spans), "span_count mismatch")
    ids = set()
    for i, raw in enumerate(spans):
        where = f"span[{i}]"
        _check(isinstance(raw, dict), f"{where} must be an object")
        for key in ("name", "id", "start_s", "duration_s", "attrs"):
            _check(key in raw, f"{where} missing field {key!r}")
        _check(isinstance(raw["name"], str) and raw["name"], f"{where}: empty name")
        _check(isinstance(raw["id"], int), f"{where}: id must be an int")
        _check(raw["id"] not in ids, f"{where}: duplicate span id {raw['id']}")
        ids.add(raw["id"])
        _check(
            isinstance(raw["start_s"], (int, float)) and raw["start_s"] >= 0,
            f"{where}: start_s must be a non-negative number",
        )
        _check(
            isinstance(raw["duration_s"], (int, float)) and raw["duration_s"] >= 0,
            f"{where}: duration_s must be a non-negative number",
        )
        _check(isinstance(raw["attrs"], dict), f"{where}: attrs must be an object")
    for i, raw in enumerate(spans):
        parent = raw.get("parent_id")
        _check(
            parent is None or (isinstance(parent, int) and parent in ids and parent != raw["id"]),
            f"span[{i}]: parent_id {parent!r} does not reference another span",
        )


# ---------------------------------------------------------------------------
# metrics


def metrics_payload(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """JSON-ready dump of every counter and histogram in a registry."""
    registry = registry or REGISTRY
    return {
        "counters": registry.counters(),
        "histograms": registry.histograms(),
    }


def metrics_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus-style exposition text (one ``name value`` per line)."""
    registry = registry or REGISTRY

    def flat(name: str) -> str:
        out = []
        for ch in name:
            out.append(ch if ch.isalnum() or ch == "_" else "_")
        text = "".join(out)
        return "repro_" + text if not text.startswith("repro_") else text

    lines = []
    for name, value in registry.counters().items():
        lines.append(f"{flat(name)} {value}")
    for name, snap in registry.histograms().items():
        base = flat(name)
        lines.append(f"{base}_count {snap['count']}")
        lines.append(f"{base}_sum {snap['total']:.9g}")
        for q in ("p50", "p95", "p99", "p999"):
            lines.append(f'{base}{{quantile="{q[1:]}"}} {snap[q]:.9g}')
    return "\n".join(lines) + "\n"
