"""IR value model: constants, arguments, and instructions.

The design follows LLVM loosely: every :class:`Value` has a type and an
optional name; :class:`Instruction` is a value produced by an opcode over
operand values.  Instead of one subclass per opcode we use a single
class with an ``opcode`` string — the program-graph builder keys nodes by
opcode text exactly like ProGraML does, so this keeps the pipeline flat.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

from ..errors import IRError
from .types import IRType, VOID

__all__ = [
    "Value",
    "Constant",
    "Argument",
    "Instruction",
    "OPCODES",
    "TERMINATORS",
    "MEMORY_OPCODES",
    "BINARY_OPCODES",
    "CAST_OPCODES",
]

#: Opcodes producing control-flow transfer (always end a basic block).
TERMINATORS = frozenset({"br", "condbr", "ret"})

#: Opcodes touching memory.
MEMORY_OPCODES = frozenset({"load", "store", "alloca", "getelementptr"})

#: Two-operand arithmetic/logic opcodes (typed, LLVM style).
BINARY_OPCODES = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "srem",
        "fadd",
        "fsub",
        "fmul",
        "fdiv",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
        "icmp",
        "fcmp",
    }
)

CAST_OPCODES = frozenset({"sext", "zext", "trunc", "sitofp", "fptosi", "fpext", "fptrunc", "bitcast"})

#: Every opcode the IR accepts.
OPCODES = (
    TERMINATORS
    | MEMORY_OPCODES
    | BINARY_OPCODES
    | CAST_OPCODES
    | frozenset({"phi", "call", "select"})
)

_id_counter = itertools.count()


class Value:
    """Base class: anything that can be an operand.

    Attributes
    ----------
    type:
        The :class:`~repro.ir.types.IRType` of the value.
    name:
        SSA-style name (``%3``, ``%i.addr``); empty for void values.
    uid:
        Process-unique integer identity, used as a stable dict key.
    """

    def __init__(self, type_: IRType, name: str = ""):
        self.type = type_
        self.name = name
        self.uid = next(_id_counter)
        self.uses: List["Instruction"] = []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name or self.uid})"


class Constant(Value):
    """An immediate constant (int or float)."""

    def __init__(self, type_: IRType, value: Any):
        super().__init__(type_, name=str(value))
        self.value = value

    @property
    def key_text(self) -> str:
        """ProGraML-style node text: the constant's type string."""
        return str(self.type)

    def __repr__(self) -> str:
        return f"Constant({self.type} {self.value})"


class Argument(Value):
    """A formal function parameter."""

    def __init__(self, type_: IRType, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class Instruction(Value):
    """One IR instruction.

    Attributes
    ----------
    opcode:
        Lower-case opcode string from :data:`OPCODES`.
    operands:
        Ordered operand values.
    attrs:
        Free-form metadata: comparison predicate for icmp/fcmp, callee
        name for call, loop label for loop-backedge branches, the source
        array name for alloca/getelementptr, etc.
    block:
        The owning :class:`~repro.ir.function.BasicBlock` (set on insert).
    """

    def __init__(
        self,
        opcode: str,
        type_: IRType,
        operands: Sequence[Value] = (),
        name: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ):
        if opcode not in OPCODES:
            raise IRError(f"unknown opcode {opcode!r}")
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.block = None  # set by BasicBlock.append
        for operand in self.operands:
            operand.uses.append(self)

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def produces_value(self) -> bool:
        return self.type is not VOID and not isinstance(self.type, type(VOID))

    @property
    def key_text(self) -> str:
        """ProGraML-style node text (opcode, plus predicate for compares)."""
        if self.opcode in ("icmp", "fcmp"):
            return f"{self.opcode}.{self.attrs.get('predicate', 'eq')}"
        return self.opcode

    def replace_operand(self, old: Value, new: Value) -> None:
        """Replace occurrences of ``old`` in the operand list with ``new``."""
        changed = False
        for i, operand in enumerate(self.operands):
            if operand is old:
                self.operands[i] = new
                changed = True
        if changed:
            old.uses = [u for u in old.uses if u is not self]
            new.uses.append(self)

    def __repr__(self) -> str:
        ops = ", ".join(o.name or str(o.uid) for o in self.operands)
        lhs = f"%{self.name} = " if self.produces_value and self.name else ""
        return f"{lhs}{self.opcode} {ops}"
