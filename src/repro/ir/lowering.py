"""AST → IR lowering (the "Clang" step of the graph-generator pipeline).

The style follows ``clang -O0``: every scalar local (including loop
induction variables) lives in an ``alloca`` slot accessed through
``load``/``store``.  This is deliberate — ProGraML-style graphs built
from unoptimised IR expose one variable node per program variable, which
is exactly the granularity the paper's graphs show (Fig. 1(b)).

Loops lower to the canonical four-block shape::

    for.init -> for.cond -> for.body -> for.inc -> for.cond (backedge)
                      \\-> for.end

The ``icmp`` in ``for.cond`` is registered in
``Function.loop_icmp[label]`` so pragma nodes can attach to it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import LoweringError
from ..frontend import ast_nodes as ast
from ..frontend.semantic import INTRINSICS, SymbolTable, analyze
from .builder import IRBuilder
from .function import Function, Module
from .types import F64, I32, IRType, PointerType, VOID, from_ctype
from .values import Value

__all__ = ["lower_unit", "Lowering"]


class Lowering:
    """Lowers one translation unit into a fresh :class:`Module`."""

    def __init__(self, unit: ast.TranslationUnit):
        self._unit = unit
        self._tables: Dict[str, SymbolTable] = analyze(unit)
        self._module = Module(unit.source_name)
        self._signatures: Dict[str, IRType] = {
            fn.name: from_ctype(fn.return_type) for fn in unit.functions
        }

    def run(self) -> Module:
        for fn in self._unit.functions:
            self._lower_function(fn)
        self._module.verify()
        return self._module

    # -- function scaffolding --------------------------------------------------

    def _lower_function(self, fn: ast.FunctionDef) -> Function:
        ir_fn = self._module.add_function(fn.name, from_ctype(fn.return_type))
        builder = IRBuilder(ir_fn)
        entry = builder.new_block("entry")
        builder.set_insert_point(entry)
        table = self._tables[fn.name]
        slots: Dict[str, Value] = {}

        for param in fn.params:
            ir_type = from_ctype(param.ctype)
            if param.ctype.is_array:
                # Array parameters decay to pointers; use the argument itself.
                arg = ir_fn.add_arg(PointerType(ir_type), param.name)
                slots[param.name] = arg
            else:
                arg = ir_fn.add_arg(ir_type, param.name)
                slot = builder.alloca(ir_type, param.name)
                builder.store(arg, slot)
                slots[param.name] = slot

        ctx = _FunctionContext(builder, table, slots, self._signatures)
        ctx.lower_block(fn.body)
        if not builder.block.is_terminated:
            builder.ret(None if ir_fn.return_type is VOID else builder.const_int(0))
        # Terminate any dead blocks produced by early returns.
        for block in ir_fn.blocks:
            if not block.is_terminated:
                builder.set_insert_point(block)
                builder.ret(None if ir_fn.return_type is VOID else builder.const_int(0))
        return ir_fn


class _FunctionContext:
    """Per-function lowering state: slots, loop stack, builder."""

    def __init__(
        self,
        builder: IRBuilder,
        table: SymbolTable,
        slots: Dict[str, Value],
        signatures: Dict[str, IRType],
    ):
        self.builder = builder
        self.table = table
        self.slots = slots
        self.signatures = signatures
        #: stack of (break target, continue target) for nested loops
        self.loop_stack: List[Tuple] = []

    # -- statements -------------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._ensure_open()
            self.lower_stmt(stmt)

    def _ensure_open(self) -> None:
        if self.builder.block.is_terminated:
            dead = self.builder.new_block("dead")
            self.builder.set_insert_point(dead)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.builder.ret(value)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise LoweringError("break outside of a loop")
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise LoweringError("continue outside of a loop")
            self.builder.br(self.loop_stack[-1][1])
        else:
            raise LoweringError(f"cannot lower {type(stmt).__name__}")

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        ir_type = from_ctype(stmt.ctype)
        slot = self.builder.alloca(ir_type, stmt.name)
        self.slots[stmt.name] = slot
        if stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.builder.store(self.builder.cast(value, ir_type), slot)

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        pointer = self.lower_lvalue(stmt.target)
        target_type = pointer.type.pointee  # type: ignore[union-attr]
        if stmt.op:
            current = self.builder.load(pointer)
            value = self.lower_expr(stmt.value)
            if stmt.op in ("&&", "||"):
                result = self.builder.logical(stmt.op, current, value)
            else:
                result = self.builder.binary(stmt.op, current, value)
        else:
            result = self.lower_expr(stmt.value)
        self.builder.store(self.builder.cast(result, target_type), pointer)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self.builder.new_block("if.then")
        end_block = self.builder.new_block("if.end")
        else_block = self.builder.new_block("if.else") if stmt.otherwise else end_block
        self.builder.condbr(cond, then_block, else_block)
        self.builder.set_insert_point(then_block)
        self.lower_block(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.br(end_block)
        if stmt.otherwise:
            self.builder.set_insert_point(else_block)
            self.lower_block(stmt.otherwise)
            if not self.builder.block.is_terminated:
                self.builder.br(end_block)
        self.builder.set_insert_point(end_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        label = stmt.label or "L?"
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_block = self.builder.new_block(f"for.cond.{label}")
        body_block = self.builder.new_block(f"for.body.{label}")
        inc_block = self.builder.new_block(f"for.inc.{label}")
        end_block = self.builder.new_block(f"for.end.{label}")
        self.builder.br(cond_block)

        self.builder.set_insert_point(cond_block)
        if stmt.cond is None:
            self.builder.br(body_block)
        else:
            cond = self._lower_loop_cond(stmt.cond, label)
            self.builder.condbr(cond, body_block, end_block)

        self.builder.set_insert_point(body_block)
        self.loop_stack.append((end_block, inc_block))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(inc_block)

        self.builder.set_insert_point(inc_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.builder.br(cond_block, loop_label=label, backedge=True)
        self.builder.set_insert_point(end_block)

    def _lower_loop_cond(self, cond: ast.Expr, label: str) -> Value:
        """Lower a loop condition, tagging its compare with the loop label."""
        if isinstance(cond, ast.BinaryOp) and cond.op in ("<", ">", "<=", ">=", "==", "!="):
            lhs = self.lower_expr(cond.lhs)
            rhs = self.lower_expr(cond.rhs)
            icmp = self.builder.compare(cond.op, lhs, rhs, loop_label=label)
            self.builder.function.loop_icmp[label] = icmp
            return icmp
        value = self.lower_expr(cond)
        as_bool = self.builder.to_bool(value)
        self.builder.function.loop_icmp.setdefault(label, as_bool)  # type: ignore[arg-type]
        return as_bool

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_block = self.builder.new_block("while.cond")
        body_block = self.builder.new_block("while.body")
        end_block = self.builder.new_block("while.end")
        self.builder.br(cond_block)
        self.builder.set_insert_point(cond_block)
        cond = self.lower_expr(stmt.cond)
        self.builder.condbr(cond, body_block, end_block)
        self.builder.set_insert_point(body_block)
        self.loop_stack.append((end_block, cond_block))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block, backedge=True)
        self.builder.set_insert_point(end_block)

    # -- expressions -------------------------------------------------------------

    def lower_lvalue(self, expr: ast.Expr) -> Value:
        """Lower an expression in address position; returns a pointer."""
        if isinstance(expr, ast.VarRef):
            try:
                return self.slots[expr.name]
            except KeyError:
                raise LoweringError(f"no storage for {expr.name!r}") from None
        if isinstance(expr, ast.ArrayRef):
            base = self.slots[expr.base]
            indices = [self.builder.cast(self.lower_expr(i), I32) for i in expr.indices]
            return self.builder.gep(base, indices, array=expr.base)
        raise LoweringError(f"{type(expr).__name__} is not an lvalue")

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return self.builder.const_int(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return self.builder.const_float(expr.value, F64)
        if isinstance(expr, ast.VarRef):
            slot = self.slots.get(expr.name)
            if slot is None:
                raise LoweringError(f"no storage for {expr.name!r}")
            if self.table.lookup(expr.name).is_array:
                return slot  # arrays decay to pointers in rvalue position
            return self.builder.load(slot, name_hint=expr.name)
        if isinstance(expr, ast.ArrayRef):
            symbol = self.table.lookup(expr.base)
            pointer = self.lower_lvalue(expr)
            if len(expr.indices) < len(symbol.ctype.dims):
                return pointer  # partial subscript: still an array pointer
            return self.builder.load(pointer)
        if isinstance(expr, ast.UnaryOp):
            operand = self.lower_expr(expr.operand)
            if expr.op == "-":
                return self.builder.neg(operand)
            if expr.op == "!":
                return self.builder.logical_not(operand)
            if expr.op == "~":
                return self.builder.bit_not(operand)
            raise LoweringError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("&&", "||"):
                lhs = self.lower_expr(expr.lhs)
                rhs = self.lower_expr(expr.rhs)
                return self.builder.logical(expr.op, lhs, rhs)
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            if expr.op in ("<", ">", "<=", ">=", "==", "!="):
                return self.builder.compare(expr.op, lhs, rhs)
            return self.builder.binary(expr.op, lhs, rhs)
        if isinstance(expr, ast.TernaryOp):
            cond = self.lower_expr(expr.cond)
            then = self.lower_expr(expr.then)
            otherwise = self.lower_expr(expr.otherwise)
            return self.builder.select(cond, then, otherwise)
        if isinstance(expr, ast.Cast):
            value = self.lower_expr(expr.operand)
            return self.builder.cast(value, from_ctype(ast.CType(expr.target.base)))
        if isinstance(expr, ast.Call):
            args = [self.lower_expr(a) for a in expr.args]
            if expr.name in self.signatures:
                return_type = self.signatures[expr.name]
            else:
                return_type = from_ctype(INTRINSICS[expr.name])
            return self.builder.call(expr.name, args, return_type)
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")


def lower_unit(unit: ast.TranslationUnit) -> Module:
    """Lower a parsed translation unit to IR and verify the result."""
    return Lowering(unit).run()
