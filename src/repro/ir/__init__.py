"""LLVM-like intermediate representation and analyses.

Substitutes for LLVM in the GNN-DSE pipeline: the front-end AST lowers
into this IR (:func:`lower_unit`), the ProGraML-style graph is built from
it (:mod:`repro.graph`), and the loop-nest analysis
(:func:`analyze_kernel`) feeds the design-space generator and the HLS
simulator.
"""

from .analysis import (
    DEFAULT_TRIP,
    ArrayAccess,
    ArrayInfo,
    FunctionAnalysis,
    KernelAnalysis,
    LoopInfo,
    OpCensus,
    Reduction,
    analyze_kernel,
)
from .builder import IRBuilder
from .cfg import DominatorTree, NaturalLoop, compute_dominators, find_natural_loops
from .function import BasicBlock, Function, Module
from .lowering import Lowering, lower_unit
from .passes import PassStats, eliminate_dead_code, fold_constants, optimize_module
from .printer import print_function, print_instruction, print_module
from .types import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    VoidType,
    from_ctype,
)
from .values import (
    BINARY_OPCODES,
    CAST_OPCODES,
    MEMORY_OPCODES,
    OPCODES,
    TERMINATORS,
    Argument,
    Constant,
    Instruction,
    Value,
)

__all__ = [
    "DEFAULT_TRIP",
    "ArrayAccess",
    "ArrayInfo",
    "FunctionAnalysis",
    "KernelAnalysis",
    "LoopInfo",
    "OpCensus",
    "Reduction",
    "analyze_kernel",
    "IRBuilder",
    "DominatorTree",
    "NaturalLoop",
    "compute_dominators",
    "find_natural_loops",
    "BasicBlock",
    "Function",
    "Module",
    "Lowering",
    "lower_unit",
    "PassStats",
    "eliminate_dead_code",
    "fold_constants",
    "optimize_module",
    "print_function",
    "print_instruction",
    "print_module",
    "F32",
    "F64",
    "I1",
    "I8",
    "I32",
    "I64",
    "VOID",
    "ArrayType",
    "FloatType",
    "IntType",
    "IRType",
    "PointerType",
    "VoidType",
    "from_ctype",
    "BINARY_OPCODES",
    "CAST_OPCODES",
    "MEMORY_OPCODES",
    "OPCODES",
    "TERMINATORS",
    "Argument",
    "Constant",
    "Instruction",
    "Value",
]
