"""Basic blocks, functions, and modules.

Mirrors LLVM's containment hierarchy: a :class:`Module` owns
:class:`Function` objects, each of which owns ordered
:class:`BasicBlock` objects, each of which owns ordered
:class:`~repro.ir.values.Instruction` objects.  Basic-block integer IDs
are exposed because Section 4.2 of the paper encodes "the LLVM block ID
of the for loop" into every node.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import IRError
from .types import IRType, VOID
from .values import Argument, Instruction

__all__ = ["BasicBlock", "Function", "Module"]


class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    def __init__(self, name: str, parent: "Function"):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []
        self.block_id: int = -1  # assigned by Function.add_block

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(f"block {self.name} already has a terminator")
        inst.block = self
        self.instructions.append(inst)
        return inst

    @property
    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.is_terminated:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        if term.opcode == "br":
            return [term.attrs["target"]]
        if term.opcode == "condbr":
            return [term.attrs["if_true"], term.attrs["if_false"]]
        return []

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, id={self.block_id}, {len(self.instructions)} insts)"


class Function:
    """An IR function: arguments plus an ordered list of basic blocks."""

    def __init__(self, name: str, return_type: IRType, module: "Module"):
        self.name = name
        self.return_type = return_type
        self.module = module
        self.args: List[Argument] = []
        self.blocks: List[BasicBlock] = []
        self._block_names: Dict[str, int] = {}
        #: loop label -> the icmp Instruction guarding that loop.  Pragma
        #: nodes attach to these (Section 4.2).
        self.loop_icmp: Dict[str, Instruction] = {}

    def add_arg(self, type_: IRType, name: str) -> Argument:
        arg = Argument(type_, name, len(self.args))
        self.args.append(arg)
        return arg

    def add_block(self, name: str) -> BasicBlock:
        count = self._block_names.get(name, 0)
        self._block_names[name] = count + 1
        if count:
            name = f"{name}.{count}"
        block = BasicBlock(name, self)
        block.block_id = len(self.blocks)
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def first_instruction(self) -> Instruction:
        for inst in self.instructions():
            return inst
        raise IRError(f"function {self.name} is empty")

    def num_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def verify(self) -> None:
        """Check structural invariants; raise :class:`IRError` on failure."""
        for block in self.blocks:
            if not block.is_terminated:
                raise IRError(f"{self.name}:{block.name} lacks a terminator")
            for inst in block.instructions[:-1]:
                if inst.is_terminator:
                    raise IRError(f"{self.name}:{block.name} has a mid-block terminator")
            for succ in block.successors():
                if succ.parent is not self:
                    raise IRError(f"{self.name}:{block.name} branches across functions")

    def __repr__(self) -> str:
        return f"Function({self.name}, {len(self.blocks)} blocks)"


class Module:
    """Top-level IR container for one kernel translation unit."""

    def __init__(self, name: str = "<kernel>"):
        self.name = name
        self.functions: List[Function] = []

    def add_function(self, name: str, return_type: IRType = VOID) -> Function:
        if any(fn.name == name for fn in self.functions):
            raise IRError(f"duplicate function {name!r}")
        fn = Function(name, return_type, self)
        self.functions.append(fn)
        return fn

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise IRError(f"no function named {name!r}")

    @property
    def top(self) -> Function:
        """The top-level kernel function (by convention, defined last)."""
        if not self.functions:
            raise IRError("module has no functions")
        return self.functions[-1]

    def verify(self) -> None:
        for fn in self.functions:
            fn.verify()

    def num_instructions(self) -> int:
        return sum(fn.num_instructions() for fn in self.functions)

    def __repr__(self) -> str:
        return f"Module({self.name}, {len(self.functions)} functions)"
