"""Control-flow-graph analyses over the IR: dominators and natural loops.

Provides an *independent* reconstruction of the loop structure from the
basic-block graph (dominator-based back-edge detection), which the test
suite cross-checks against the AST-level loop analysis — two different
paths to the same answer pin both down.

Algorithms are the textbook ones (Cooper-Harvey-Kennedy iterative
dominators; natural-loop body collection from back edges), sized for
our kernels' small CFGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import IRError
from .function import BasicBlock, Function

__all__ = ["DominatorTree", "NaturalLoop", "compute_dominators", "find_natural_loops"]


@dataclass
class DominatorTree:
    """Immediate-dominator mapping for one function's CFG."""

    function: Function
    idom: Dict[BasicBlock, Optional[BasicBlock]]

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def dominators_of(self, block: BasicBlock) -> List[BasicBlock]:
        """All dominators of ``block``, innermost first."""
        out: List[BasicBlock] = []
        node: Optional[BasicBlock] = block
        while node is not None:
            out.append(node)
            node = self.idom.get(node)
        return out


@dataclass
class NaturalLoop:
    """A natural loop: header + body blocks (header included)."""

    header: BasicBlock
    back_edge_source: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)

    @property
    def label(self) -> str:
        """Loop label recovered from the header's name (``for.cond.L2``)."""
        parts = self.header.name.split(".")
        for part in parts:
            if part.startswith("L") and part[1:].split(".")[0].isdigit():
                return part
        return self.header.name

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks


def _predecessors(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def _reverse_postorder(fn: Function) -> List[BasicBlock]:
    seen: Set[int] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        if id(block) in seen:
            return
        seen.add(id(block))
        for succ in block.successors():
            visit(succ)
        order.append(block)

    visit(fn.entry)
    order.reverse()
    return order


def compute_dominators(fn: Function) -> DominatorTree:
    """Iterative dominator computation (Cooper-Harvey-Kennedy)."""
    if not fn.blocks:
        raise IRError(f"{fn.name} has no blocks")
    rpo = _reverse_postorder(fn)
    index = {block: i for i, block in enumerate(rpo)}
    preds = _predecessors(fn)
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {block: None for block in rpo}
    entry = fn.entry
    idom[entry] = entry

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            candidates = [p for p in preds[block] if p in index and idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom[block] is not new_idom:
                idom[block] = new_idom
                changed = True

    idom[entry] = None  # the entry has no immediate dominator
    return DominatorTree(function=fn, idom=idom)


def find_natural_loops(fn: Function) -> List[NaturalLoop]:
    """Detect natural loops from dominator-based back edges.

    A back edge is an edge ``t -> h`` where ``h`` dominates ``t``; the
    loop body is every block that can reach ``t`` without passing
    through ``h``.
    """
    tree = compute_dominators(fn)
    preds = _predecessors(fn)
    loops: List[NaturalLoop] = []
    for block in fn.blocks:
        for succ in block.successors():
            if tree.dominates(succ, block):
                loop = NaturalLoop(header=succ, back_edge_source=block)
                loop.blocks = {succ}
                stack = [block]
                while stack:
                    node = stack.pop()
                    if node in loop.blocks:
                        continue
                    loop.blocks.add(node)
                    stack.extend(preds[node])
                loops.append(loop)
    return loops
