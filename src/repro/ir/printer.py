"""Textual IR printer (LLVM-flavoured, for debugging and golden tests)."""

from __future__ import annotations

from typing import List

from .function import BasicBlock, Function, Module
from .values import Constant, Instruction, Value

__all__ = ["print_module", "print_function", "print_instruction"]


def _operand_str(value: Value) -> str:
    if isinstance(value, Constant):
        return f"{value.type} {value.value}"
    return f"{value.type} %{value.name or value.uid}"


def print_instruction(inst: Instruction) -> str:
    """Render one instruction as a single line of LLVM-ish text."""
    parts: List[str] = []
    if inst.produces_value and inst.name:
        parts.append(f"%{inst.name} =")
    parts.append(inst.opcode)
    if inst.opcode in ("icmp", "fcmp"):
        parts.append(inst.attrs.get("predicate", ""))
    if inst.opcode == "call":
        parts.append(f"@{inst.attrs.get('callee', '?')}")
    if inst.opcode == "br":
        parts.append(f"label %{inst.attrs['target'].name}")
        if inst.attrs.get("backedge"):
            parts.append(f"; loop {inst.attrs.get('loop', '?')} backedge")
        return "  " + " ".join(parts)
    if inst.opcode == "condbr":
        cond = _operand_str(inst.operands[0])
        parts.append(
            f"{cond}, label %{inst.attrs['if_true'].name}, label %{inst.attrs['if_false'].name}"
        )
        return "  " + " ".join(parts)
    operand_text = ", ".join(_operand_str(op) for op in inst.operands)
    if operand_text:
        parts.append(operand_text)
    if inst.opcode == "alloca":
        parts.append(f"; var {inst.attrs.get('var', '?')}")
    if inst.opcode == "getelementptr" and inst.attrs.get("array"):
        parts.append(f"; array {inst.attrs['array']}")
    return "  " + " ".join(parts)


def _print_block(block: BasicBlock) -> List[str]:
    lines = [f"{block.name}:  ; block id {block.block_id}"]
    lines.extend(print_instruction(inst) for inst in block.instructions)
    return lines


def print_function(fn: Function) -> str:
    """Render a function with its blocks."""
    args = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    header = f"define {fn.return_type} @{fn.name}({args}) {{"
    lines = [header]
    for block in fn.blocks:
        lines.extend(_print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module."""
    chunks = [f"; module {module.name}"]
    chunks.extend(print_function(fn) for fn in module.functions)
    return "\n\n".join(chunks)
