"""IR type system, modelled on (a small corner of) LLVM's.

Only what the kernels require: void, integers of various widths, IEEE
floats, pointers, and statically-sized arrays.  Types are value objects:
equality is structural and instances are hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "IRType",
    "VoidType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "VOID",
    "I1",
    "I8",
    "I32",
    "I64",
    "F32",
    "F64",
    "from_ctype",
]


class IRType:
    """Base class for IR types."""

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def bits(self) -> int:
        """Bit width of a value of this type (pointers count as 64)."""
        return 0


@dataclass(frozen=True)
class VoidType(IRType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(IRType):
    width: int

    @property
    def bits(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(IRType):
    width: int  # 32 or 64

    @property
    def bits(self) -> int:
        return self.width

    def __str__(self) -> str:
        return "float" if self.width == 32 else "double"


@dataclass(frozen=True)
class PointerType(IRType):
    pointee: IRType

    @property
    def bits(self) -> int:
        return 64

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(IRType):
    element: IRType
    dims: Tuple[int, ...]

    @property
    def bits(self) -> int:
        total = self.element.bits
        for dim in self.dims:
            total *= max(dim, 1)
        return total

    def num_elements(self) -> int:
        total = 1
        for dim in self.dims:
            total *= max(dim, 1)
        return total

    def __str__(self) -> str:
        inner = str(self.element)
        for dim in reversed(self.dims):
            inner = f"[{dim} x {inner}]"
        return inner


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)

_BASE_MAP = {
    "void": VOID,
    "char": I8,
    "short": I16,
    "int": I32,
    "long": I64,
    "float": F32,
    "double": F64,
}


def from_ctype(ctype) -> IRType:
    """Map a front-end :class:`~repro.frontend.ast_nodes.CType` to an IR type.

    Arrays map to :class:`ArrayType`; unsized leading dimensions (pointer
    parameters) keep extent 0 and are refined by kernel metadata before
    HLS analysis.
    """
    base = _BASE_MAP[ctype.base]
    if ctype.dims:
        return ArrayType(base, tuple(ctype.dims))
    return base
