"""IRBuilder: convenience layer for emitting instructions.

Keeps an insertion point (a basic block) and provides one method per
opcode family, handling result naming and type bookkeeping.  Mirrors
``llvm::IRBuilder`` in spirit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import IRError
from .function import BasicBlock, Function
from .types import ArrayType, F32, F64, FloatType, I1, I32, IntType, IRType, PointerType, VOID
from .values import Instruction, Value

__all__ = ["IRBuilder"]


class IRBuilder:
    """Instruction factory bound to a function.

    Parameters
    ----------
    function:
        The function to emit into.  Use :meth:`set_insert_point` to pick
        the active block.
    """

    def __init__(self, function: Function):
        self.function = function
        self._block: Optional[BasicBlock] = None
        self._name_counter = 0
        self._const_cache: Dict[Tuple[IRType, object], Value] = {}

    # -- insertion point ----------------------------------------------------

    def set_insert_point(self, block: BasicBlock) -> None:
        if block.parent is not self.function:
            raise IRError("insertion point belongs to another function")
        self._block = block

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("no insertion point set")
        return self._block

    def new_block(self, name: str) -> BasicBlock:
        return self.function.add_block(name)

    def _fresh_name(self, hint: str = "") -> str:
        self._name_counter += 1
        return f"{hint or 't'}{self._name_counter}"

    def _emit(
        self,
        opcode: str,
        type_: IRType,
        operands: Sequence[Value] = (),
        name_hint: str = "",
        **attrs,
    ) -> Instruction:
        name = self._fresh_name(name_hint) if type_ is not VOID else ""
        inst = Instruction(opcode, type_, operands, name=name, attrs=attrs)
        self.block.append(inst)
        return inst

    # -- constants ----------------------------------------------------------

    def const_int(self, value: int, type_: IntType = I32) -> Value:
        return self._const(type_, int(value))

    def const_float(self, value: float, type_: FloatType = F64) -> Value:
        return self._const(type_, float(value))

    def _const(self, type_: IRType, value) -> Value:
        from .values import Constant

        key = (type_, value)
        if key not in self._const_cache:
            self._const_cache[key] = Constant(type_, value)
        return self._const_cache[key]

    # -- memory ---------------------------------------------------------------

    def alloca(self, type_: IRType, name: str) -> Instruction:
        return self._emit("alloca", PointerType(type_), (), name_hint=f"{name}.addr", var=name)

    def load(self, pointer: Value, name_hint: str = "ld") -> Instruction:
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"load from non-pointer {pointer!r}")
        pointee = pointer.type.pointee
        result_type = pointee.element if isinstance(pointee, ArrayType) else pointee
        return self._emit("load", result_type, (pointer,), name_hint=name_hint)

    def store(self, value: Value, pointer: Value) -> Instruction:
        if not isinstance(pointer.type, PointerType):
            raise IRError(f"store to non-pointer {pointer!r}")
        return self._emit("store", VOID, (value, pointer))

    def gep(self, base: Value, indices: Sequence[Value], array: str = "") -> Instruction:
        """getelementptr: compute the address of an array element."""
        if not isinstance(base.type, PointerType):
            raise IRError(f"gep base must be a pointer, got {base.type}")
        pointee = base.type.pointee
        element: IRType
        if isinstance(pointee, ArrayType):
            remaining = pointee.dims[len(indices):]
            element = ArrayType(pointee.element, remaining) if remaining else pointee.element
        else:
            element = pointee
        return self._emit(
            "getelementptr",
            PointerType(element),
            [base, *indices],
            name_hint="arrayidx",
            array=array,
        )

    # -- arithmetic -------------------------------------------------------------

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _BIT_OPS = {"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
    _CMP_PREDICATES = {"<": "lt", ">": "gt", "<=": "le", ">=": "ge", "==": "eq", "!=": "ne"}

    def binary(self, op: str, lhs: Value, rhs: Value) -> Instruction:
        """Emit a typed arithmetic/bitwise op, inserting numeric casts."""
        lhs, rhs = self._unify(lhs, rhs)
        if lhs.type.is_float:
            if op in self._FLOAT_OPS:
                return self._emit(self._FLOAT_OPS[op], lhs.type, (lhs, rhs))
            raise IRError(f"operator {op!r} undefined on floats")
        if op in self._INT_OPS:
            return self._emit(self._INT_OPS[op], lhs.type, (lhs, rhs))
        if op in self._BIT_OPS:
            return self._emit(self._BIT_OPS[op], lhs.type, (lhs, rhs))
        raise IRError(f"unknown binary operator {op!r}")

    def compare(self, op: str, lhs: Value, rhs: Value, loop_label: str = "") -> Instruction:
        lhs, rhs = self._unify(lhs, rhs)
        predicate = self._CMP_PREDICATES[op]
        if lhs.type.is_float:
            return self._emit("fcmp", I1, (lhs, rhs), name_hint="cmp", predicate=f"o{predicate}")
        prefix = "s" if predicate in ("lt", "gt", "le", "ge") else ""
        attrs = {"predicate": prefix + predicate}
        if loop_label:
            attrs["loop"] = loop_label
        return self._emit("icmp", I1, (lhs, rhs), name_hint="cmp", **attrs)

    def logical(self, op: str, lhs: Value, rhs: Value) -> Instruction:
        lhs = self.to_bool(lhs)
        rhs = self.to_bool(rhs)
        opcode = "and" if op == "&&" else "or"
        return self._emit(opcode, I1, (lhs, rhs))

    def logical_not(self, value: Value) -> Instruction:
        value = self.to_bool(value)
        return self._emit("xor", I1, (value, self.const_int(1, I1)))

    def neg(self, value: Value) -> Instruction:
        if value.type.is_float:
            zero = self.const_float(0.0, value.type)
            return self._emit("fsub", value.type, (zero, value))
        zero = self.const_int(0, value.type)
        return self._emit("sub", value.type, (zero, value))

    def bit_not(self, value: Value) -> Instruction:
        return self._emit("xor", value.type, (value, self.const_int(-1, value.type)))

    def select(self, cond: Value, then: Value, otherwise: Value) -> Instruction:
        then, otherwise = self._unify(then, otherwise)
        return self._emit("select", then.type, (self.to_bool(cond), then, otherwise))

    # -- casts ---------------------------------------------------------------

    def to_bool(self, value: Value) -> Value:
        if value.type == I1:
            return value
        if value.type.is_float:
            zero = self.const_float(0.0, value.type)
            return self._emit("fcmp", I1, (value, zero), name_hint="tobool", predicate="one")
        zero = self.const_int(0, value.type)
        return self._emit("icmp", I1, (value, zero), name_hint="tobool", predicate="ne")

    def cast(self, value: Value, target: IRType) -> Value:
        """Numeric conversion from ``value.type`` to ``target``."""
        src = value.type
        if src == target:
            return value
        if src.is_int and target.is_int:
            opcode = "sext" if target.bits > src.bits else "trunc"
            if target.bits == src.bits:
                return value
            return self._emit(opcode, target, (value,), name_hint="conv")
        if src.is_int and target.is_float:
            return self._emit("sitofp", target, (value,), name_hint="conv")
        if src.is_float and target.is_int:
            return self._emit("fptosi", target, (value,), name_hint="conv")
        if src.is_float and target.is_float:
            opcode = "fpext" if target.bits > src.bits else "fptrunc"
            return self._emit(opcode, target, (value,), name_hint="conv")
        raise IRError(f"cannot cast {src} to {target}")

    def _unify(self, lhs: Value, rhs: Value) -> Tuple[Value, Value]:
        """Apply usual arithmetic conversions to a pair of operands."""
        if lhs.type == rhs.type:
            return lhs, rhs
        if lhs.type.is_float or rhs.type.is_float:
            target = F64 if F64 in (lhs.type, rhs.type) else F32
            return self.cast(lhs, target), self.cast(rhs, target)
        width = max(lhs.type.bits, rhs.type.bits, 32)
        target = IntType(width)
        return self.cast(lhs, target), self.cast(rhs, target)

    # -- control flow ------------------------------------------------------------

    def br(self, target: BasicBlock, loop_label: str = "", backedge: bool = False) -> Instruction:
        attrs = {"target": target}
        if loop_label:
            attrs["loop"] = loop_label
            attrs["backedge"] = backedge
        return self._emit("br", VOID, (), **attrs)

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._emit("condbr", VOID, (self.to_bool(cond),), if_true=if_true, if_false=if_false)

    def ret(self, value: Optional[Value] = None) -> Instruction:
        operands: List[Value] = [value] if value is not None else []
        return self._emit("ret", VOID, operands)

    def call(self, callee: str, args: Sequence[Value], return_type: IRType) -> Instruction:
        hint = "call" if return_type is not VOID else ""
        return self._emit("call", return_type, list(args), name_hint=hint, callee=callee)
