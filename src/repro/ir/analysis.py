"""Loop-nest analysis over the kernel AST.

This is the "mid-end" of the reproduction: it extracts everything the
design-space generator and the HLS simulator need to reason about a
kernel —

* the loop tree per function, with trip counts (static bounds evaluated
  through scalar bindings, dynamic bounds resolved via per-loop hints);
* an operation census per loop body (float/int adds, multiplies,
  divides, special-function calls);
* array accesses with affine index analysis (which loop indexes which
  dimension and with what stride, or *irregular* for indirect accesses
  such as ``val[col[j]]`` in SpMV);
* loop-carried dependences (reductions like ``acc += ...``), which
  determine the achievable initiation interval of a pipelined loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SemanticError
from ..frontend import ast_nodes as ast
from ..frontend.pragmas import Pragma, collect_pragmas
from ..frontend.semantic import SymbolTable, analyze, infer_expr_type

__all__ = [
    "OpCensus",
    "ArrayAccess",
    "Reduction",
    "LoopInfo",
    "ArrayInfo",
    "FunctionAnalysis",
    "KernelAnalysis",
    "analyze_kernel",
    "DEFAULT_TRIP",
]

#: Assumed trip count for loops whose bounds cannot be resolved and that
#: carry no hint.  MachSuite's irregular kernels average small rows.
DEFAULT_TRIP = 16


@dataclass
class OpCensus:
    """Counts of operations appearing once per loop-body iteration."""

    fadd: int = 0
    fmul: int = 0
    fdiv: int = 0
    iadd: int = 0
    imul: int = 0
    idiv: int = 0
    cmp: int = 0
    bitop: int = 0
    shift: int = 0
    select: int = 0
    special: int = 0  # sqrt/exp/log/... intrinsic calls
    calls: int = 0  # calls to user functions
    callees: List[str] = field(default_factory=list)

    def total(self) -> int:
        return (
            self.fadd + self.fmul + self.fdiv + self.iadd + self.imul + self.idiv
            + self.cmp + self.bitop + self.shift + self.select + self.special + self.calls
        )

    def merge(self, other: "OpCensus") -> None:
        self.fadd += other.fadd
        self.fmul += other.fmul
        self.fdiv += other.fdiv
        self.iadd += other.iadd
        self.imul += other.imul
        self.idiv += other.idiv
        self.cmp += other.cmp
        self.bitop += other.bitop
        self.shift += other.shift
        self.select += other.select
        self.special += other.special
        self.calls += other.calls
        self.callees.extend(other.callees)


@dataclass
class ArrayAccess:
    """One static array reference inside a loop body.

    Attributes
    ----------
    array:
        Array name.
    is_write:
        True for stores.
    dim_loops:
        Per subscript dimension, the affine coefficients
        ``{loop_var: stride}``, or None when the subscript is not affine
        in the induction variables (irregular/indirect access).
    dim_consts:
        Per subscript dimension, the constant term of the affine form
        (None for irregular subscripts).  Two accesses with identical
        coefficients but different constants touch *shifted* elements —
        the signature of a cross-iteration recurrence.
    """

    array: str
    is_write: bool
    dim_loops: Tuple[Optional[Dict[str, int]], ...]
    dim_consts: Tuple[Optional[int], ...] = ()

    @property
    def is_irregular(self) -> bool:
        return any(d is None for d in self.dim_loops)

    def loops_used(self) -> frozenset:
        used = set()
        for dim in self.dim_loops:
            if dim:
                used.update(k for k, v in dim.items() if v != 0)
        return frozenset(used)

    def depends_on(self, induction_var: str) -> bool:
        """True when the accessed address varies with ``induction_var``."""
        if self.is_irregular:
            return True  # conservatively assume it does
        return induction_var in self.loops_used()


@dataclass
class Reduction:
    """A loop-carried read-modify-write (e.g. ``acc += x``).

    ``target`` is the scalar/array name; ``is_float`` selects the
    floating adder latency in the dependence-II model; ``free_vars`` are
    the induction variables indexing the target (loops *not* in this set
    carry the dependence).
    """

    target: str
    is_float: bool
    free_vars: frozenset


@dataclass
class ArrayInfo:
    """Static facts about one array (parameter or local)."""

    name: str
    element_bits: int
    dims: Tuple[int, ...]
    is_param: bool
    is_float: bool

    def num_elements(self) -> int:
        total = 1
        for dim in self.dims:
            total *= max(dim, 1)
        return total

    def total_bits(self) -> int:
        return self.num_elements() * self.element_bits


@dataclass
class LoopInfo:
    """One ``for`` loop of the kernel with its analysis results."""

    label: str
    function: str
    induction_var: str
    trip_count: int
    is_static: bool
    depth: int  # 0 for outermost
    line: int
    parent: Optional[str] = None
    children: List["LoopInfo"] = field(default_factory=list)
    pragmas: List[Pragma] = field(default_factory=list)
    body_ops: OpCensus = field(default_factory=OpCensus)
    accesses: List[ArrayAccess] = field(default_factory=list)
    reductions: List[Reduction] = field(default_factory=list)

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def carried_reductions(self) -> List[Reduction]:
        """Reductions whose dependence is carried by *this* loop."""
        return [r for r in self.reductions if self.induction_var not in r.free_vars]

    def subtree(self) -> List["LoopInfo"]:
        out: List[LoopInfo] = [self]
        for child in self.children:
            out.extend(child.subtree())
        return out

    def total_iterations(self) -> int:
        """Product of trip counts from this loop down the (max) nest."""
        if not self.children:
            return self.trip_count
        return self.trip_count * max(c.total_iterations() for c in self.children)


@dataclass
class FunctionAnalysis:
    """Analysis results for one function."""

    name: str
    top_loops: List[LoopInfo] = field(default_factory=list)
    loops: Dict[str, LoopInfo] = field(default_factory=dict)
    arrays: Dict[str, ArrayInfo] = field(default_factory=dict)
    preamble_ops: OpCensus = field(default_factory=OpCensus)

    def all_loops(self) -> List[LoopInfo]:
        out: List[LoopInfo] = []
        for loop in self.top_loops:
            out.extend(loop.subtree())
        return out


@dataclass
class KernelAnalysis:
    """Whole-kernel analysis: one entry per function, plus pragma list."""

    functions: Dict[str, FunctionAnalysis] = field(default_factory=dict)
    top_function: str = ""
    pragmas: List[Pragma] = field(default_factory=list)

    @property
    def top(self) -> FunctionAnalysis:
        return self.functions[self.top_function]

    def loop(self, function: str, label: str) -> LoopInfo:
        return self.functions[function].loops[label]

    def find_pragma_loop(self, pragma: Pragma) -> LoopInfo:
        return self.loop(pragma.function, pragma.loop_label)


# -- constant folding ----------------------------------------------------------


def _try_eval(expr: ast.Expr, bindings: Dict[str, int]) -> Optional[int]:
    """Evaluate an integer expression over constant bindings, or None."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.VarRef):
        return bindings.get(expr.name)
    if isinstance(expr, ast.UnaryOp):
        value = _try_eval(expr.operand, bindings)
        if value is None:
            return None
        return {"-": -value, "~": ~value, "!": int(not value)}.get(expr.op)
    if isinstance(expr, ast.BinaryOp):
        lhs = _try_eval(expr.lhs, bindings)
        rhs = _try_eval(expr.rhs, bindings)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda: lhs + rhs,
                "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs // rhs if rhs else None,
                "%": lambda: lhs % rhs if rhs else None,
                "<<": lambda: lhs << rhs,
                ">>": lambda: lhs >> rhs,
            }[expr.op]()
        except KeyError:
            return None
    if isinstance(expr, ast.Cast):
        return _try_eval(expr.operand, bindings)
    return None


def _affine_coeffs(expr: ast.Expr, loop_vars: frozenset, bindings: Dict[str, int]):
    """Return ``({loop_var: coeff}, const)`` for an affine index, else None."""
    if isinstance(expr, ast.IntLiteral):
        return {}, expr.value
    if isinstance(expr, ast.VarRef):
        if expr.name in loop_vars:
            return {expr.name: 1}, 0
        value = bindings.get(expr.name)
        if value is not None:
            return {}, value
        # A scalar that is neither an induction variable nor a bound
        # constant (e.g. a loaded row pointer) makes the index irregular.
        return None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _affine_coeffs(expr.operand, loop_vars, bindings)
        if inner is None:
            return None
        coeffs, const = inner
        return {k: -v for k, v in coeffs.items()}, -const
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("+", "-"):
            lhs = _affine_coeffs(expr.lhs, loop_vars, bindings)
            rhs = _affine_coeffs(expr.rhs, loop_vars, bindings)
            if lhs is None or rhs is None:
                return None
            sign = 1 if expr.op == "+" else -1
            coeffs = dict(lhs[0])
            for key, val in rhs[0].items():
                coeffs[key] = coeffs.get(key, 0) + sign * val
            return coeffs, lhs[1] + sign * rhs[1]
        if expr.op == "*":
            lhs_const = _try_eval(expr.lhs, bindings)
            rhs_const = _try_eval(expr.rhs, bindings)
            if lhs_const is not None:
                rhs = _affine_coeffs(expr.rhs, loop_vars, bindings)
                if rhs is None:
                    return None
                return {k: v * lhs_const for k, v in rhs[0].items()}, rhs[1] * lhs_const
            if rhs_const is not None:
                lhs = _affine_coeffs(expr.lhs, loop_vars, bindings)
                if lhs is None:
                    return None
                return {k: v * rhs_const for k, v in lhs[0].items()}, lhs[1] * rhs_const
            return None
    if isinstance(expr, ast.Cast):
        return _affine_coeffs(expr.operand, loop_vars, bindings)
    return None  # ArrayRef / Call / anything else: irregular


# -- the analyzer ----------------------------------------------------------------


class _FunctionAnalyzer:
    def __init__(
        self,
        fn: ast.FunctionDef,
        table: SymbolTable,
        bindings: Dict[str, int],
        trip_hints: Dict[str, int],
    ):
        self._fn = fn
        self._table = table
        self._bindings = dict(bindings)
        self._trip_hints = trip_hints
        self._result = FunctionAnalysis(fn.name)
        self._loop_var_stack: List[str] = []

    def run(self) -> FunctionAnalysis:
        for name, symbol in self._table.symbols.items():
            if symbol.is_array:
                self._result.arrays[name] = ArrayInfo(
                    name=name,
                    element_bits=symbol.ctype.element_bits,
                    dims=symbol.ctype.dims,
                    is_param=symbol.is_param,
                    is_float=symbol.ctype.is_float,
                )
        self._visit_block(self._fn.body, None, self._result.preamble_ops)
        return self._result

    # The visitor threads (current LoopInfo or None, census-to-charge).

    def _visit_block(self, block: ast.Block, loop: Optional[LoopInfo], census: OpCensus) -> None:
        for stmt in block.stmts:
            self._visit_stmt(stmt, loop, census)

    def _visit_stmt(self, stmt: ast.Stmt, loop: Optional[LoopInfo], census: OpCensus) -> None:
        if isinstance(stmt, ast.ForStmt):
            self._visit_for(stmt, loop)
        elif isinstance(stmt, ast.Block):
            self._visit_block(stmt, loop, census)
        elif isinstance(stmt, ast.IfStmt):
            self._count_expr(stmt.cond, loop, census)
            self._visit_block(stmt.then, loop, census)
            if stmt.otherwise is not None:
                self._visit_block(stmt.otherwise, loop, census)
        elif isinstance(stmt, ast.WhileStmt):
            self._count_expr(stmt.cond, loop, census)
            self._visit_block(stmt.body, loop, census)
        elif isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                self._count_expr(stmt.init, loop, census)
        elif isinstance(stmt, ast.AssignStmt):
            self._visit_assign(stmt, loop, census)
        elif isinstance(stmt, ast.ExprStmt):
            self._count_expr(stmt.expr, loop, census)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._count_expr(stmt.value, loop, census)

    def _visit_for(self, stmt: ast.ForStmt, parent: Optional[LoopInfo]) -> None:
        induction = self._induction_var(stmt)
        trip, static = self._trip_count(stmt, induction)
        info = LoopInfo(
            label=stmt.label,
            function=self._fn.name,
            induction_var=induction,
            trip_count=trip,
            is_static=static,
            depth=(parent.depth + 1) if parent else 0,
            line=stmt.line,
            parent=parent.label if parent else None,
        )
        for directive in stmt.pragmas:
            from ..frontend.pragmas import parse_pragma

            pragma = parse_pragma(directive.text)
            if pragma is not None:
                pragma.loop_label = stmt.label
                pragma.function = self._fn.name
                info.pragmas.append(pragma)
        self._result.loops[stmt.label] = info
        if parent is None:
            self._result.top_loops.append(info)
        else:
            parent.children.append(info)
        self._loop_var_stack.append(induction)
        self._visit_block(stmt.body, info, info.body_ops)
        self._detect_recurrences(info)
        self._loop_var_stack.pop()

    @staticmethod
    def _first_init(stmt: ast.ForStmt):
        """The loop-init statement (first declarator of a multi-decl)."""
        init = stmt.init
        if isinstance(init, ast.Block) and init.stmts:
            return init.stmts[0]
        return init

    def _induction_var(self, stmt: ast.ForStmt) -> str:
        init = self._first_init(stmt)
        if isinstance(init, ast.DeclStmt):
            return init.name
        if isinstance(init, ast.AssignStmt) and isinstance(init.target, ast.VarRef):
            return init.target.name
        if isinstance(stmt.step, ast.AssignStmt) and isinstance(stmt.step.target, ast.VarRef):
            return stmt.step.target.name
        raise SemanticError(f"{self._fn.name}/{stmt.label}: cannot identify induction variable")

    def _trip_count(self, stmt: ast.ForStmt, induction: str) -> Tuple[int, bool]:
        hint = self._trip_hints.get(f"{self._fn.name}/{stmt.label}") or self._trip_hints.get(
            stmt.label
        )
        start = stop = step = None
        init = self._first_init(stmt)
        if isinstance(init, ast.DeclStmt) and init.init is not None:
            start = _try_eval(init.init, self._bindings)
        elif isinstance(init, ast.AssignStmt):
            start = _try_eval(init.value, self._bindings)
        inclusive = False
        if isinstance(stmt.cond, ast.BinaryOp) and isinstance(stmt.cond.lhs, ast.VarRef):
            if stmt.cond.lhs.name == induction and stmt.cond.op in ("<", "<=", ">", ">="):
                stop = _try_eval(stmt.cond.rhs, self._bindings)
                inclusive = stmt.cond.op in ("<=", ">=")
        if isinstance(stmt.step, ast.AssignStmt) and stmt.step.op in ("+", "-"):
            step = _try_eval(stmt.step.value, self._bindings)
        if start is not None and stop is not None and step:
            span = abs(stop - start) + (1 if inclusive else 0)
            trips = max((span + abs(step) - 1) // abs(step), 0)
            return trips, True
        if hint is not None:
            return int(hint), False
        return DEFAULT_TRIP, False

    def _visit_assign(self, stmt: ast.AssignStmt, loop: Optional[LoopInfo], census: OpCensus) -> None:
        self._count_expr(stmt.value, loop, census)
        self._record_access(stmt.target, loop, is_write=True)
        target_type = infer_expr_type(stmt.target, self._table)
        if stmt.op:
            self._charge_op(stmt.op, target_type.is_float, census)
            self._record_reduction(stmt.target, target_type.is_float, loop)
        elif self._reads_target(stmt.value, stmt.target):
            reads = self._collect_reads(stmt.value, stmt.target)
            self._record_reduction(stmt.target, target_type.is_float, loop, reads=reads)

    @staticmethod
    def _collect_reads(value: ast.Expr, target: ast.Expr) -> List[ast.ArrayRef]:
        """Collect RHS references to the array named by ``target``."""
        name = target.name if isinstance(target, ast.VarRef) else getattr(target, "base", None)
        reads: List[ast.ArrayRef] = []
        if name is None:
            return reads
        stack: List[ast.Expr] = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ArrayRef):
                if node.base == name:
                    reads.append(node)
                stack.extend(node.indices)
            elif isinstance(node, ast.UnaryOp):
                stack.append(node.operand)
            elif isinstance(node, ast.BinaryOp):
                stack.extend((node.lhs, node.rhs))
            elif isinstance(node, ast.TernaryOp):
                stack.extend((node.cond, node.then, node.otherwise))
            elif isinstance(node, ast.Call):
                stack.extend(node.args)
            elif isinstance(node, ast.Cast):
                stack.append(node.operand)
        return reads

    @staticmethod
    def _reads_target(value: ast.Expr, target: ast.Expr) -> bool:
        """True when ``value`` references the same variable/array as ``target``."""
        name = target.name if isinstance(target, ast.VarRef) else getattr(target, "base", None)
        if name is None:
            return False
        stack = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.VarRef) and node.name == name:
                return True
            if isinstance(node, ast.ArrayRef):
                if node.base == name:
                    return True
                stack.extend(node.indices)
            elif isinstance(node, ast.UnaryOp):
                stack.append(node.operand)
            elif isinstance(node, ast.BinaryOp):
                stack.extend((node.lhs, node.rhs))
            elif isinstance(node, ast.TernaryOp):
                stack.extend((node.cond, node.then, node.otherwise))
            elif isinstance(node, (ast.Call,)):
                stack.extend(node.args)
            elif isinstance(node, ast.Cast):
                stack.append(node.operand)
        return False

    def _record_reduction(
        self,
        target: ast.Expr,
        is_float: bool,
        loop: Optional[LoopInfo],
        reads: Optional[List[ast.ArrayRef]] = None,
    ) -> None:
        """Record a loop-carried dependence created by ``target <- f(target)``.

        ``reads`` holds the references to the target array appearing on
        the right-hand side (None for compound assignments, which always
        read the same element they write).  When a read addresses a
        *different* element than the write (e.g. nw's ``M[(i-1)*W + j]``
        feeding ``M[i*W + j]``), the dependence is a cross-iteration flow
        dependence carried by every enclosing loop (``free_vars = {}``),
        which serialises pipelining — matching real HLS behaviour on
        wavefront recurrences.
        """
        if loop is None:
            return
        if isinstance(target, ast.VarRef):
            free: frozenset = frozenset()
            name = target.name
        elif isinstance(target, ast.ArrayRef):
            name = target.base
            loop_vars = frozenset(self._loop_var_stack)
            write_affine = [
                _affine_coeffs(index, loop_vars, self._bindings) for index in target.indices
            ]
            if reads is not None and self._reads_other_element(reads, write_affine, loop_vars):
                free = frozenset()
            else:
                used = set()
                for affine in write_affine:
                    if affine is None:
                        used.update(loop_vars)  # conservative: no loop carries it
                    else:
                        used.update(k for k, v in affine[0].items() if v != 0)
                free = frozenset(used)
        else:
            return
        loop.reductions.append(Reduction(target=name, is_float=is_float, free_vars=free))

    def _detect_recurrences(self, loop: LoopInfo) -> None:
        """Detect cross-iteration array recurrences within one loop body.

        When the body both writes ``A[f(ivs)]`` and reads ``A[g(ivs)]``
        with ``f != g`` (shifted constants or different coefficients, as
        in nw's wavefront or an in-place stencil), a later iteration
        consumes an earlier iteration's store.  Such a dependence is
        carried by every enclosing loop, so we record a reduction with an
        empty free-variable set.  Statement-level RMW detection cannot
        see these because the value flows through scalar temporaries.
        """
        writes = [a for a in loop.accesses if a.is_write]
        reads = [a for a in loop.accesses if not a.is_write]
        flagged = set()
        for write in writes:
            if write.array in flagged:
                continue
            for read in reads:
                if read.array != write.array:
                    continue
                if write.is_irregular or read.is_irregular:
                    continue
                if len(read.dim_loops) != len(write.dim_loops):
                    continue
                same = read.dim_loops == write.dim_loops and read.dim_consts == write.dim_consts
                if not same:
                    array = self._result.arrays.get(write.array)
                    is_float = bool(array and array.is_float)
                    loop.reductions.append(
                        Reduction(target=write.array, is_float=is_float, free_vars=frozenset())
                    )
                    flagged.add(write.array)
                    break

    def _reads_other_element(
        self, reads: List[ast.ArrayRef], write_affine, loop_vars: frozenset
    ) -> bool:
        """True when any RHS read addresses a different element than the write."""
        for ref in reads:
            if len(ref.indices) != len(write_affine):
                return True
            for index, expected in zip(ref.indices, write_affine):
                actual = _affine_coeffs(index, loop_vars, self._bindings)
                if actual is None or expected is None:
                    if actual is not expected:
                        return True
                    continue
                if actual != expected:
                    return True
        return False

    def _record_access(self, expr: ast.Expr, loop: Optional[LoopInfo], is_write: bool) -> None:
        if loop is None or not isinstance(expr, ast.ArrayRef):
            return
        loop_vars = frozenset(self._loop_var_stack)
        dims = []
        consts = []
        for index in expr.indices:
            affine = _affine_coeffs(index, loop_vars, self._bindings)
            dims.append(affine[0] if affine is not None else None)
            consts.append(affine[1] if affine is not None else None)
        loop.accesses.append(
            ArrayAccess(
                array=expr.base,
                is_write=is_write,
                dim_loops=tuple(dims),
                dim_consts=tuple(consts),
            )
        )

    def _count_expr(self, expr: ast.Expr, loop: Optional[LoopInfo], census: OpCensus) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
            return
        if isinstance(expr, ast.VarRef):
            return
        if isinstance(expr, ast.ArrayRef):
            self._record_access(expr, loop, is_write=False)
            for index in expr.indices:
                self._count_expr(index, loop, census)
            return
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                is_float = infer_expr_type(expr.operand, self._table).is_float
                self._charge_op("-", is_float, census)
            elif expr.op in ("!", "~"):
                census.bitop += 1
            self._count_expr(expr.operand, loop, census)
            return
        if isinstance(expr, ast.BinaryOp):
            is_float = infer_expr_type(expr, self._table).is_float or (
                infer_expr_type(expr.lhs, self._table).is_float
                or infer_expr_type(expr.rhs, self._table).is_float
            )
            self._charge_op(expr.op, is_float, census)
            self._count_expr(expr.lhs, loop, census)
            self._count_expr(expr.rhs, loop, census)
            return
        if isinstance(expr, ast.TernaryOp):
            census.select += 1
            self._count_expr(expr.cond, loop, census)
            self._count_expr(expr.then, loop, census)
            self._count_expr(expr.otherwise, loop, census)
            return
        if isinstance(expr, ast.Cast):
            self._count_expr(expr.operand, loop, census)
            return
        if isinstance(expr, ast.Call):
            from ..frontend.semantic import INTRINSICS

            if expr.name in INTRINSICS:
                census.special += 1
            else:
                census.calls += 1
                census.callees.append(expr.name)
            for arg in expr.args:
                self._count_expr(arg, loop, census)
            return

    def _charge_op(self, op: str, is_float: bool, census: OpCensus) -> None:
        if op in ("+", "-"):
            if is_float:
                census.fadd += 1
            else:
                census.iadd += 1
        elif op == "*":
            if is_float:
                census.fmul += 1
            else:
                census.imul += 1
        elif op in ("/", "%"):
            if is_float:
                census.fdiv += 1
            else:
                census.idiv += 1
        elif op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||"):
            census.cmp += 1
        elif op in ("<<", ">>"):
            census.shift += 1
        else:
            census.bitop += 1


def analyze_kernel(
    unit: ast.TranslationUnit,
    bindings: Optional[Dict[str, int]] = None,
    trip_hints: Optional[Dict[str, int]] = None,
) -> KernelAnalysis:
    """Analyse every function of a kernel translation unit.

    Parameters
    ----------
    unit:
        Parsed kernel.
    bindings:
        Known integer values for scalar parameters (problem sizes),
        used to resolve loop bounds such as ``for (i = 0; i < n; ...)``.
    trip_hints:
        Assumed trip counts for data-dependent loops, keyed by
        ``"function/Llabel"`` or bare ``"Llabel"``.
    """
    tables = analyze(unit)
    result = KernelAnalysis(top_function=unit.top.name)
    for fn in unit.functions:
        analyzer = _FunctionAnalyzer(fn, tables[fn.name], bindings or {}, trip_hints or {})
        result.functions[fn.name] = analyzer.run()
    result.pragmas = collect_pragmas(unit)
    return result
