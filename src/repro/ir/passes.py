"""IR optimization passes: constant folding and dead-code elimination.

The default GNN-DSE pipeline feeds *unoptimised* IR to the graph
builder (clang -O0 style, matching ProGraML's granularity), so these
passes are opt-in utilities: they shrink graphs for experimentation
(e.g. studying the model's sensitivity to IR canonicalisation) and give
the compiler layer a realistic mid-end.

Both passes preserve the verifier's invariants and the use lists
maintained by :class:`~repro.ir.values.Value`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .function import Function, Module
from .types import I1, IntType
from .values import Constant, Instruction

__all__ = ["PassStats", "fold_constants", "eliminate_dead_code", "optimize_module"]

_INT_FOLDS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": lambda a, b: int(a / b) if b else None,
    "srem": lambda a, b: int(a - int(a / b) * b) if b else None,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b if 0 <= b < 64 else None,
    "ashr": lambda a, b: a >> b if 0 <= b < 64 else None,
    "lshr": lambda a, b: (a % (1 << 64)) >> b if 0 <= b < 64 else None,
}

_FLOAT_FOLDS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b else None,
}

_CMP_PREDICATES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sgt": lambda a, b: a > b,
    "sle": lambda a, b: a <= b,
    "sge": lambda a, b: a >= b,
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ogt": lambda a, b: a > b,
    "ole": lambda a, b: a <= b,
    "oge": lambda a, b: a >= b,
}

#: Opcodes whose results are safe to delete when unused.
_PURE_OPCODES = frozenset(
    {
        "add", "sub", "mul", "sdiv", "srem",
        "fadd", "fsub", "fmul", "fdiv",
        "and", "or", "xor", "shl", "lshr", "ashr",
        "icmp", "fcmp", "select",
        "sext", "zext", "trunc", "sitofp", "fptosi", "fpext", "fptrunc", "bitcast",
        "getelementptr",
    }
)


@dataclass
class PassStats:
    """Counts of rewrites performed by the pass pipeline."""

    folded: int = 0
    removed: int = 0

    def merge(self, other: "PassStats") -> None:
        self.folded += other.folded
        self.removed += other.removed

    @property
    def changed(self) -> bool:
        return bool(self.folded or self.removed)


def _fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Return the folded constant for ``inst`` when all operands are
    constants, else None."""
    if not inst.operands or not all(isinstance(op, Constant) for op in inst.operands):
        return None
    values = [op.value for op in inst.operands]
    opcode = inst.opcode
    if opcode in _INT_FOLDS and len(values) == 2:
        result = _INT_FOLDS[opcode](int(values[0]), int(values[1]))
        if result is None:
            return None
        if isinstance(inst.type, IntType):
            bits = inst.type.width
            result = ((result + (1 << (bits - 1))) % (1 << bits)) - (1 << (bits - 1)) if bits < 64 else result
        return Constant(inst.type, int(result))
    if opcode in _FLOAT_FOLDS and len(values) == 2:
        result = _FLOAT_FOLDS[opcode](float(values[0]), float(values[1]))
        if result is None:
            return None
        return Constant(inst.type, float(result))
    if opcode in ("icmp", "fcmp") and len(values) == 2:
        predicate = inst.attrs.get("predicate", "eq")
        fn = _CMP_PREDICATES.get(predicate)
        if fn is None:
            return None
        return Constant(I1, int(bool(fn(values[0], values[1]))))
    if opcode in ("sext", "zext", "trunc", "fptosi"):
        target = inst.type
        return Constant(target, int(values[0]))
    if opcode in ("sitofp", "fpext", "fptrunc"):
        return Constant(inst.type, float(values[0]))
    return None


def fold_constants(fn: Function) -> PassStats:
    """Fold constant expressions; returns the rewrite counts."""
    stats = PassStats()
    for block in fn.blocks:
        for inst in list(block.instructions):
            folded = _fold_instruction(inst)
            if folded is None:
                continue
            for user in list(inst.uses):
                user.replace_operand(inst, folded)
            if not inst.uses:
                block.instructions.remove(inst)
                for operand in inst.operands:
                    operand.uses = [u for u in operand.uses if u is not inst]
                stats.folded += 1
    return stats


def eliminate_dead_code(fn: Function) -> PassStats:
    """Remove pure instructions whose results are never used."""
    stats = PassStats()
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if inst.opcode not in _PURE_OPCODES:
                    continue
                if inst.uses:
                    continue
                block.instructions.remove(inst)
                for operand in inst.operands:
                    operand.uses = [u for u in operand.uses if u is not inst]
                stats.removed += 1
                changed = True
    return stats


def optimize_module(module: Module, max_iterations: int = 8) -> PassStats:
    """Run fold + DCE to a fixed point over every function."""
    total = PassStats()
    for _ in range(max_iterations):
        round_stats = PassStats()
        for fn in module.functions:
            round_stats.merge(fold_constants(fn))
            round_stats.merge(eliminate_dead_code(fn))
        total.merge(round_stats)
        if not round_stats.changed:
            break
    module.verify()
    return total
