"""Shared fork-worker supervision for DSE sharding and serving scale-out.

Both multi-process subsystems in this repo — the sharded DSE
orchestrator (:class:`~repro.dse.parallel.ParallelDSE`) and the serving
:class:`~repro.serve.pool.WorkerPool` — need the same operational core:
fork-started child processes (so loaded predictors transfer by memory
inheritance, never pickling), per-worker monotonic heartbeat tracking,
liveness/stall detection, and best-effort teardown that never hangs the
parent.  That core used to live privately inside ``ParallelDSE``; this
module is the extraction, so one battle-tested lifecycle serves both.

What stays with the callers is *policy*: ParallelDSE decides when a
lost shard is retried, the serve pool decides when a dead worker is
respawned.  What lives here is *mechanism*:

- :class:`SupervisedWorker` — one child process plus its monotonic
  ``last_heartbeat`` stamp and an opaque per-worker ``channel`` (task
  queue, control pipe, …) chosen by the caller;
- :class:`ForkSupervisor` — sequential worker ids, spawn with inherited
  arguments, stall scans, kill-with-join, and a ``shutdown`` that
  notifies, joins, and force-terminates without ever raising out of a
  ``finally`` block;
- :func:`drain_queue` — empty a multiprocessing queue so its feeder
  thread can exit.

All heartbeat/liveness math runs on ``time.monotonic()``; fork-started
children share the parent's monotonic epoch, so stamps can be
differenced across the process boundary (see PR 4's clock notes).
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_mod
import time
from typing import Callable, Dict, List, Optional

__all__ = ["ForkSupervisor", "SupervisedWorker", "drain_queue"]

logger = logging.getLogger("repro.workers")


class SupervisedWorker:
    """One fork-started child process under supervision.

    ``channel`` is whatever per-worker object the spawner attached (a
    task queue for DSE workers, a control pipe for serve workers); the
    supervisor never touches it except to hand it to ``notify`` during
    shutdown.  Subclass to add caller-side state (assigned shard,
    drain flags, …).
    """

    def __init__(self, worker_id: int, process, channel=None):
        self.worker_id = worker_id
        self.process = process
        self.channel = channel
        # Monotonic arrival time of the last sign of life; stall
        # detection differences this against ``time.monotonic()`` only,
        # so a stepped wall clock cannot fake (or hide) a stall.
        self.last_heartbeat = time.monotonic()

    def beat(self) -> None:
        """Record a sign of life (heartbeat, result, exit message…)."""
        self.last_heartbeat = time.monotonic()

    def alive(self) -> bool:
        return self.process.is_alive()

    def heartbeat_age(self) -> float:
        """Seconds since the last recorded sign of life."""
        return time.monotonic() - self.last_heartbeat

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


class ForkSupervisor:
    """Spawn and track a fleet of fork-started worker processes.

    Parameters
    ----------
    target:
        Worker entry point.  Called in the child as
        ``target(worker_id, *args)`` — the supervisor always prepends
        the sequential worker id.
    mp_context:
        Multiprocessing start method (``"fork"`` everywhere in this
        repo: inherited memory, shared monotonic epoch).
    name_prefix:
        Process names become ``f"{name_prefix}-{worker_id}"``.
    worker_class:
        Handle class instantiated per spawn; subclass
        :class:`SupervisedWorker` to carry caller-side state.
    """

    def __init__(
        self,
        target: Callable,
        mp_context: str = "fork",
        name_prefix: str = "repro-worker",
        worker_class=SupervisedWorker,
    ):
        self.target = target
        self.context = multiprocessing.get_context(mp_context)
        self.name_prefix = name_prefix
        self.worker_class = worker_class
        self.workers: Dict[int, SupervisedWorker] = {}
        self._next_id = 0

    # -- lifecycle -------------------------------------------------------------

    def spawn(self, *args, channel=None) -> SupervisedWorker:
        """Fork one worker; returns its handle (already started)."""
        worker_id = self._next_id
        self._next_id += 1
        process = self.context.Process(
            target=self.target,
            args=(worker_id, *args),
            daemon=True,
            name=f"{self.name_prefix}-{worker_id}",
        )
        process.start()
        handle = self.worker_class(worker_id, process, channel)
        self.workers[worker_id] = handle
        return handle

    def discard(self, worker_id: int) -> Optional[SupervisedWorker]:
        """Forget a worker (dead or retired); returns its handle if known."""
        return self.workers.pop(worker_id, None)

    def get(self, worker_id: int) -> Optional[SupervisedWorker]:
        return self.workers.get(worker_id)

    def __len__(self) -> int:
        return len(self.workers)

    def handles(self) -> List[SupervisedWorker]:
        """Stable snapshot of current handles (safe to mutate while iterating)."""
        return list(self.workers.values())

    # -- liveness --------------------------------------------------------------

    def stalled(self, timeout_seconds: float) -> List[SupervisedWorker]:
        """Workers alive but silent for longer than ``timeout_seconds``."""
        now = time.monotonic()
        return [
            handle
            for handle in self.workers.values()
            if handle.alive() and now - handle.last_heartbeat > timeout_seconds
        ]

    def kill(self, handle: SupervisedWorker, join_timeout: float = 5.0) -> None:
        """Terminate one worker and reap it (SIGKILL escalation)."""
        handle.process.terminate()
        handle.process.join(timeout=join_timeout)
        if handle.process.is_alive():  # pragma: no cover - stuck in D state
            try:
                handle.process.kill()
            except (OSError, AttributeError):
                pass
            handle.process.join(timeout=join_timeout)

    # -- teardown --------------------------------------------------------------

    def shutdown(
        self,
        notify: Optional[Callable[[SupervisedWorker], None]] = None,
        on_notify_error: Optional[Callable[[SupervisedWorker, BaseException], None]] = None,
        join_timeout: float = 5.0,
    ) -> None:
        """Notify, join, and force-terminate every worker; never raises.

        ``notify`` is the caller's shutdown signal (a ``None`` sentinel
        on a task queue, a ``stop`` message on a pipe).  A full queue on
        a wedged worker is expected and silently ignored — termination
        below still reaps the process; other notify failures go to
        ``on_notify_error`` (default: a warning log).
        """
        for handle in self.handles():
            if notify is None:
                continue
            try:
                notify(handle)
            except queue_mod.Full:
                # Expected when a wedged worker never drained its
                # queue; termination below still reaps the process.
                pass
            except Exception as exc:
                if on_notify_error is not None:
                    on_notify_error(handle, exc)
                else:
                    logger.warning(
                        "failed to notify worker %d of shutdown: %s",
                        handle.worker_id, exc,
                    )
        for handle in self.handles():
            handle.process.join(timeout=join_timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=join_timeout)
        self.workers.clear()


def drain_queue(queue) -> int:
    """Empty a multiprocessing queue; returns how many items were dropped.

    Draining lets the queue's feeder thread exit so ``close()`` (and the
    owning process) cannot hang on unconsumed buffered items.
    """
    dropped = 0
    try:
        while True:
            queue.get_nowait()
            dropped += 1
    except queue_mod.Empty:
        pass
    return dropped
