"""Training loop, k-fold cross-validation, and Table 2 metrics.

Matches Section 5.1: Adam with lr=0.001, 80/20 split, 3-fold
cross-validation during training (the fold with the best validation
loss supplies the final weights).  Regression models train on *valid*
designs only (the classifier screens validity first).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ModelError
from ..obs import span
from ..nn.data import Batch, DataLoader
from ..nn.loss import binary_accuracy, cross_entropy, f1_score, mse_loss, rmse
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad

__all__ = ["TrainConfig", "TrainHistory", "Trainer", "evaluate_regression", "evaluate_classification"]


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 40
    batch_size: int = 64
    lr: float = 0.001
    seed: int = 0
    folds: int = 1  # 3 reproduces the paper's 3-fold CV
    log_every: int = 0  # 0 = silent
    weight_decay: float = 0.0
    #: Multiplicative per-epoch learning-rate decay (1.0 = constant lr,
    #: the paper's setting).
    lr_decay: float = 1.0
    #: Stop after this many epochs without validation improvement
    #: (0 = disabled; requires val_data).
    early_stop_patience: int = 0


@dataclass
class TrainHistory:
    """Per-epoch training/validation losses."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1] if self.train_loss else float("nan")


class Trainer:
    """Fits one model on one dataset."""

    def __init__(self, config: Optional[TrainConfig] = None):
        self.config = config or TrainConfig()

    # -- loss -----------------------------------------------------------------

    @staticmethod
    def _batch_loss(model: Module, batch: Batch) -> Tensor:
        pred = model(batch)
        task = model.config.task
        if task == "classification":
            return cross_entropy(pred, batch.labels())
        targets = batch.targets(model.config.objectives)
        return mse_loss(pred, targets)

    def _epoch(self, model: Module, loader: DataLoader, optimizer: Optional[Adam]) -> float:
        total, count = 0.0, 0
        for batch in loader:
            if optimizer is None:
                with no_grad():
                    loss = self._batch_loss(model, batch)
            else:
                optimizer.zero_grad()
                loss = self._batch_loss(model, batch)
                loss.backward()
                optimizer.step()
            total += loss.item() * batch.num_graphs
            count += batch.num_graphs
        return total / max(count, 1)

    # -- public API --------------------------------------------------------------

    def fit(
        self,
        model: Module,
        train_data: Sequence,
        val_data: Optional[Sequence] = None,
        init_model: Optional[Module] = None,
    ) -> TrainHistory:
        """Train ``model`` in place; returns the loss history.

        ``init_model`` warm-starts the fit: its weights are copied into
        ``model`` before the optimizer is created, so ``init_model``
        itself is never mutated.  This is the fine-tuning path the
        active-learning loop uses — a live serving model stays frozen
        while its clone continues training on an augmented dataset.
        """
        if not train_data:
            raise ModelError("empty training set")
        if init_model is not None:
            model.load_state_dict(init_model.state_dict())
        cfg = self.config
        loader = DataLoader(train_data, batch_size=cfg.batch_size, shuffle=True, seed=cfg.seed)
        val_loader = (
            DataLoader(val_data, batch_size=cfg.batch_size, shuffle=False)
            if val_data
            else None
        )
        optimizer = Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        history = TrainHistory()
        # Monotonic, so ``history.seconds`` survives wall-clock steps
        # (NTP slews, suspend/resume) during multi-hour fits.
        start = time.monotonic()
        best_val = float("inf")
        stale_epochs = 0
        task = getattr(getattr(model, "config", None), "task", None)
        for epoch in range(cfg.epochs):
            with span("train.epoch", epoch=epoch, task=task) as epoch_span:
                model.train()
                train_loss = self._epoch(model, loader, optimizer)
                history.train_loss.append(train_loss)
                if val_loader is not None:
                    model.eval()
                    val_loss = self._epoch(model, val_loader, None)
                    history.val_loss.append(val_loss)
                    if val_loss < best_val - 1e-9:
                        best_val = val_loss
                        stale_epochs = 0
                    else:
                        stale_epochs += 1
                    epoch_span.set(val_loss=val_loss)
                epoch_span.set(train_loss=train_loss)
            if cfg.log_every and (epoch + 1) % cfg.log_every == 0:
                val = history.val_loss[-1] if history.val_loss else float("nan")
                print(
                    f"  epoch {epoch + 1:3d}/{cfg.epochs}: "
                    f"train {train_loss:.4f} val {val:.4f}"
                )
            if cfg.lr_decay != 1.0:
                optimizer.lr *= cfg.lr_decay
            if (
                cfg.early_stop_patience
                and val_loader is not None
                and stale_epochs >= cfg.early_stop_patience
            ):
                break
        history.seconds = time.monotonic() - start
        return history

    def fit_cv(self, model_factory, train_data: Sequence) -> Module:
        """k-fold cross-validation: train one model per fold, keep the best.

        ``model_factory(seed)`` must return a fresh model.  With
        ``folds=1`` this is a plain fit on the whole set.
        """
        cfg = self.config
        if cfg.folds <= 1:
            model = model_factory(cfg.seed)
            self.fit(model, train_data)
            return model
        rng = np.random.default_rng(cfg.seed)
        order = rng.permutation(len(train_data))
        folds = np.array_split(order, cfg.folds)
        best_model, best_val = None, float("inf")
        for fold_index, fold in enumerate(folds):
            fold_set = set(fold.tolist())
            train_split = [train_data[i] for i in order if i not in fold_set]
            val_split = [train_data[i] for i in fold]
            model = model_factory(cfg.seed + fold_index)
            history = self.fit(model, train_split, val_split)
            val = history.val_loss[-1] if history.val_loss else history.final_train_loss
            if val < best_val:
                best_model, best_val = model, val
        return best_model


def predict(model: Module, dataset: Sequence, batch_size: int = 128) -> np.ndarray:
    """Stacked raw model outputs over a dataset (no grad)."""
    model.eval()
    outputs = []
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for batch in loader:
            outputs.append(model(batch).data)
    return np.concatenate(outputs, axis=0)


def evaluate_regression(model: Module, dataset: Sequence) -> Dict[str, float]:
    """Per-objective RMSE on (normalised) targets, as in Table 2."""
    objectives = list(model.config.objectives)
    preds = predict(model, dataset)
    targets = np.array(
        [[g.y[name] for name in objectives] for g in dataset], dtype=np.float64
    )
    out = {
        name: rmse(preds[:, j], targets[:, j]) for j, name in enumerate(objectives)
    }
    return out


def evaluate_classification(model: Module, dataset: Sequence) -> Dict[str, float]:
    """Accuracy and F1 of the validity classifier (Table 2)."""
    preds = predict(model, dataset)
    labels = np.array([g.label for g in dataset], dtype=np.int64)
    return {
        "accuracy": binary_accuracy(preds, labels),
        "f1": f1_score(preds, labels),
    }
