"""Predictive models: the GNN-DSE encoder + heads, and the MLP baselines.

Architecture (Fig. 4): stacked graph-conv layers with ELU activations →
Jumping Knowledge aggregation → graph-level readout → one MLP prediction
head per objective (multi-task) or one classification head.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ModelError
from ..nn.conv import GATConv, GCNConv, TransformerConv
from ..nn.data import Batch
from ..nn.jkn import JumpingKnowledge
from ..nn.module import MLP, Linear, Module
from ..nn.pooling import NodeAttentionPool, SumPool
from ..nn.tensor import Tensor, concat
from .config import ModelConfig
from .dataset import MAX_KNOBS

__all__ = ["GNNDSEModel", "PragmaMLPModel", "ContextMLPModel", "build_model"]


def _head_dims(hidden: int, mlp_layers: int, out: int) -> List[int]:
    """Prediction-head widths: ``mlp_layers`` Linear layers tapering to out."""
    dims = [hidden]
    width = hidden
    for _ in range(mlp_layers - 1):
        width = max(width // 2, 8)
        dims.append(width)
    dims.append(out)
    return dims


class _Heads(Module):
    """One MLP per regression objective, or one 2-way classifier."""

    def __init__(self, config: ModelConfig, in_dim: int, rng):
        super().__init__()
        self.task = config.task
        self.objectives = config.objectives
        if config.task == "classification":
            self.classifier = MLP(_head_dims(in_dim, config.mlp_layers, 2), rng=rng)
        else:
            heads = [
                MLP(_head_dims(in_dim, config.mlp_layers, 1), rng=rng)
                for _ in config.objectives
            ]
            self.heads = self.register_modules("heads", heads)

    def forward(self, embedding: Tensor) -> Tensor:
        if self.task == "classification":
            return self.classifier(embedding)
        return concat([head(embedding) for head in self.heads], axis=1)


class GNNDSEModel(Module):
    """The paper's predictive model (M3–M7 depending on config)."""

    def __init__(
        self,
        config: ModelConfig,
        node_dim: int,
        edge_dim: int,
        seed: int = 0,
    ):
        super().__init__()
        if config.kind != "gnn":
            raise ModelError(f"GNNDSEModel requires a gnn config, got {config.kind!r}")
        rng = np.random.default_rng(seed)
        self.config = config
        convs: List[Module] = []
        in_dim = node_dim
        for _ in range(config.num_layers):
            convs.append(self._make_conv(config, in_dim, edge_dim, rng))
            in_dim = config.hidden
        self.convs = self.register_modules("convs", convs)
        self.jkn = JumpingKnowledge(config.jkn_mode) if config.use_jkn else None
        if config.pooling == "attention":
            self.pool = NodeAttentionPool(config.hidden, rng=rng)
        elif config.pooling == "sum":
            self.pool = SumPool()
        else:
            raise ModelError(f"unknown pooling {config.pooling!r}")
        self.heads = _Heads(config, config.hidden, rng)

    @staticmethod
    def _make_conv(config: ModelConfig, in_dim: int, edge_dim: int, rng) -> Module:
        if config.conv == "gcn":
            return GCNConv(in_dim, config.hidden, rng=rng)
        if config.conv == "gat":
            return GATConv(in_dim, config.hidden, heads=config.heads, rng=rng)
        if config.conv == "transformer":
            return TransformerConv(
                in_dim,
                config.hidden,
                heads=config.heads,
                edge_dim=edge_dim if config.use_edge_attr else None,
                rng=rng,
            )
        raise ModelError(f"unknown conv {config.conv!r}")

    # -- forward pieces -----------------------------------------------------------

    def node_embeddings(self, batch: Batch) -> Tensor:
        """Final per-node embeddings (after JKN when enabled)."""
        # A Batch carrying a Tensor (e.g. a LazyTensor from the fused
        # engine) passes through so the whole forward stays lazy.
        x = batch.x if isinstance(batch.x, Tensor) else Tensor(batch.x)
        layer_outputs: List[Tensor] = []
        for conv in self.convs:
            x = conv(x, batch).elu()
            layer_outputs.append(x)
        if self.jkn is not None:
            return self.jkn(layer_outputs)
        return layer_outputs[-1]

    def embed(self, batch: Batch) -> Tensor:
        """Graph-level embeddings (G, hidden)."""
        return self.pool(self.node_embeddings(batch), batch)

    def forward(self, batch: Batch) -> Tensor:
        return self.heads(self.embed(batch))

    def attention_scores(self, batch: Batch) -> np.ndarray:
        """Per-node readout attention (Fig. 5); uniform for sum pooling."""
        nodes = self.node_embeddings(batch)
        return self.pool.attention_scores(nodes, batch)


class PragmaMLPModel(Module):
    """M1: MLP over pragma settings only (re-implementation of [7])."""

    def __init__(self, config: ModelConfig, seed: int = 0, hidden: Optional[int] = None):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        hidden = hidden or config.hidden
        self.backbone = MLP([2 * MAX_KNOBS, hidden, hidden], activation="elu", rng=rng)
        self.heads = _Heads(config, hidden, rng)

    def embed(self, batch: Batch) -> Tensor:
        return self.backbone(Tensor(batch.extra_matrix("pragma_vec"))).elu()

    def forward(self, batch: Batch) -> Tensor:
        return self.heads(self.embed(batch))


class ContextMLPModel(Module):
    """M2: MLP over pragma settings + summed initial node embeddings.

    Captures *what* the program contains (bag of node features) but not
    *how* it is wired — no message passing.
    """

    def __init__(self, config: ModelConfig, node_dim: int, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        hidden = config.hidden
        self.node_mlp = MLP([node_dim, hidden, hidden], activation="elu", rng=rng)
        self.pragma_mlp = MLP([2 * MAX_KNOBS, hidden], activation="elu", rng=rng)
        self.merge = Linear(2 * hidden, hidden, rng=rng)
        self.heads = _Heads(config, hidden, rng)

    def embed(self, batch: Batch) -> Tensor:
        x = batch.x if isinstance(batch.x, Tensor) else Tensor(batch.x)
        nodes = self.node_mlp(x).elu()
        context = nodes.segment_sum(batch.node_segments)
        pragmas = self.pragma_mlp(Tensor(batch.extra_matrix("pragma_vec"))).elu()
        return self.merge(concat([context, pragmas], axis=1)).elu()

    def forward(self, batch: Batch) -> Tensor:
        return self.heads(self.embed(batch))


def build_model(
    config: ModelConfig, node_dim: int, edge_dim: int, seed: int = 0
) -> Module:
    """Instantiate the model family named by ``config.kind``."""
    if config.kind == "gnn":
        return GNNDSEModel(config, node_dim, edge_dim, seed=seed)
    if config.kind == "mlp-pragma":
        return PragmaMLPModel(config, seed=seed)
    if config.kind == "mlp-context":
        return ContextMLPModel(config, node_dim, seed=seed)
    raise ModelError(f"unknown model kind {config.kind!r}")
