"""The trained GNN-DSE predictor: HLS-tool surrogate used by the DSE.

Bundles the three trained networks of Section 4.3.2 — the validity
classifier, the main regression model (latency/DSP/LUT/FF), and the
separate BRAM regressor — behind one ``predict`` call that returns
denormalised objectives in milliseconds.
"""

from __future__ import annotations

import numpy as np

from typing import Dict, List, Optional, Sequence, Tuple

from ..designspace.space import DesignPoint
from ..errors import ModelError
from ..explorer.database import Database
from ..graph import EncodedGraph
from ..nn.data import Batch, GraphData
from ..nn.tensor import no_grad
from .config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES, ModelConfig
from .dataset import GraphDatasetBuilder, pragma_vector, train_test_split
from .models import build_model
from .normalizer import TargetNormalizer
from .trainer import TrainConfig, Trainer, evaluate_classification, evaluate_regression

__all__ = ["Prediction", "GNNDSEPredictor", "train_predictor"]


class Prediction:
    """One design point's predicted quality."""

    __slots__ = ("valid", "valid_prob", "objectives")

    def __init__(self, valid: bool, valid_prob: float, objectives: Dict[str, float]):
        self.valid = valid
        self.valid_prob = valid_prob
        self.objectives = objectives

    @property
    def latency(self) -> float:
        return self.objectives["latency"]

    def fits(self, threshold: float = 0.8) -> bool:
        return all(
            self.objectives[name] < threshold for name in ("DSP", "BRAM", "LUT", "FF")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Prediction(valid={self.valid} p={self.valid_prob:.2f} "
            f"latency={self.objectives.get('latency', float('nan')):.0f})"
        )


class GNNDSEPredictor:
    """Classifier + regressors + normalizer, over shared encoded graphs."""

    def __init__(
        self,
        classifier,
        regressor,
        bram_regressor,
        normalizer: TargetNormalizer,
        builder: GraphDatasetBuilder,
    ):
        self.classifier = classifier
        self.regressor = regressor
        self.bram_regressor = bram_regressor
        self.normalizer = normalizer
        self.builder = builder

    # -- sample construction -------------------------------------------------------

    def _sample(self, kernel: str, point: DesignPoint) -> GraphData:
        enc: EncodedGraph = self.builder.encoded_graph(kernel)
        return GraphData(
            x=enc.fill(point),
            edge_index=enc.edge_index,
            edge_attr=enc.edge_attr,
            kernel=kernel,
            extras={"pragma_vec": pragma_vector(point, list(enc.pragma_rows))},
        )

    # -- inference ---------------------------------------------------------------

    def predict_batch(
        self, kernel: str, points: Sequence[DesignPoint], valid_threshold: float = 0.5
    ) -> List[Prediction]:
        """Predict validity and objectives for many points at once."""
        if not points:
            return []
        samples = [self._sample(kernel, p) for p in points]
        batch = Batch.from_graphs(samples)
        self.classifier.eval()
        self.regressor.eval()
        self.bram_regressor.eval()
        with no_grad():
            logits = self.classifier(batch).data
            reg = self.regressor(batch).data
            bram = self.bram_regressor(batch).data
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp[:, 1] / exp.sum(axis=1)
        out: List[Prediction] = []
        for i in range(len(points)):
            objectives = {
                name: float(reg[i, j]) for j, name in enumerate(REGRESSION_OBJECTIVES)
            }
            objectives["BRAM"] = float(bram[i, 0])
            objectives = self.normalizer.inverse(objectives)
            out.append(
                Prediction(
                    valid=bool(probs[i] >= valid_threshold),
                    valid_prob=float(probs[i]),
                    objectives=objectives,
                )
            )
        return out

    def predict(self, kernel: str, point: DesignPoint) -> Prediction:
        """Predict one design point (see :meth:`predict_batch`)."""
        return self.predict_batch(kernel, [point])[0]


def train_predictor(
    database: Database,
    config_name: str = "M7",
    train_config: Optional[TrainConfig] = None,
    test_fraction: float = 0.2,
    seed: int = 0,
    return_metrics: bool = False,
):
    """Train the full GNN-DSE predictor stack on a design database.

    Trains three networks with the configuration ``config_name`` (M1–M7):
    classification on all records, regression on valid records for
    (latency, DSP, LUT, FF), and a separate BRAM regressor (Section
    5.2.1).  Returns the :class:`GNNDSEPredictor`; with
    ``return_metrics=True`` also returns the Table 2-style test metrics.
    """
    if config_name not in MODEL_CONFIGS:
        raise ModelError(f"unknown model config {config_name!r}")
    base_config: ModelConfig = MODEL_CONFIGS[config_name]
    train_config = train_config or TrainConfig()
    builder = GraphDatasetBuilder(database)
    node_dim = 0
    edge_dim = 0
    all_samples = builder.build()
    if all_samples:
        node_dim = all_samples[0].x.shape[1]
        edge_dim = all_samples[0].edge_attr.shape[1]
    train_all, test_all = train_test_split(all_samples, test_fraction, seed)
    train_valid = [s for s in train_all if s.label == 1]
    test_valid = [s for s in test_all if s.label == 1]

    trainer = Trainer(train_config)

    def make(config):
        def factory(fold_seed):
            return build_model(config, node_dim, edge_dim, seed=fold_seed)

        return factory

    cls_config = base_config.for_task("classification")
    reg_config = base_config.for_task("regression", REGRESSION_OBJECTIVES)
    bram_config = base_config.for_task("regression", BRAM_OBJECTIVE)

    classifier = trainer.fit_cv(make(cls_config), train_all)
    regressor = trainer.fit_cv(make(reg_config), train_valid)
    bram = trainer.fit_cv(make(bram_config), train_valid)

    predictor = GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)
    if not return_metrics:
        return predictor
    metrics: Dict[str, float] = {}
    metrics.update(evaluate_regression(regressor, test_valid))
    metrics.update(evaluate_regression(bram, test_valid))
    metrics["all"] = sum(metrics[k] for k in ("latency", "DSP", "LUT", "FF", "BRAM"))
    metrics.update(evaluate_classification(classifier, test_all))
    return predictor, metrics
