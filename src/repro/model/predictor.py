"""The trained GNN-DSE predictor: HLS-tool surrogate used by the DSE.

Bundles the three trained networks of Section 4.3.2 — the validity
classifier, the main regression model (latency/DSP/LUT/FF), and the
separate BRAM regressor — behind one ``predict`` call that returns
denormalised objectives in milliseconds.
"""

from __future__ import annotations

import numpy as np

from typing import Dict, List, Optional, Sequence

from ..designspace.space import DesignPoint
from ..errors import ModelError
from ..explorer.database import Database
from ..graph import EncodedGraph
from ..nn.data import Batch, GraphData
from ..nn.tensor import no_grad
from .config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES, ModelConfig
from .dataset import GraphDatasetBuilder, pragma_vector, train_test_split
from .models import build_model
from .normalizer import TargetNormalizer
from .trainer import TrainConfig, Trainer, evaluate_classification, evaluate_regression

__all__ = [
    "DEFAULT_VALID_THRESHOLD",
    "Prediction",
    "GNNDSEPredictor",
    "predictions_from_outputs",
    "scale_objectives_for_device",
    "train_predictor",
]

#: Classification cut-off for calling a design point valid.  The
#: tie-break at the threshold is inclusive: ``valid_prob >=
#: DEFAULT_VALID_THRESHOLD`` means valid, so a point sitting exactly at
#: the boundary is treated as synthesizable.
DEFAULT_VALID_THRESHOLD = 0.5


def _canon(value) -> float:
    """Canonicalize a predicted scalar to float32 precision.

    Every evaluation path (point-by-point, reference batched, compiled
    batched) rounds through float32 before building a
    :class:`Prediction`, so results compare bit-identical across
    engines regardless of the accumulation dtype they ran with.
    """
    return float(np.float32(value))


class Prediction:
    """One design point's predicted quality.

    ``objectives`` is ``None`` when only the validity classifier ran
    (the DSE cascade skips regression for predicted-invalid points); in
    that case :attr:`latency` is ``inf`` and :meth:`fits` is ``False``,
    consistent with how the search ranks such points.
    """

    __slots__ = ("valid", "valid_prob", "objectives")

    def __init__(
        self, valid: bool, valid_prob: float, objectives: Optional[Dict[str, float]]
    ):
        self.valid = valid
        self.valid_prob = valid_prob
        self.objectives = objectives

    @property
    def latency(self) -> float:
        if self.objectives is None:
            return float("inf")
        return self.objectives["latency"]

    def fits(self, threshold: float = 0.8, axes=None) -> bool:
        """True when every non-latency objective (the device's resource
        utilizations, whatever its axes) is below ``threshold``.

        ``axes`` restricts the check to a device's declared fit axes
        (e.g. a CGRA budgets instruction memory but not PE occupancy);
        ``None`` checks every non-latency objective.
        """
        if self.objectives is None:
            return False
        return all(
            value < threshold
            for name, value in self.objectives.items()
            if name != "latency" and (axes is None or name in axes)
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Prediction):
            return NotImplemented
        return (
            self.valid == other.valid
            and self.valid_prob == other.valid_prob
            and self.objectives == other.objectives
        )

    def __hash__(self) -> int:
        objectives = (
            None if self.objectives is None else tuple(sorted(self.objectives.items()))
        )
        return hash((self.valid, self.valid_prob, objectives))

    def __repr__(self) -> str:
        # The printed probability must never contradict the flag: when
        # rounding to four decimals would carry the probability across
        # the default threshold (e.g. 0.49996 -> "0.5000" with
        # valid=False), fall back to the full-precision repr.
        prob = f"{self.valid_prob:.4f}"
        if (float(prob) >= DEFAULT_VALID_THRESHOLD) != (
            self.valid_prob >= DEFAULT_VALID_THRESHOLD
        ):
            prob = repr(self.valid_prob)
        latency = self.latency
        return f"Prediction(valid={self.valid} p={prob} latency={latency:.0f})"


def predictions_from_outputs(
    logits: np.ndarray,
    reg: Optional[np.ndarray],
    bram: Optional[np.ndarray],
    normalizer: TargetNormalizer,
    valid_threshold: float = DEFAULT_VALID_THRESHOLD,
    objectives_mask: Optional[Sequence[bool]] = None,
) -> List[Prediction]:
    """Materialize :class:`Prediction` objects from raw model outputs.

    Shared by the reference predictor and the compiled pipeline engine
    so both paths produce bit-identical results.  ``objectives_mask``
    marks rows whose regression outputs are present; masked-out rows
    (or all rows, when ``reg`` is ``None``) get ``objectives=None``.
    """
    exp = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs = exp[:, 1] / exp.sum(axis=1)
    out: List[Prediction] = []
    for i in range(logits.shape[0]):
        have_objectives = reg is not None and (
            objectives_mask is None or objectives_mask[i]
        )
        objectives: Optional[Dict[str, float]] = None
        if have_objectives:
            objectives = {
                name: float(reg[i, j]) for j, name in enumerate(REGRESSION_OBJECTIVES)
            }
            objectives["BRAM"] = float(bram[i, 0])
            objectives = normalizer.inverse(objectives)
            objectives = {name: _canon(value) for name, value in objectives.items()}
        out.append(
            Prediction(
                valid=bool(probs[i] >= valid_threshold),
                valid_prob=_canon(probs[i]),
                objectives=objectives,
            )
        )
    return out


def scale_objectives_for_device(predictions: List[Prediction], device) -> List[Prediction]:
    """Rescale reference-device utilization predictions onto ``device``.

    The regression heads are trained against the reference FPGA's
    capacities, so a predicted utilization ``u_ref`` corresponds to an
    absolute usage of ``u_ref * cap_ref``; on a different FPGA pool the
    same design occupies ``u_ref * cap_ref / cap_dev`` of each axis.
    Latency passes through unchanged.  ``None`` / the reference device /
    non-FPGA targets return the input list unmodified, keeping the
    default path bit-identical.
    """
    if device is None or getattr(device, "kind", "fpga") != "fpga":
        return predictions
    from ..hls.device import DEFAULT_DEVICE

    ref = DEFAULT_DEVICE.capacities()
    caps = device.capacities()
    ratios = {axis: ref[axis] / caps[axis] for axis in caps if axis in ref}
    if all(ratio == 1.0 for ratio in ratios.values()):
        return predictions
    out: List[Prediction] = []
    for p in predictions:
        if p.objectives is None:
            out.append(p)
            continue
        objectives = {
            name: _canon(value * ratios[name]) if name in ratios else value
            for name, value in p.objectives.items()
        }
        out.append(Prediction(p.valid, p.valid_prob, objectives))
    return out


class GNNDSEPredictor:
    """Classifier + regressors + normalizer, over shared encoded graphs.

    ``device`` optionally binds the predictor to a registered device:
    samples are encoded with that device's conditioning features and
    predicted utilizations are rescaled to its capacities
    (:func:`scale_objectives_for_device`).  Unbound (``device=None``)
    predictors target the reference device and behave exactly as
    before.
    """

    def __init__(
        self,
        classifier,
        regressor,
        bram_regressor,
        normalizer: TargetNormalizer,
        builder: GraphDatasetBuilder,
        device=None,
    ):
        self.classifier = classifier
        self.regressor = regressor
        self.bram_regressor = bram_regressor
        self.normalizer = normalizer
        self.builder = builder
        self.device = device

    def for_device(self, device) -> "GNNDSEPredictor":
        """A shallow copy bound to ``device``, sharing models/builder."""
        return GNNDSEPredictor(
            self.classifier,
            self.regressor,
            self.bram_regressor,
            self.normalizer,
            self.builder,
            device=device,
        )

    # -- sample construction -------------------------------------------------------

    def _sample(self, kernel: str, point: DesignPoint) -> GraphData:
        enc: EncodedGraph = self.builder.encoded_graph(kernel, device=self.device)
        return GraphData(
            x=enc.fill(point),
            edge_index=enc.edge_index,
            edge_attr=enc.edge_attr,
            kernel=kernel,
            extras={"pragma_vec": pragma_vector(point, list(enc.pragma_rows))},
        )

    # -- inference ---------------------------------------------------------------

    def predict_batch(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        engine: str = "eager",
    ) -> List[Prediction]:
        """Predict validity and objectives for many points at once.

        ``engine="eager"`` (default) is the bit-exact reference path.
        ``engine="fused"`` records the same three forwards on the lazy
        fused engine (:mod:`repro.nn.lazy`) — tolerance-level agreement
        (see :data:`repro.nn.lazy.equiv.TOLERANCES`), fewer
        allocations, stacked projection GEMMs.
        """
        if engine not in ("eager", "fused"):
            raise ValueError(f"unknown predictor engine {engine!r}")
        if not points:
            return []
        samples = [self._sample(kernel, p) for p in points]
        batch = Batch.from_graphs(samples)
        if engine == "fused":
            from ..nn.lazy import LazyTensor

            batch.x = LazyTensor(batch.x)
        self.classifier.eval()
        self.regressor.eval()
        self.bram_regressor.eval()
        with no_grad():
            logits = self.classifier(batch).data
            reg = self.regressor(batch).data
            bram = self.bram_regressor(batch).data
        return scale_objectives_for_device(
            predictions_from_outputs(logits, reg, bram, self.normalizer, valid_threshold),
            self.device,
        )

    def predict(
        self, kernel: str, point: DesignPoint, engine: str = "eager"
    ) -> Prediction:
        """Predict one design point (see :meth:`predict_batch`)."""
        return self.predict_batch(kernel, [point], engine=engine)[0]

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> Dict[str, object]:
        """Write this stack as a versioned artifact directory (see
        :mod:`repro.serve.registry`); returns the manifest."""
        from ..serve.registry import save_artifact

        return save_artifact(self, path)

    @staticmethod
    def load(path, database: Optional[Database] = None) -> "GNNDSEPredictor":
        """Load a stack saved by :meth:`save`.  Loaded predictors are
        bit-identical to the saved ones (weights keep their saved dtype);
        manifest schema/vocabulary mismatches raise
        :class:`~repro.errors.ArtifactError`."""
        from ..serve.registry import load_artifact

        return load_artifact(path, database=database)


def train_predictor(
    database: Database,
    config_name: str = "M7",
    train_config: Optional[TrainConfig] = None,
    test_fraction: float = 0.2,
    seed: int = 0,
    return_metrics: bool = False,
):
    """Train the full GNN-DSE predictor stack on a design database.

    Trains three networks with the configuration ``config_name`` (M1–M7):
    classification on all records, regression on valid records for
    (latency, DSP, LUT, FF), and a separate BRAM regressor (Section
    5.2.1).  Returns the :class:`GNNDSEPredictor`; with
    ``return_metrics=True`` also returns the Table 2-style test metrics.
    """
    if config_name not in MODEL_CONFIGS:
        raise ModelError(f"unknown model config {config_name!r}")
    base_config: ModelConfig = MODEL_CONFIGS[config_name]
    train_config = train_config or TrainConfig()
    builder = GraphDatasetBuilder(database)
    node_dim = 0
    edge_dim = 0
    all_samples = builder.build()
    if all_samples:
        node_dim = all_samples[0].x.shape[1]
        edge_dim = all_samples[0].edge_attr.shape[1]
    train_all, test_all = train_test_split(all_samples, test_fraction, seed)
    train_valid = [s for s in train_all if s.label == 1]
    test_valid = [s for s in test_all if s.label == 1]

    trainer = Trainer(train_config)

    def make(config):
        def factory(fold_seed):
            return build_model(config, node_dim, edge_dim, seed=fold_seed)

        return factory

    cls_config = base_config.for_task("classification")
    reg_config = base_config.for_task("regression", REGRESSION_OBJECTIVES)
    bram_config = base_config.for_task("regression", BRAM_OBJECTIVE)

    classifier = trainer.fit_cv(make(cls_config), train_all)
    regressor = trainer.fit_cv(make(reg_config), train_valid)
    bram = trainer.fit_cv(make(bram_config), train_valid)

    predictor = GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)
    if not return_metrics:
        return predictor
    metrics: Dict[str, float] = {}
    metrics.update(evaluate_regression(regressor, test_valid))
    metrics.update(evaluate_regression(bram, test_valid))
    metrics["all"] = sum(metrics[k] for k in ("latency", "DSP", "LUT", "FF", "BRAM"))
    metrics.update(evaluate_classification(classifier, test_all))
    return predictor, metrics
