"""Model configurations M1–M7 (Table 2 of the paper).

=====  =========================================================
M1     MLP on pragma settings only (Kwon et al. [7] re-impl.)
M2     MLP on pragma settings + summed initial node embeddings
M3     GNN-DSE with GCN layers, sum pooling
M4     GNN-DSE with GAT layers, sum pooling
M5     GNN-DSE with TransformerConv layers, sum pooling
M6     M5 + Jumping Knowledge Network
M7     M6 + node-attention graph readout  (the full GNN-DSE model)
=====  =========================================================

Architecture hyper-parameters follow Section 5.1: 6 GNN layers with 64
features, followed by 4 MLP prediction layers per objective; separate
models for classification and regression; BRAM regressed by its own
model because it correlates weakly with the other objectives.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import ModelError

__all__ = [
    "ModelConfig",
    "MODEL_CONFIGS",
    "REGRESSION_OBJECTIVES",
    "BRAM_OBJECTIVE",
    "ALL_OBJECTIVES",
]

#: Objectives predicted by the main regression model.
REGRESSION_OBJECTIVES: Tuple[str, ...] = ("latency", "DSP", "LUT", "FF")

#: The weakly-correlated objective given its own model (Section 5.2.1).
BRAM_OBJECTIVE: Tuple[str, ...] = ("BRAM",)

ALL_OBJECTIVES: Tuple[str, ...] = ("latency", "DSP", "LUT", "FF", "BRAM")


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of one predictive model variant."""

    name: str
    kind: str  # "mlp-pragma" | "mlp-context" | "gnn"
    conv: str = "transformer"  # "gcn" | "gat" | "transformer"
    use_jkn: bool = False
    jkn_mode: str = "max"
    pooling: str = "sum"  # "sum" | "attention"
    num_layers: int = 6
    hidden: int = 64
    heads: int = 4
    mlp_layers: int = 4
    use_edge_attr: bool = True
    task: str = "regression"  # "regression" | "classification"
    objectives: Tuple[str, ...] = REGRESSION_OBJECTIVES

    def for_task(self, task: str, objectives: Tuple[str, ...] = None) -> "ModelConfig":
        """Clone this config for another task / objective set."""
        if task not in ("regression", "classification"):
            raise ModelError(f"unknown task {task!r}")
        return replace(
            self, task=task, objectives=tuple(objectives or self.objectives)
        )


MODEL_CONFIGS: Dict[str, ModelConfig] = {
    "M1": ModelConfig(name="M1", kind="mlp-pragma"),
    "M2": ModelConfig(name="M2", kind="mlp-context"),
    "M3": ModelConfig(name="M3", kind="gnn", conv="gcn", use_jkn=False, pooling="sum"),
    "M4": ModelConfig(name="M4", kind="gnn", conv="gat", use_jkn=False, pooling="sum"),
    "M5": ModelConfig(
        name="M5", kind="gnn", conv="transformer", use_jkn=False, pooling="sum"
    ),
    "M6": ModelConfig(
        name="M6", kind="gnn", conv="transformer", use_jkn=True, pooling="sum"
    ),
    "M7": ModelConfig(
        name="M7", kind="gnn", conv="transformer", use_jkn=True, pooling="attention"
    ),
}
