"""Knob-level saliency of the trained predictor.

Complements the Fig. 5 node-attention view with an *intervention-based*
importance measure: for a given design point, neutralise one knob at a
time (pipeline → off, factor → 1) and record how much the predicted
latency moves.  Because the HLS simulator can compute the same
intervention exactly (see :func:`repro.hls.sweep.sweep_kernel`), the
two can be compared — a well-trained surrogate should rank knob
importance similarly to the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..designspace.space import DesignPoint, DesignSpace
from ..frontend.pragmas import PipelineOption, PragmaKind
from .predictor import GNNDSEPredictor

__all__ = ["KnobImportance", "ImportanceReport", "knob_importance"]


@dataclass
class KnobImportance:
    """Predicted effect of neutralising one knob at one design point."""

    knob: str
    kind: str
    loop: str
    base_latency: float
    ablated_latency: float

    @property
    def delta(self) -> float:
        """Relative latency change when the knob is removed (>0 = the
        knob was helping)."""
        if self.base_latency <= 0:
            return 0.0
        return (self.ablated_latency - self.base_latency) / self.base_latency


@dataclass
class ImportanceReport:
    kernel: str
    point: DesignPoint
    knobs: List[KnobImportance] = field(default_factory=list)

    def ranked(self) -> List[KnobImportance]:
        return sorted(self.knobs, key=lambda k: abs(k.delta), reverse=True)

    def pretty(self) -> str:
        lines = [f"predicted knob importance for {self.kernel}"]
        lines.append(f"{'knob':16s} {'loop':6s} {'Δ latency':>10s}")
        for knob in self.ranked():
            lines.append(f"{knob.knob:16s} {knob.loop:6s} {knob.delta:+10.1%}")
        return "\n".join(lines)


def knob_importance(
    predictor: GNNDSEPredictor,
    kernel: str,
    space: DesignSpace,
    point: Optional[DesignPoint] = None,
) -> ImportanceReport:
    """Measure each knob's predicted contribution at ``point``.

    ``point`` defaults to the most aggressive canonical corner of the
    space (every knob at its last candidate), where contributions are
    largest.
    """
    if point is None:
        point = {k.name: k.candidates[-1] for k in space.knobs}
        if space.rules is not None:
            point = space.rules.canonicalize(point)

    ablations: List[DesignPoint] = [dict(point)]
    for knob in space.knobs:
        ablated = dict(point)
        ablated[knob.name] = (
            PipelineOption.OFF if knob.kind is PragmaKind.PIPELINE else 1
        )
        if space.rules is not None:
            ablated = space.rules.canonicalize(ablated)
        ablations.append(ablated)

    predictions = predictor.predict_batch(kernel, ablations)
    base = predictions[0].latency
    report = ImportanceReport(kernel=kernel, point=dict(point))
    for knob, prediction in zip(space.knobs, predictions[1:]):
        report.knobs.append(
            KnobImportance(
                knob=knob.name,
                kind=knob.kind.keyword,
                loop=knob.loop_label,
                base_latency=base,
                ablated_latency=prediction.latency,
            )
        )
    return report
