"""Predictor calibration analysis.

A surrogate that screens thousands of designs needs *trustworthy*
confidence: the DSE throws away anything the classifier calls invalid
and ranks the rest by predicted latency.  This module quantifies both:

* classifier reliability — bin validity probabilities and compare each
  bin's mean predicted probability with its empirical valid rate
  (expected calibration error, ECE);
* regression error profile — per-kernel latency-prediction error
  quantiles and rank correlation (what the DSE's top-M ordering
  actually depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..nn.data import DataLoader
from ..nn.tensor import no_grad

__all__ = [
    "ClassifierCalibration",
    "RegressionProfile",
    "calibrate_classifier",
    "profile_regression",
    "spearman",
]


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (ties broken by position)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2:
        return 0.0
    ra = np.argsort(np.argsort(a)).astype(np.float64)
    rb = np.argsort(np.argsort(b)).astype(np.float64)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    return float((ra * rb).sum() / denom) if denom else 0.0


@dataclass
class ClassifierCalibration:
    """Reliability summary of the validity classifier."""

    bin_edges: np.ndarray
    bin_confidence: np.ndarray  # mean predicted P(valid) per bin
    bin_accuracy: np.ndarray  # empirical valid rate per bin
    bin_counts: np.ndarray
    ece: float  # expected calibration error

    def pretty(self) -> str:
        lines = [f"classifier calibration (ECE = {self.ece:.3f})"]
        lines.append(f"{'bin':>12s} {'n':>6s} {'mean p':>8s} {'valid%':>8s}")
        for i in range(len(self.bin_counts)):
            if self.bin_counts[i] == 0:
                continue
            lines.append(
                f"{self.bin_edges[i]:>5.2f}-{self.bin_edges[i + 1]:<5.2f} "
                f"{int(self.bin_counts[i]):6d} {self.bin_confidence[i]:8.3f} "
                f"{self.bin_accuracy[i]:8.3f}"
            )
        return "\n".join(lines)


def calibrate_classifier(
    classifier, samples: Sequence, bins: int = 10, batch_size: int = 128
) -> ClassifierCalibration:
    """Measure the classifier's probability calibration on ``samples``."""
    probs: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    classifier.eval()
    loader = DataLoader(samples, batch_size=batch_size, shuffle=False)
    with no_grad():
        for batch in loader:
            logits = classifier(batch).data
            exp = np.exp(logits - logits.max(axis=1, keepdims=True))
            probs.append(exp[:, 1] / exp.sum(axis=1))
            labels.append(batch.labels())
    p = np.concatenate(probs)
    y = np.concatenate(labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, bins + 1)
    confidence = np.zeros(bins)
    accuracy = np.zeros(bins)
    counts = np.zeros(bins)
    for i in range(bins):
        mask = (p >= edges[i]) & (p < edges[i + 1] if i < bins - 1 else p <= edges[i + 1])
        counts[i] = mask.sum()
        if counts[i]:
            confidence[i] = float(p[mask].mean())
            accuracy[i] = float(y[mask].mean())
    total = counts.sum() or 1.0
    ece = float(np.sum(counts / total * np.abs(confidence - accuracy)))
    return ClassifierCalibration(
        bin_edges=edges,
        bin_confidence=confidence,
        bin_accuracy=accuracy,
        bin_counts=counts,
        ece=ece,
    )


@dataclass
class RegressionProfile:
    """Per-kernel latency-prediction quality."""

    per_kernel: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def pretty(self) -> str:
        lines = ["regression profile (normalised-latency errors)"]
        lines.append(
            f"{'kernel':14s} {'n':>5s} {'mae':>8s} {'p90 err':>8s} {'spearman':>9s}"
        )
        for kernel in sorted(self.per_kernel):
            row = self.per_kernel[kernel]
            lines.append(
                f"{kernel:14s} {int(row['count']):5d} {row['mae']:8.3f} "
                f"{row['p90']:8.3f} {row['spearman']:9.3f}"
            )
        return "\n".join(lines)


def profile_regression(
    regressor, samples: Sequence, batch_size: int = 128
) -> RegressionProfile:
    """Latency error quantiles + rank correlation, per kernel.

    Rank correlation is what the DSE's top-M selection depends on: a
    model can have biased absolute predictions and still rank designs
    perfectly.
    """
    regressor.eval()
    predictions: List[float] = []
    targets: List[float] = []
    kernels: List[str] = []
    loader = DataLoader(samples, batch_size=batch_size, shuffle=False)
    objective_index = list(regressor.config.objectives).index("latency")
    with no_grad():
        for batch in loader:
            out = regressor(batch).data
            predictions.extend(out[:, objective_index].tolist())
            targets.extend(g.y["latency"] for g in batch.graphs)
            kernels.extend(g.kernel for g in batch.graphs)
    predictions_arr = np.array(predictions)
    targets_arr = np.array(targets)
    kernels_arr = np.array(kernels)
    profile = RegressionProfile()
    for kernel in sorted(set(kernels)):
        mask = kernels_arr == kernel
        err = np.abs(predictions_arr[mask] - targets_arr[mask])
        profile.per_kernel[kernel] = {
            "count": float(mask.sum()),
            "mae": float(err.mean()) if err.size else 0.0,
            "p90": float(np.quantile(err, 0.9)) if err.size else 0.0,
            "spearman": spearman(predictions_arr[mask], targets_arr[mask]),
        }
    return profile
