"""Dataset assembly: design database → model-ready graph samples.

One :class:`~repro.nn.data.GraphData` per database record.  Graph
structure and base features are built once per kernel and only the
pragma-node rows are patched per design point
(:meth:`~repro.graph.encoding.EncodedGraph.fill`).

Each sample also carries two `extras` used by the MLP baselines:

* ``pragma_vec`` — the flat pragma-settings vector (model M1's input),
  padded to a global maximum knob count so kernels share one input
  space;
* no separate context vector is stored for M2 — it sums the graph's
  initial node embeddings at run time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..designspace.space import DesignPoint
from ..explorer.database import Database, DesignRecord
from ..frontend.pragmas import PipelineOption
from ..graph import EncodedGraph, encode_kernel
from ..kernels import get_kernel
from .config import ALL_OBJECTIVES
from .normalizer import TargetNormalizer

__all__ = ["GraphDatasetBuilder", "train_test_split", "MAX_KNOBS", "pragma_vector"]

#: Global maximum tunable-knob count (2mm has 14; leave headroom).
MAX_KNOBS = 16

_PIPE_CODE = {PipelineOption.OFF: 0.0, PipelineOption.COARSE: 0.5, PipelineOption.FINE: 1.0}


def pragma_vector(point: DesignPoint, knob_names: Sequence[str]) -> np.ndarray:
    """Encode a design point as a flat vector (M1's input).

    Two slots per knob in sorted-name order: a pipeline-mode code and a
    log-scaled numeric factor; zero-padded to ``MAX_KNOBS`` knobs.
    """
    vec = np.zeros(2 * MAX_KNOBS, dtype=np.float64)
    for i, name in enumerate(sorted(knob_names)[:MAX_KNOBS]):
        value = point.get(name)
        if value is None:
            continue
        if isinstance(value, PipelineOption):
            vec[2 * i] = _PIPE_CODE[value]
        else:
            vec[2 * i + 1] = np.log2(max(int(value), 1)) / 6.0
    return vec


class GraphDatasetBuilder:
    """Builds train/test graph datasets from a design database."""

    def __init__(self, database: Database, normalizer: Optional[TargetNormalizer] = None):
        self.database = database
        self.normalizer = normalizer or TargetNormalizer().fit(
            [r.latency for r in database if r.valid] or [1.0]
        )
        self._encoded: Dict[Tuple[str, Optional[str]], EncodedGraph] = {}

    def encoded_graph(self, kernel: str, device=None) -> EncodedGraph:
        """Encoded graph for ``kernel``, memoised per (kernel, device).

        ``device`` is a registry entry conditioning the node features;
        ``None`` (the reference device) reproduces the original
        encoding exactly.
        """
        key = (kernel, getattr(device, "name", None))
        if key not in self._encoded:
            self._encoded[key] = encode_kernel(get_kernel(kernel), device=device)
        return self._encoded[key]

    def sample(self, record: DesignRecord):
        """Build one GraphData sample from a database record."""
        from ..nn.data import GraphData

        enc = self.encoded_graph(record.kernel)
        point = record.design_point
        x = enc.fill(point)
        targets = self.normalizer.transform(record.objectives())
        extras = {
            "pragma_vec": pragma_vector(point, list(enc.pragma_rows)),
        }
        return GraphData(
            x=x,
            edge_index=enc.edge_index,
            edge_attr=enc.edge_attr,
            y={k: float(targets.get(k, 0.0)) for k in ALL_OBJECTIVES},
            label=int(record.valid),
            kernel=record.kernel,
            point_key=record.point_key,
            extras=extras,
        )

    def build(
        self,
        records: Optional[Iterable[DesignRecord]] = None,
        valid_only: bool = False,
    ) -> List:
        """Build samples for ``records`` (default: the whole database)."""
        records = list(records if records is not None else self.database)
        if valid_only:
            records = [r for r in records if r.valid]
        return [self.sample(r) for r in records]


def train_test_split(
    samples: Sequence, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[List, List]:
    """Random split, stratified by kernel (Section 5.1's 80/20)."""
    rng = np.random.default_rng(seed)
    by_kernel: Dict[str, List] = {}
    for sample in samples:
        by_kernel.setdefault(sample.kernel, []).append(sample)
    train, test = [], []
    for kernel in sorted(by_kernel):
        group = by_kernel[kernel]
        order = rng.permutation(len(group))
        cut = max(int(round(len(group) * test_fraction)), 1) if len(group) > 1 else 0
        test.extend(group[i] for i in order[:cut])
        train.extend(group[i] for i in order[cut:])
    return train, test
