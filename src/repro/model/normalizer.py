"""Target pre-processing (Section 5.2.1).

Latency is transformed as ``T = log2(NormalizationFactor / latency)``
(Eq. 11) so that low-latency (high-performance) designs get the largest
target values and therefore dominate the squared loss.  Resource
utilizations are already normalised by device capacity (values around
[0, ~4]) and pass through unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

import numpy as np

from ..errors import ModelError

__all__ = ["TargetNormalizer"]


class TargetNormalizer:
    """Fit/apply/invert the latency transform of Eq. 11."""

    def __init__(self, normalization_factor: Optional[float] = None):
        self.normalization_factor = normalization_factor

    def fit(self, latencies: Iterable[float]) -> "TargetNormalizer":
        """Set the normalisation factor to the largest observed latency.

        With this choice the slowest design maps to T = 0 and every
        faster design to a positive value, matching the paper's target
        range (0 .. ~12.7).
        """
        latencies = [float(lat) for lat in latencies if lat > 0]
        if not latencies:
            raise ModelError("cannot fit normalizer on empty latency list")
        self.normalization_factor = max(latencies)
        return self

    def _require_fit(self) -> float:
        if self.normalization_factor is None:
            raise ModelError("TargetNormalizer used before fit()")
        return self.normalization_factor

    def transform_latency(self, latency: float) -> float:
        factor = self._require_fit()
        return math.log2(factor / max(float(latency), 1.0))

    def inverse_latency(self, transformed: float) -> float:
        factor = self._require_fit()
        return factor / (2.0 ** float(transformed))

    def transform(self, objectives: Dict[str, float]) -> Dict[str, float]:
        """Normalise a full objective dict (latency + utilizations)."""
        out = dict(objectives)
        if "latency" in out:
            out["latency"] = self.transform_latency(out["latency"])
        return out

    def inverse(self, objectives: Dict[str, float]) -> Dict[str, float]:
        out = dict(objectives)
        if "latency" in out:
            out["latency"] = self.inverse_latency(out["latency"])
        return out

    def transform_array(self, names, values: np.ndarray) -> np.ndarray:
        """Columnwise transform of a (G, K) target matrix."""
        out = np.array(values, dtype=np.float64, copy=True)
        for j, name in enumerate(names):
            if name == "latency":
                factor = self._require_fit()
                out[:, j] = np.log2(factor / np.maximum(out[:, j], 1.0))
        return out
