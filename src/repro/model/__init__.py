"""Predictive models (Section 4.3): configs, datasets, training, inference.

- :data:`MODEL_CONFIGS` — the M1–M7 variants of Table 2;
- :class:`GraphDatasetBuilder` — database → graph samples;
- :func:`build_model` — instantiate any variant;
- :class:`Trainer` / :func:`train_predictor` — fit models / the full
  classifier+regressor+BRAM stack;
- :class:`GNNDSEPredictor` — millisecond surrogate used by the DSE.
"""

from .calibration import (
    ClassifierCalibration,
    RegressionProfile,
    calibrate_classifier,
    profile_regression,
    spearman,
)
from .config import (
    ALL_OBJECTIVES,
    BRAM_OBJECTIVE,
    MODEL_CONFIGS,
    REGRESSION_OBJECTIVES,
    ModelConfig,
)
from .dataset import MAX_KNOBS, GraphDatasetBuilder, pragma_vector, train_test_split
from .importance import ImportanceReport, KnobImportance, knob_importance
from .models import ContextMLPModel, GNNDSEModel, PragmaMLPModel, build_model
from .normalizer import TargetNormalizer
from .predictor import GNNDSEPredictor, Prediction, train_predictor
from .trainer import (
    TrainConfig,
    Trainer,
    TrainHistory,
    evaluate_classification,
    evaluate_regression,
    predict,
)

__all__ = [
    "ClassifierCalibration",
    "RegressionProfile",
    "calibrate_classifier",
    "profile_regression",
    "spearman",
    "ALL_OBJECTIVES",
    "BRAM_OBJECTIVE",
    "MODEL_CONFIGS",
    "REGRESSION_OBJECTIVES",
    "ModelConfig",
    "ImportanceReport",
    "KnobImportance",
    "knob_importance",
    "MAX_KNOBS",
    "GraphDatasetBuilder",
    "pragma_vector",
    "train_test_split",
    "ContextMLPModel",
    "GNNDSEModel",
    "PragmaMLPModel",
    "build_model",
    "TargetNormalizer",
    "GNNDSEPredictor",
    "Prediction",
    "train_predictor",
    "TrainConfig",
    "Trainer",
    "TrainHistory",
    "evaluate_classification",
    "evaluate_regression",
    "predict",
]
