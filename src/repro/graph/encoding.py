"""Initial feature encoding of program graphs.

Produces the model inputs of Section 4.3: 124-dimensional initial node
embeddings built from one-hot encodings of the node attributes plus the
pragma options, and edge features from flow/position attributes.

Across design points of one kernel only the pragma-node rows change, so
the encoder exposes :meth:`EncodedGraph.fill` which patches those rows
into a fresh copy of the base feature matrix — graph structure, edge
features, and all non-pragma rows are shared.

Reverse edges are materialised with a ``reversed`` feature bit so the
(directed) message-passing layers can propagate information both ways,
the standard treatment for ProGraML-style graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import GraphError
from ..frontend.pragmas import PipelineOption, PragmaKind
from .programl import ProgramGraph
from .vocab import node_text_index, vocab_size

__all__ = [
    "NODE_DIM",
    "EDGE_DIM",
    "PRAGMA_FEATURE_SLICE",
    "DEVICE_FEATURE_SLICE",
    "device_features",
    "EncodedGraph",
    "GraphEncoder",
]

#: Initial node embedding size (matches the paper's 124).
NODE_DIM = 124

#: Edge feature size: 4 flow one-hot + 8 position one-hot + reversed bit.
EDGE_DIM = 13

_MAX_POSITION = 7
_BLOCK_BINS = 8
_MAX_FUNCTIONS = 4

# Feature block offsets inside the node vector.
_OFF_TYPE = 0  # 4: node type one-hot
_OFF_TEXT = 4  # vocab_size(): key_text one-hot
_OFF_BLOCK = _OFF_TEXT + vocab_size()  # 8 bins + 1 scalar
_OFF_FUNC = _OFF_BLOCK + _BLOCK_BINS + 1  # 4: function one-hot
_OFF_CONST = _OFF_FUNC + _MAX_FUNCTIONS  # 2: sign, log-magnitude
_OFF_TRIP = _OFF_CONST + 2  # 2: has-trip bit, log trip
_OFF_PRAGMA = _OFF_TRIP + 2  # 6: off/cg/fg one-hot, log factor, factor>1, tunable
_PRAGMA_LEN = 6
_OFF_DEVICE = _OFF_PRAGMA + _PRAGMA_LEN  # 8: device conditioning block
_DEVICE_LEN = 8
_USED_DIM = _OFF_DEVICE + _DEVICE_LEN

#: Column range of the pragma-option block inside a node feature row —
#: the only features that differ between design points of one kernel.
PRAGMA_FEATURE_SLICE = slice(_OFF_PRAGMA, _OFF_PRAGMA + _PRAGMA_LEN)

#: Column range of the device conditioning block — broadcast to every
#: node row, identical across design points, all-zero for the reference
#: device (so reference encodings are bit-identical to device-less ones).
DEVICE_FEATURE_SLICE = slice(_OFF_DEVICE, _OFF_DEVICE + _DEVICE_LEN)

PragmaValue = Union[PipelineOption, int]


@dataclass
class EncodedGraph:
    """Encoded kernel graph shared by all its design points.

    Attributes
    ----------
    x_base:
        (N, NODE_DIM) float32 base node features with every tunable
        pragma at its neutral setting (pipeline off / factor 1).
    edge_index:
        (2, E) int64 with reverse edges included.
    edge_attr:
        (E, EDGE_DIM) float32.
    pragma_rows:
        knob name -> node row index.
    """

    name: str
    x_base: np.ndarray
    edge_index: np.ndarray
    edge_attr: np.ndarray
    pragma_rows: Dict[str, int]
    pragma_kinds: Dict[str, PragmaKind]
    graph: Optional[ProgramGraph] = None

    @property
    def num_nodes(self) -> int:
        return self.x_base.shape[0]

    def fill(self, point: Dict[str, PragmaValue]) -> np.ndarray:
        """Return node features with the design point's pragma options.

        ``point`` maps knob names to concrete options.  Knobs absent
        from the mapping keep their neutral encoding.  Unknown knob
        names raise :class:`~repro.errors.GraphError`.
        """
        x = self.x_base.copy()
        rows, values = self.pragma_patch(point)
        x[rows, _OFF_PRAGMA : _OFF_PRAGMA + _PRAGMA_LEN] = values
        return x

    @property
    def pragma_row_order(self) -> np.ndarray:
        """All pragma-node rows, sorted — the only rows ``fill`` can touch."""
        return np.array(sorted(self.pragma_rows.values()), dtype=np.int64)

    def pragma_patch(self, point: Dict[str, PragmaValue]) -> "tuple[np.ndarray, np.ndarray]":
        """The design point as a sparse feature patch.

        Returns ``(rows, values)`` where ``rows`` is every pragma-node
        row (sorted) and ``values`` the corresponding pragma feature
        block: the point's encoded options for knobs it names, the
        neutral base encoding for the rest.  Patching these cells into a
        copy of ``x_base`` reproduces :meth:`fill` exactly, which lets a
        batched evaluator reuse one tiled base matrix and rewrite only
        ``len(rows) * 6`` cells per candidate.
        """
        rows = self.pragma_row_order
        values = self.x_base[rows, _OFF_PRAGMA : _OFF_PRAGMA + _PRAGMA_LEN].copy()
        if not point:
            return rows, values
        index = {int(row): i for i, row in enumerate(rows)}
        for name, value in point.items():
            row = self.pragma_rows.get(name)
            if row is None:
                raise GraphError(f"{self.name}: unknown pragma knob {name!r}")
            values[index[row]] = _encode_pragma_value(
                self.pragma_kinds[name], value, tunable=True
            )
        return rows, values


#: Gain applied to the pragma-option feature block.  Pragma nodes are a
#: handful among ~100+ graph nodes, so after graph-level pooling their
#: unscaled contribution is diluted to the percent level and regression
#: heads learn per-kernel means instead of per-design differences.
#: Amplifying the block restores the signal (observed: latency
#: prediction correlation 0.4 -> 0.86 on held-out designs).
PRAGMA_FEATURE_GAIN = 4.0


def _encode_pragma_value(kind: PragmaKind, value: PragmaValue, tunable: bool) -> np.ndarray:
    block = np.zeros(_PRAGMA_LEN, dtype=np.float32)
    if kind is PragmaKind.PIPELINE:
        option = value if isinstance(value, PipelineOption) else PipelineOption(str(value))
        block[{PipelineOption.OFF: 0, PipelineOption.COARSE: 1, PipelineOption.FINE: 2}[option]] = 1.0
    else:
        factor = max(int(value), 1)
        block[3] = np.log2(factor) / 6.0
        block[4] = 1.0 if factor > 1 else 0.0
    block[5] = 1.0 if tunable else 0.0
    return block * PRAGMA_FEATURE_GAIN


def device_features(device) -> np.ndarray:
    """Device conditioning block: capacity vector + target-type one-hot.

    Capacities are encoded *relative* to the reference device
    (log-ratios), so the reference FPGA — the device every existing
    artifact was trained against — encodes to an all-zero block and
    reference-device feature matrices stay bit-identical to the
    device-less encoding.  ``None`` means the reference device.
    """
    block = np.zeros(_DEVICE_LEN, dtype=np.float32)
    if device is None:
        return block
    from ..hls.device import DEFAULT_DEVICE  # local import: hls does not import graph

    ref = DEFAULT_DEVICE.capacities()
    block[0] = 1.0 if getattr(device, "kind", "fpga") == "cgra" else 0.0
    caps = device.capacities()
    for i, axis in enumerate(("DSP", "BRAM", "LUT", "FF")):
        cap = caps.get(axis)
        if cap:
            block[1 + i] = np.log2(cap / ref[axis]) / 4.0
    bandwidth = getattr(device, "axi_bits", 0) * getattr(device, "axi_ports", 0)
    if bandwidth:
        block[5] = np.log2(bandwidth / 512.0) / 4.0
    block[6] = np.log2(getattr(device, "pe_count", 0) + 1.0) / 8.0
    block[7] = np.log2(getattr(device, "instruction_slots", 0) + 1.0) / 16.0
    return block


class GraphEncoder:
    """Encodes :class:`ProgramGraph` objects into numpy model inputs."""

    node_dim = NODE_DIM
    edge_dim = EDGE_DIM

    def encode(self, graph: ProgramGraph, device=None) -> EncodedGraph:
        """Encode a program graph into an :class:`EncodedGraph`.

        ``device`` conditions every node row on the target device via
        :func:`device_features`; omitted (or the reference device's
        all-zero block) reproduces the original encoding exactly.
        """
        if _USED_DIM > NODE_DIM:
            raise GraphError(
                f"feature layout needs {_USED_DIM} dims > NODE_DIM={NODE_DIM}"
            )
        num_nodes = graph.num_nodes
        x = np.zeros((num_nodes, NODE_DIM), dtype=np.float32)
        if device is not None:
            x[:, DEVICE_FEATURE_SLICE] = device_features(device)
        for node in graph.nodes:
            row = x[node.id]
            row[_OFF_TYPE + node.ntype] = 1.0
            row[_OFF_TEXT + node_text_index(node.key_text)] = 1.0
            bin_index = min(node.block // 4, _BLOCK_BINS - 1)
            row[_OFF_BLOCK + bin_index] = 1.0
            row[_OFF_BLOCK + _BLOCK_BINS] = min(node.block / 32.0, 1.0)
            row[_OFF_FUNC + min(node.function, _MAX_FUNCTIONS - 1)] = 1.0
            if node.const_value is not None:
                row[_OFF_CONST] = 1.0 if node.const_value >= 0 else -1.0
                row[_OFF_CONST + 1] = np.log2(abs(node.const_value) + 1.0) / 12.0
            if node.trip_count is not None:
                row[_OFF_TRIP] = 1.0
                row[_OFF_TRIP + 1] = np.log2(max(node.trip_count, 1)) / 12.0
            if node.pragma is not None:
                neutral: PragmaValue
                if node.pragma.fixed_value is not None:
                    neutral = node.pragma.fixed_value
                elif node.pragma.kind is PragmaKind.PIPELINE:
                    neutral = PipelineOption.OFF
                else:
                    neutral = 1
                row[_OFF_PRAGMA : _OFF_PRAGMA + _PRAGMA_LEN] = _encode_pragma_value(
                    node.pragma.kind, neutral, tunable=node.pragma.is_tunable
                )

        sources: List[int] = []
        targets: List[int] = []
        attrs: List[np.ndarray] = []
        for edge in graph.edges:
            forward = np.zeros(EDGE_DIM, dtype=np.float32)
            forward[edge.flow] = 1.0
            forward[4 + min(edge.position, _MAX_POSITION)] = 1.0
            sources.append(edge.src)
            targets.append(edge.dst)
            attrs.append(forward)
            backward = forward.copy()
            backward[EDGE_DIM - 1] = 1.0
            sources.append(edge.dst)
            targets.append(edge.src)
            attrs.append(backward)

        edge_index = np.array([sources, targets], dtype=np.int64)
        edge_attr = (
            np.stack(attrs).astype(np.float32)
            if attrs
            else np.zeros((0, EDGE_DIM), dtype=np.float32)
        )
        pragma_rows = dict(graph.pragma_nodes)
        pragma_kinds = {
            name: graph.nodes[row].pragma.kind for name, row in pragma_rows.items()
        }
        return EncodedGraph(
            name=graph.name,
            x_base=x,
            edge_index=edge_index,
            edge_attr=edge_attr,
            pragma_rows=pragma_rows,
            pragma_kinds=pragma_kinds,
            graph=graph,
        )
