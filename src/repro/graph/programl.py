"""ProGraML-style program graphs extended with pragma nodes.

Implements the representation of Section 4.2: three original node kinds
(instruction, variable, constant) plus pragma nodes; four edge flows
(control, data, call, pragma) with position attributes.  Pragma nodes
attach to the ``icmp`` instruction of their loop; when several pragma
edges share that ``icmp``, their ``position`` numbers them (tile=0,
pipeline=1, parallel=2), exactly as the paper describes.

Graphs are built once per kernel: across the design points of one kernel
only pragma-node *attributes* change, which the feature encoder exploits
(:mod:`repro.graph.encoding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import GraphError
from ..frontend.pragmas import Pragma
from ..ir.function import Module
from ..ir.values import Constant, Instruction, Value

__all__ = ["GraphNode", "GraphEdge", "ProgramGraph", "build_program_graph"]

#: Node type codes (Section 4.2).
NTYPE_INSTRUCTION = 0
NTYPE_VARIABLE = 1
NTYPE_CONSTANT = 2
NTYPE_PRAGMA = 3

#: Edge flow codes (Section 4.2).
FLOW_CONTROL = 0
FLOW_DATA = 1
FLOW_CALL = 2
FLOW_PRAGMA = 3


@dataclass
class GraphNode:
    """One graph node with the attribute schema of Section 4.2."""

    id: int
    ntype: int
    key_text: str
    block: int = 0
    function: int = 0
    #: For pragma nodes: the originating Pragma knob.
    pragma: Optional[Pragma] = None
    #: For constant nodes: the literal value (trip counts live here).
    const_value: Optional[float] = None
    #: For icmp nodes guarding a loop: the loop's trip count.
    trip_count: Optional[int] = None

    @property
    def is_pragma(self) -> bool:
        return self.ntype == NTYPE_PRAGMA


@dataclass
class GraphEdge:
    """One directed edge: (src, dst, flow, position)."""

    src: int
    dst: int
    flow: int
    position: int = 0


@dataclass
class ProgramGraph:
    """A whole-kernel program graph.

    Attributes
    ----------
    name:
        Kernel name.
    nodes, edges:
        The graph itself.
    pragma_nodes:
        Map from pragma knob name to its node id, used by the
        per-design-point feature fill.
    """

    name: str
    nodes: List[GraphNode] = field(default_factory=list)
    edges: List[GraphEdge] = field(default_factory=list)
    pragma_nodes: Dict[str, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def add_node(self, **kwargs) -> GraphNode:
        node = GraphNode(id=len(self.nodes), **kwargs)
        self.nodes.append(node)
        return node

    def add_edge(self, src: int, dst: int, flow: int, position: int = 0) -> GraphEdge:
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise GraphError(f"edge ({src}, {dst}) references missing nodes")
        edge = GraphEdge(src, dst, flow, position)
        self.edges.append(edge)
        return edge

    def to_networkx(self):
        """Export to a networkx MultiDiGraph (visualisation/debugging)."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(
                node.id,
                type=node.ntype,
                key_text=node.key_text,
                block=node.block,
                function=node.function,
            )
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst, flow=edge.flow, position=edge.position)
        return graph

    def stats(self) -> Dict[str, int]:
        """Node/edge counts by kind (for tests and reports)."""
        out = {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "instruction_nodes": sum(1 for n in self.nodes if n.ntype == NTYPE_INSTRUCTION),
            "variable_nodes": sum(1 for n in self.nodes if n.ntype == NTYPE_VARIABLE),
            "constant_nodes": sum(1 for n in self.nodes if n.ntype == NTYPE_CONSTANT),
            "pragma_nodes": sum(1 for n in self.nodes if n.ntype == NTYPE_PRAGMA),
        }
        for flow, label in ((FLOW_CONTROL, "control"), (FLOW_DATA, "data"), (FLOW_CALL, "call"), (FLOW_PRAGMA, "pragma")):
            out[f"{label}_edges"] = sum(1 for e in self.edges if e.flow == flow)
        return out


class _GraphBuilder:
    """Builds a ProgramGraph from an IR module plus the pragma list."""

    def __init__(self, module: Module, pragmas: List[Pragma], name: str, trip_counts=None):
        self._module = module
        self._pragmas = pragmas
        self._graph = ProgramGraph(name=name)
        self._value_node: Dict[int, int] = {}  # Value.uid -> variable/constant node id
        self._inst_node: Dict[int, int] = {}  # Instruction.uid -> instruction node id
        self._trip_counts = trip_counts or {}

    def build(self) -> ProgramGraph:
        function_entry: Dict[str, int] = {}
        function_rets: Dict[str, List[int]] = {}
        for fn_index, fn in enumerate(self._module.functions):
            self._build_function(fn, fn_index, function_entry, function_rets)
        self._wire_calls(function_entry, function_rets)
        self._attach_pragmas()
        return self._graph

    # -- per function -------------------------------------------------------

    def _build_function(self, fn, fn_index: int, entries: Dict[str, int], rets: Dict[str, List[int]]):
        graph = self._graph
        # Argument variable nodes.
        for arg in fn.args:
            node = graph.add_node(
                ntype=NTYPE_VARIABLE, key_text=str(arg.type), function=fn_index
            )
            self._value_node[arg.uid] = node.id

        # Instruction nodes, in block order.
        for block in fn.blocks:
            for inst in block.instructions:
                node = graph.add_node(
                    ntype=NTYPE_INSTRUCTION,
                    key_text=inst.key_text,
                    block=block.block_id,
                    function=fn_index,
                )
                self._inst_node[inst.uid] = node.id
                if inst.opcode == "icmp" and "loop" in inst.attrs:
                    key = f"{fn.name}/{inst.attrs['loop']}"
                    node.trip_count = self._trip_counts.get(key)

        entries[fn.name] = self._inst_node[fn.first_instruction().uid]
        rets[fn.name] = [
            self._inst_node[i.uid] for i in fn.instructions() if i.opcode == "ret"
        ]

        # Control edges: sequential within a block, then terminator->succ.
        for block in fn.blocks:
            insts = block.instructions
            for prev, nxt in zip(insts, insts[1:]):
                graph.add_edge(
                    self._inst_node[prev.uid], self._inst_node[nxt.uid], FLOW_CONTROL, 0
                )
            term = block.terminator
            if term is None:
                continue
            for position, succ in enumerate(block.successors()):
                if succ.instructions:
                    graph.add_edge(
                        self._inst_node[term.uid],
                        self._inst_node[succ.instructions[0].uid],
                        FLOW_CONTROL,
                        position,
                    )

        # Data edges through explicit value/constant nodes (ProGraML style):
        # producer instruction -> value node -> consumer instruction.
        for block in fn.blocks:
            for inst in block.instructions:
                self._wire_operands(inst, fn_index)

    def _value_node_id(self, value: Value, fn_index: int) -> int:
        node_id = self._value_node.get(value.uid)
        if node_id is not None:
            return node_id
        graph = self._graph
        if isinstance(value, Constant):
            node = graph.add_node(
                ntype=NTYPE_CONSTANT,
                key_text=value.key_text,
                function=fn_index,
                const_value=float(value.value),
            )
        elif isinstance(value, Instruction):
            # The SSA result of the instruction: a separate variable node
            # fed by the producing instruction.
            node = graph.add_node(
                ntype=NTYPE_VARIABLE,
                key_text=str(value.type),
                block=value.block.block_id if value.block else 0,
                function=fn_index,
            )
            graph.add_edge(self._inst_node[value.uid], node.id, FLOW_DATA, 0)
        else:
            node = graph.add_node(
                ntype=NTYPE_VARIABLE, key_text=str(value.type), function=fn_index
            )
        self._value_node[value.uid] = node.id
        return node.id

    def _wire_operands(self, inst: Instruction, fn_index: int) -> None:
        for position, operand in enumerate(inst.operands):
            src = self._value_node_id(operand, fn_index)
            self._graph.add_edge(src, self._inst_node[inst.uid], FLOW_DATA, position)

    # -- cross-function and pragma wiring ----------------------------------------

    def _wire_calls(self, entries: Dict[str, int], rets: Dict[str, List[int]]) -> None:
        for fn in self._module.functions:
            for inst in fn.instructions():
                if inst.opcode != "call":
                    continue
                callee = inst.attrs.get("callee", "")
                call_node = self._inst_node[inst.uid]
                if callee in entries:
                    self._graph.add_edge(call_node, entries[callee], FLOW_CALL, 0)
                    for position, ret_node in enumerate(rets.get(callee, ())):
                        self._graph.add_edge(ret_node, call_node, FLOW_CALL, position)

    def _attach_pragmas(self) -> None:
        for pragma in self._pragmas:
            fn = self._module.function(pragma.function)
            icmp = fn.loop_icmp.get(pragma.loop_label)
            if icmp is None:
                raise GraphError(
                    f"pragma {pragma.name} targets loop {pragma.loop_label} "
                    f"of {pragma.function}, but no loop compare was recorded"
                )
            fn_index = self._module.functions.index(fn)
            node = self._graph.add_node(
                ntype=NTYPE_PRAGMA,
                key_text=pragma.kind.keyword.upper(),
                block=icmp.block.block_id if icmp.block else 0,
                function=fn_index,
                pragma=pragma,
            )
            # position numbers same-type edges into the icmp: tile=0,
            # pipeline=1, parallel=2 (Section 4.2 table).
            position = pragma.kind.value
            self._graph.add_edge(node.id, self._inst_node[icmp.uid], FLOW_PRAGMA, position)
            self._graph.pragma_nodes[pragma.name] = node.id


def build_program_graph(
    module: Module,
    pragmas: List[Pragma],
    name: str = "",
    trip_counts: Optional[Dict[str, int]] = None,
) -> ProgramGraph:
    """Build the pragma-extended ProGraML graph of a lowered kernel.

    Parameters
    ----------
    module:
        Lowered IR (see :func:`repro.ir.lower_unit`).
    pragmas:
        Pragma knobs (see :func:`repro.frontend.collect_pragmas`); both
        tunable and fixed pragmas become nodes.
    name:
        Graph name (defaults to the module name).
    trip_counts:
        Optional ``{"fn/Llabel": trips}`` used to annotate loop ``icmp``
        nodes; the feature encoder exposes them to the model.
    """
    return _GraphBuilder(module, pragmas, name or module.name, trip_counts).build()
