"""Fixed node/edge vocabularies for graph feature encoding.

The vocabulary is *global and closed* (not fit per dataset) so that
kernels never seen during training still encode into the same feature
space — this is what makes the learned model transferable across
applications (Section 5.4).  Unknown texts map to an UNK slot.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "NODE_TEXT_VOCAB",
    "NODE_TYPES",
    "EDGE_FLOWS",
    "node_text_index",
    "UNK_INDEX",
]

#: Node type codes from Section 4.2 of the paper.
NODE_TYPES = ("instruction", "variable", "constant", "pragma")

#: Edge flow codes from Section 4.2.
EDGE_FLOWS = ("control", "data", "call", "pragma")

#: Closed key_text vocabulary: instruction opcodes (with compare
#: predicates split out), value type strings, and pragma keywords.
NODE_TEXT_VOCAB: List[str] = [
    # terminators / control
    "br",
    "condbr",
    "ret",
    # memory
    "alloca",
    "load",
    "store",
    "getelementptr",
    # integer arithmetic
    "add",
    "sub",
    "mul",
    "sdiv",
    "srem",
    # float arithmetic
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
    # bitwise
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
    # compares (predicate-qualified, like ProGraML's text field)
    "icmp.eq",
    "icmp.ne",
    "icmp.slt",
    "icmp.sgt",
    "icmp.sle",
    "icmp.sge",
    "fcmp.oeq",
    "fcmp.one",
    "fcmp.olt",
    "fcmp.ogt",
    "fcmp.ole",
    "fcmp.oge",
    # casts
    "sext",
    "zext",
    "trunc",
    "sitofp",
    "fptosi",
    "fpext",
    "fptrunc",
    "bitcast",
    # misc
    "phi",
    "call",
    "select",
    # value/constant type strings (variable + constant nodes)
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "float",
    "double",
    "i32*",
    "i64*",
    "float*",
    "double*",
    "array*",
    # pragma keywords (pragma nodes)
    "PIPELINE",
    "PARALLEL",
    "TILE",
]

_INDEX: Dict[str, int] = {text: i for i, text in enumerate(NODE_TEXT_VOCAB)}

#: Index used for any text outside the closed vocabulary.
UNK_INDEX = len(NODE_TEXT_VOCAB)


def node_text_index(text: str) -> int:
    """Map a node key_text to its vocabulary index (UNK when absent).

    Pointer-to-array types collapse onto the ``array*`` slot so that
    arrays of any shape share one symbol; their element type is carried
    separately by the graph builder.
    """
    if text in _INDEX:
        return _INDEX[text]
    if text.endswith("*") and "[" in text:
        return _INDEX["array*"]
    return UNK_INDEX


def vocab_size() -> int:
    """Vocabulary cardinality including the UNK slot."""
    return len(NODE_TEXT_VOCAB) + 1
