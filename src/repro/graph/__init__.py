"""Pragma-extended ProGraML-style program graphs and feature encoding.

Implements Section 4.2 of the paper: build the graph once per kernel
(:func:`build_program_graph`), encode it (:class:`GraphEncoder`), then
patch pragma-node features per design point (:meth:`EncodedGraph.fill`).

The convenience helper :func:`encode_kernel` runs the whole front-end →
IR → graph → features pipeline for a registered kernel.
"""

from __future__ import annotations

from .encoding import (
    DEVICE_FEATURE_SLICE,
    EDGE_DIM,
    NODE_DIM,
    EncodedGraph,
    GraphEncoder,
    device_features,
)
from .programl import (
    FLOW_CALL,
    FLOW_CONTROL,
    FLOW_DATA,
    FLOW_PRAGMA,
    NTYPE_CONSTANT,
    NTYPE_INSTRUCTION,
    NTYPE_PRAGMA,
    NTYPE_VARIABLE,
    GraphEdge,
    GraphNode,
    ProgramGraph,
    build_program_graph,
)
from .vocab import NODE_TEXT_VOCAB, node_text_index, vocab_size

__all__ = [
    "DEVICE_FEATURE_SLICE",
    "device_features",
    "EDGE_DIM",
    "NODE_DIM",
    "EncodedGraph",
    "GraphEncoder",
    "FLOW_CALL",
    "FLOW_CONTROL",
    "FLOW_DATA",
    "FLOW_PRAGMA",
    "NTYPE_CONSTANT",
    "NTYPE_INSTRUCTION",
    "NTYPE_PRAGMA",
    "NTYPE_VARIABLE",
    "GraphEdge",
    "GraphNode",
    "ProgramGraph",
    "build_program_graph",
    "NODE_TEXT_VOCAB",
    "node_text_index",
    "vocab_size",
    "encode_kernel",
    "kernel_graph",
]


def kernel_graph(spec) -> ProgramGraph:
    """Build the program graph of a :class:`~repro.kernels.KernelSpec`."""
    trip_counts = {}
    for fn in spec.analysis.functions.values():
        for loop in fn.all_loops():
            trip_counts[f"{fn.name}/{loop.label}"] = loop.trip_count
    return build_program_graph(
        spec.module, spec.analysis.pragmas, name=spec.name, trip_counts=trip_counts
    )


def encode_kernel(spec, device=None) -> EncodedGraph:
    """Front-end → IR → graph → encoded features for a kernel spec.

    ``device`` (a registry entry) conditions the node features on the
    target device; ``None`` is the reference device.
    """
    return GraphEncoder().encode(kernel_graph(spec), device=device)
