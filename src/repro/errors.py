"""Exception hierarchy for the GNN-DSE reproduction.

Every error raised by this package derives from :class:`ReproError` so
downstream users can catch one base class.  Sub-hierarchies mirror the
major subsystems (front-end, IR, design space, HLS simulator, NN stack).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FrontendError(ReproError):
    """Base class for C front-end errors."""


class LexerError(FrontendError):
    """Raised when the lexer encounters an unrecognised character.

    Parameters
    ----------
    message:
        Human-readable description.
    line, column:
        1-based source position of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(FrontendError):
    """Raised when the parser cannot derive a valid AST."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class SemanticError(FrontendError):
    """Raised for type errors or undeclared identifiers in the AST."""


class PragmaError(FrontendError):
    """Raised for malformed ``#pragma ACCEL`` directives."""


class IRError(ReproError):
    """Raised for malformed IR construction or verification failures."""


class LoweringError(IRError):
    """Raised when an AST construct cannot be lowered to IR."""


class GraphError(ReproError):
    """Raised for program-graph construction/encoding problems."""


class DesignSpaceError(ReproError):
    """Raised for invalid design points or malformed design spaces."""


class HLSError(ReproError):
    """Raised by the HLS simulator for unrecoverable modelling errors."""


class NNError(ReproError):
    """Raised by the neural-network stack (shape mismatches, etc.)."""


class ModelError(ReproError):
    """Raised by the predictive-model layer (bad configs, untrained use)."""


class DatabaseError(ReproError):
    """Raised by the design database for inconsistent records."""


class DSEError(ReproError):
    """Raised by the design-space-exploration driver."""


class CheckpointError(DSEError):
    """Raised for corrupt, half-written, or mismatched DSE checkpoints."""


class WorkerCrashError(DSEError):
    """Raised when a parallel-DSE worker dies repeatedly on one shard."""


class ServeError(ReproError):
    """Base class for model-serving errors (``repro.serve``)."""


class ArtifactError(ServeError):
    """Raised for missing, corrupt, or incompatible model artifacts."""


class BacklogFullError(ServeError):
    """Raised when the serving queue sheds load (HTTP 429 + Retry-After).

    ``retry_after_seconds`` is the server's estimate of when capacity
    will free up; the HTTP layer surfaces it as a ``Retry-After``
    header.
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.1):
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)


class DeadlineExceededError(ServeError):
    """Raised when a request's deadline passed before it was computed.

    Deadline-aware scheduling rejects such work up front (admission
    control) or at flush time (the batcher skips expired requests
    instead of spending a forward pass on answers nobody is waiting
    for).  Maps to HTTP 429 + ``Retry-After``.
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.05):
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)


class LoopError(ReproError):
    """Raised for active-learning loop failures (``repro.loop``)."""
