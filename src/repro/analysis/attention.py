"""Node-attention inspection (Fig. 5).

Extracts the per-node readout attention of a trained M7 model for one
design point and summarises which node kinds dominate — the paper's
claim is that pragma nodes receive the highest attention, with loop
trip-count context (``icmp`` and its constant) also ranking high.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..designspace.space import DesignPoint
from ..graph.programl import NTYPE_CONSTANT, NTYPE_INSTRUCTION, NTYPE_PRAGMA, NTYPE_VARIABLE
from ..model.predictor import GNNDSEPredictor
from ..nn.data import Batch

__all__ = ["NodeAttention", "AttentionReport", "attention_report"]

_TYPE_NAMES = {
    NTYPE_INSTRUCTION: "instruction",
    NTYPE_VARIABLE: "variable",
    NTYPE_CONSTANT: "constant",
    NTYPE_PRAGMA: "pragma",
}


@dataclass
class NodeAttention:
    """Attention received by one node."""

    node_id: int
    score: float
    ntype: str
    key_text: str


@dataclass
class AttentionReport:
    """Fig. 5-style summary for one kernel design point."""

    kernel: str
    nodes: List[NodeAttention] = field(default_factory=list)

    def top(self, k: int = 10) -> List[NodeAttention]:
        return sorted(self.nodes, key=lambda n: n.score, reverse=True)[:k]

    def mean_score_by_type(self) -> Dict[str, float]:
        by_type: Dict[str, List[float]] = {}
        for node in self.nodes:
            by_type.setdefault(node.ntype, []).append(node.score)
        return {t: float(np.mean(v)) for t, v in by_type.items()}

    def pragma_rank(self) -> float:
        """Mean attention rank of pragma nodes (0 = most attended)."""
        ordered = sorted(self.nodes, key=lambda n: n.score, reverse=True)
        ranks = [i for i, n in enumerate(ordered) if n.ntype == "pragma"]
        return float(np.mean(ranks)) if ranks else float(len(ordered))


def attention_report(
    predictor: GNNDSEPredictor, kernel: str, point: DesignPoint
) -> AttentionReport:
    """Compute readout attention of the regression model for one design.

    Requires the predictor's regression model to use attention pooling
    (model M7); sum-pooling models return uniform scores.
    """
    sample = predictor._sample(kernel, point)
    batch = Batch.from_graphs([sample])
    scores = predictor.regressor.attention_scores(batch)
    graph = predictor.builder.encoded_graph(kernel).graph
    report = AttentionReport(kernel=kernel)
    for node in graph.nodes:
        report.nodes.append(
            NodeAttention(
                node_id=node.id,
                score=float(scores[node.id]),
                ntype=_TYPE_NAMES.get(node.ntype, "?"),
                key_text=node.key_text,
            )
        )
    return report
