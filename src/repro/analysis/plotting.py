"""Terminal (ASCII) plotting for the paper's figures.

The offline environment has no matplotlib, so the figure experiments
render directly into the terminal: scatter plots for the t-SNE
embeddings of Fig. 6 (with a latency-quantile glyph per point) and bar
charts for the per-round speedups of Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["ascii_scatter", "ascii_bars"]

#: Glyphs from low to high value (latency quantiles in Fig. 6).
_GLYPHS = ".:-=+*#%@"


def ascii_scatter(
    points: np.ndarray,
    values: Optional[np.ndarray] = None,
    width: int = 68,
    height: int = 22,
    title: str = "",
) -> str:
    """Render 2-D ``points`` as an ASCII scatter plot.

    ``values`` (optional) colour-codes each point by its quantile using
    the glyph ramp ``. : - = + * # % @`` (low to high).  Overlapping
    points keep the highest-quantile glyph, making hot spots visible.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("ascii_scatter expects an (N, 2) array")
    n = points.shape[0]
    if values is None:
        ranks = np.zeros(n, dtype=int)
    else:
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(np.argsort(values))
        ranks = (order * (len(_GLYPHS) - 1) // max(n - 1, 1)).astype(int)

    x, y = points[:, 0], points[:, 1]
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    level = [[-1] * width for _ in range(height)]
    for xi, yi, rank in zip(x, y, ranks):
        col = int((xi - x_min) / x_span * (width - 1))
        row = int((1.0 - (yi - y_min) / y_span) * (height - 1))
        if rank > level[row][col]:
            grid[row][col] = _GLYPHS[rank]
            level[row][col] = rank

    lines: List[str] = []
    if title:
        lines.append(title)
    border = "+" + "-" * width + "+"
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    if values is not None:
        lines.append(f"glyphs: '{_GLYPHS[0]}' = lowest value ... '{_GLYPHS[-1]}' = highest")
    return "\n".join(lines)


def ascii_bars(
    series: Dict[str, Sequence[float]],
    width: int = 40,
    reference: float = 1.0,
    title: str = "",
) -> str:
    """Render grouped horizontal bars (one row per label per series entry).

    ``series`` maps a label (e.g. kernel name) to its per-round values.
    A ``|`` marks the ``reference`` line (speedup = 1.0 in Fig. 7).
    """
    flat = [v for values in series.values() for v in values]
    top = max(max(flat, default=1.0), reference) or 1.0
    scale = width / (top * 1.05)  # headroom so the reference mark stays inside
    ref_col = min(int(reference * scale), width - 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, values in series.items():
        for index, value in enumerate(values):
            bar_len = max(int(value * scale), 0)
            bar = "#" * bar_len + " " * (width - bar_len)
            if 0 <= ref_col < width:
                marker = "|" if bar_len <= ref_col else "+"
                bar = bar[:ref_col] + marker + bar[ref_col + 1:]
            name = label if index == 0 else ""
            lines.append(f"{name:14s} r{index + 1} [{bar}] {value:5.2f}")
    lines.append(f"{'':14s}    {'':1s}{' ' * ref_col}^ reference = {reference:g}")
    return "\n".join(lines)
