"""Embedding and attention analysis (Figs. 5 and 6 of the paper)."""

from .attention import AttentionReport, NodeAttention, attention_report
from .plotting import ascii_bars, ascii_scatter
from .tsne import neighborhood_coherence, tsne

__all__ = [
    "AttentionReport",
    "NodeAttention",
    "attention_report",
    "ascii_bars",
    "ascii_scatter",
    "neighborhood_coherence",
    "tsne",
]
