"""t-SNE (van der Maaten & Hinton, 2008) in numpy, for Fig. 6.

A standard reference implementation: binary-search per-point
perplexity calibration, symmetrised affinities, early exaggeration, and
momentum gradient descent on the Student-t low-dimensional affinities.
Scoped to the few-thousand-point embedding sets of the paper's figures.
"""

from __future__ import annotations


import numpy as np

__all__ = ["tsne", "neighborhood_coherence"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sums = np.sum(np.square(x), axis=1)
    d2 = sums[:, None] + sums[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _calibrate_affinities(d2: np.ndarray, perplexity: float, tol: float = 1e-5) -> np.ndarray:
    """Per-row precision search so each row's entropy matches perplexity."""
    n = d2.shape[0]
    target = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        row = np.delete(d2[i], i)
        for _ in range(50):
            exps = np.exp(-row * beta)
            total = exps.sum()
            if total <= 0:
                h, probs = 0.0, np.zeros_like(row)
            else:
                probs = exps / total
                h = float(np.log(total) + beta * np.sum(row * probs))
            diff = h - target
            if abs(diff) < tol:
                break
            if diff > 0:
                beta_min = beta
                beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2.0
        p[i, np.arange(n) != i] = probs
    return p


def tsne(
    x: np.ndarray,
    dims: int = 2,
    perplexity: float = 30.0,
    iterations: int = 350,
    learning_rate: float = 200.0,
    seed: int = 0,
    verbose: bool = False,
) -> np.ndarray:
    """Embed (N, F) data into (N, dims) with t-SNE."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n <= dims:
        return np.zeros((n, dims))
    perplexity = min(perplexity, max((n - 1) / 3.0, 2.0))
    p = _calibrate_affinities(_pairwise_sq_dists(x), perplexity)
    p = (p + p.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = np.random.default_rng(seed)
    y = rng.normal(scale=1e-4, size=(n, dims))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)
    exaggeration_until = 100
    p_run = p * 4.0

    for it in range(iterations):
        if it == exaggeration_until:
            p_run = p
        d2 = _pairwise_sq_dists(y)
        inv = 1.0 / (1.0 + d2)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / inv.sum(), 1e-12)
        pq = (p_run - q) * inv
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        momentum = 0.5 if it < 20 else 0.8
        sign_match = np.sign(grad) == np.sign(velocity)
        gains = np.where(sign_match, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0)
        if verbose and (it + 1) % 100 == 0:
            kl = float(np.sum(p_run * np.log(p_run / q)))
            print(f"  t-SNE iter {it + 1}: KL={kl:.3f}")
    return y


def neighborhood_coherence(
    embedding: np.ndarray, values: np.ndarray, k: int = 10
) -> float:
    """How well an embedding clusters points with similar values.

    For each point, takes its ``k`` nearest neighbours in the embedding
    and measures the mean absolute difference of ``values`` inside the
    neighbourhood, normalised by the global mean absolute difference.
    Lower is better; ~1.0 means no structure.  Used to quantify Fig. 6's
    claim that learned embeddings cluster designs by latency.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    n = embedding.shape[0]
    if n < k + 1:
        return 1.0
    d2 = _pairwise_sq_dists(embedding)
    np.fill_diagonal(d2, np.inf)
    local = 0.0
    for i in range(n):
        neighbors = np.argpartition(d2[i], k)[:k]
        local += float(np.mean(np.abs(values[neighbors] - values[i])))
    local /= n
    centered = np.abs(values[:, None] - values[None, :])
    global_mean = float(centered[~np.eye(n, dtype=bool)].mean())
    if global_mean == 0.0:
        return 1.0
    return local / global_mean
