"""Recursive-descent parser for the C subset.

Produces the AST defined in :mod:`repro.frontend.ast_nodes`.  ``#pragma``
lines are attached to the ``for`` loop that follows them, matching how
the Merlin compiler associates ``#pragma ACCEL`` directives with loops.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import Lexer, Token, TokenType

__all__ = ["Parser", "parse_source"]

_TYPE_KEYWORDS = frozenset({"void", "int", "float", "double", "char", "long", "short", "unsigned", "signed"})

# Binary operator precedence (C-like).  Higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="}


class Parser:
    """Parser over a token stream.

    Parameters
    ----------
    tokens:
        Token list ending with an EOF token (see :func:`repro.frontend.lexer.tokenize`).
    source_name:
        Used in the resulting :class:`~repro.frontend.ast_nodes.TranslationUnit`.
    """

    def __init__(self, tokens: List[Token], source_name: str = "<kernel>"):
        self._tokens = tokens
        self._pos = 0
        self._source_name = source_name
        self._pending_pragmas: List[ast.PragmaDirective] = []
        self._loop_counter = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _skip_and_collect_pragmas(self) -> None:
        while self._peek().type is TokenType.PRAGMA:
            token = self._advance()
            self._pending_pragmas.append(ast.PragmaDirective(text=token.text, line=token.line))

    def _take_pragmas(self) -> List[ast.PragmaDirective]:
        pragmas, self._pending_pragmas = self._pending_pragmas, []
        return pragmas

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line, token.column)
        return self._advance()

    # -- grammar: top level --------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        """Parse the whole token stream into a translation unit."""
        unit = ast.TranslationUnit(source_name=self._source_name)
        self._skip_and_collect_pragmas()
        while self._peek().type is not TokenType.EOF:
            unit.functions.append(self._parse_function())
            self._skip_and_collect_pragmas()
        return unit

    def _parse_function(self) -> ast.FunctionDef:
        start = self._peek()
        return_type = self._parse_type_specifier()
        name = self._expect_ident().text
        self._expect_punct("(")
        params: List[ast.ParamDecl] = []
        if not self._peek().is_punct(")"):
            params.append(self._parse_param())
            while self._peek().is_punct(","):
                self._advance()
                params.append(self._parse_param())
        self._expect_punct(")")
        self._loop_counter = 0
        body = self._parse_block()
        return ast.FunctionDef(
            name=name, return_type=return_type, params=params, body=body, line=start.line
        )

    def _parse_param(self) -> ast.ParamDecl:
        start = self._peek()
        base = self._parse_type_specifier()
        name = self._expect_ident().text
        dims = base.dims + self._parse_array_dims()
        ctype = ast.CType(base.base, dims, is_const=base.is_const)
        return ast.ParamDecl(name=name, ctype=ctype, line=start.line)

    def _parse_type_specifier(self) -> ast.CType:
        token = self._peek()
        is_const = False
        base_parts: List[str] = []
        while token.type is TokenType.KEYWORD and token.text in (_TYPE_KEYWORDS | {"const", "static"}):
            self._advance()
            if token.text == "const":
                is_const = True
            elif token.text not in ("static", "signed", "unsigned"):
                base_parts.append(token.text)
            token = self._peek()
        if not base_parts:
            raise ParseError(f"expected type specifier, found {token.text!r}", token.line, token.column)
        base = base_parts[-1] if base_parts[-1] != "long" or len(base_parts) == 1 else "long"
        if base_parts == ["long", "long"]:
            base = "long"
        # Consume pointer declarators; we model pointer params as 1-D arrays
        # of unknown extent (extent 0, refined by the kernel metadata).
        pointer_depth = 0
        while self._peek().is_punct("*"):
            self._advance()
            pointer_depth += 1
        dims = (0,) * pointer_depth
        return ast.CType(base, dims, is_const=is_const)

    def _parse_array_dims(self) -> tuple:
        dims: List[int] = []
        while self._peek().is_punct("["):
            self._advance()
            token = self._peek()
            if token.is_punct("]"):
                dims.append(0)  # unsized: extent comes from kernel metadata
            else:
                expr = self._parse_expr()
                value = _const_eval(expr)
                if value is None or value < 0:
                    raise ParseError(
                        "array extents must be non-negative integer constant "
                        "expressions after macro expansion",
                        token.line,
                        token.column,
                    )
                dims.append(value)
            self._expect_punct("]")
        return tuple(dims)

    # -- grammar: statements -------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_punct("{")
        block = ast.Block(line=start.line)
        self._skip_and_collect_pragmas()
        while not self._peek().is_punct("}"):
            block.stmts.append(self._parse_statement())
            self._skip_and_collect_pragmas()
        self._expect_punct("}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        self._skip_and_collect_pragmas()
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("return"):
            self._advance()
            value = None if self._peek().is_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return ast.ReturnStmt(value=value, line=token.line)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.BreakStmt(line=token.line)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.ContinueStmt(line=token.line)
        if token.type is TokenType.KEYWORD and token.text in (_TYPE_KEYWORDS | {"const", "static"}):
            stmt = self._parse_declaration_list()
            self._expect_punct(";")
            return stmt
        stmt = self._parse_expr_or_assign()
        self._expect_punct(";")
        return stmt

    def _parse_declaration_list(self) -> ast.Stmt:
        """Parse ``type d1, d2, ...``; multiple declarators become a Block."""
        start = self._peek()
        base = self._parse_type_specifier()
        decls = [self._parse_declarator(base, start.line)]
        while self._peek().is_punct(","):
            self._advance()
            decls.append(self._parse_declarator(base, start.line))
        if len(decls) == 1:
            return decls[0]
        return ast.Block(stmts=list(decls), line=start.line)

    def _parse_declarator(self, base: ast.CType, line: int) -> ast.DeclStmt:
        name = self._expect_ident().text
        dims = base.dims + self._parse_array_dims()
        init = None
        if self._peek().is_punct("="):
            self._advance()
            init = self._parse_expr()
        return ast.DeclStmt(
            name=name, ctype=ast.CType(base.base, dims, base.is_const), init=init, line=line
        )

    def _parse_declaration(self) -> ast.Stmt:
        """Single-statement declaration entry point (kept for for-inits)."""
        return self._parse_declaration_list()

    def _parse_for(self) -> ast.ForStmt:
        pragmas = self._take_pragmas()
        start = self._advance()  # 'for'
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            token = self._peek()
            if token.type is TokenType.KEYWORD and token.text in _TYPE_KEYWORDS:
                init = self._parse_declaration()
            else:
                init = self._parse_expr_or_assign()
        self._expect_punct(";")
        cond = None if self._peek().is_punct(";") else self._parse_expr()
        self._expect_punct(";")
        step: Optional[ast.Stmt] = None
        if not self._peek().is_punct(")"):
            step = self._parse_expr_or_assign()
        self._expect_punct(")")
        label = f"L{self._loop_counter}"
        self._loop_counter += 1
        body = self._parse_statement_as_block()
        return ast.ForStmt(
            init=init, cond=cond, step=step, body=body, pragmas=pragmas, label=label, line=start.line
        )

    def _parse_while(self) -> ast.WhileStmt:
        start = self._advance()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement_as_block()
        return ast.WhileStmt(cond=cond, body=body, line=start.line)

    def _parse_if(self) -> ast.IfStmt:
        start = self._advance()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_statement_as_block()
        otherwise = None
        if self._peek().is_keyword("else"):
            self._advance()
            otherwise = self._parse_statement_as_block()
        return ast.IfStmt(cond=cond, then=then, otherwise=otherwise, line=start.line)

    def _parse_statement_as_block(self) -> ast.Block:
        stmt = self._parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block(stmts=[stmt], line=stmt.line)

    def _parse_expr_or_assign(self) -> ast.Stmt:
        start = self._peek()
        expr = self._parse_expr()
        token = self._peek()
        if token.is_punct("="):
            self._advance()
            value = self._parse_expr()
            return ast.AssignStmt(target=expr, op="", value=value, line=start.line)
        if token.type is TokenType.PUNCT and token.text in _COMPOUND_ASSIGN:
            self._advance()
            value = self._parse_expr()
            return ast.AssignStmt(target=expr, op=token.text[:-1], value=value, line=start.line)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            op = "+" if token.text == "++" else "-"
            return ast.AssignStmt(
                target=expr, op=op, value=ast.IntLiteral(1, line=token.line), line=start.line
            )
        return ast.ExprStmt(expr=expr, line=start.line)

    # -- grammar: expressions --------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._peek().is_punct("?"):
            start = self._advance()
            then = self._parse_expr()
            self._expect_punct(":")
            otherwise = self._parse_ternary()
            return ast.TernaryOp(cond=cond, then=then, otherwise=otherwise, line=start.line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is not TokenType.PUNCT:
                return lhs
            prec = _PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return lhs
            self._advance()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.BinaryOp(op=token.text, lhs=lhs, rhs=rhs, line=token.line)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text in ("-", "!", "~", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.UnaryOp(op=token.text, operand=operand, line=token.line)
        if token.is_punct("++") or token.is_punct("--"):
            raise ParseError("prefix ++/-- is not supported; use i += 1", token.line, token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._peek().is_punct("["):
            if not isinstance(expr, (ast.VarRef, ast.ArrayRef)):
                token = self._peek()
                raise ParseError("subscript base must be a named array", token.line, token.column)
            base = expr.name if isinstance(expr, ast.VarRef) else expr.base
            indices = list(expr.indices) if isinstance(expr, ast.ArrayRef) else []
            self._advance()
            indices.append(self._parse_expr())
            self._expect_punct("]")
            expr = ast.ArrayRef(base=base, indices=indices, line=expr.line)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("("):
            # Either a parenthesised expression or a cast.
            nxt = self._peek(1)
            if nxt.type is TokenType.KEYWORD and nxt.text in _TYPE_KEYWORDS:
                self._advance()
                target = self._parse_type_specifier()
                self._expect_punct(")")
                operand = self._parse_unary()
                return ast.Cast(target=target, operand=operand, line=token.line)
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.INT_LIT:
            self._advance()
            return ast.IntLiteral(_parse_int(token.text), line=token.line)
        if token.type is TokenType.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(float(token.text.rstrip("fF")), line=token.line)
        if token.type is TokenType.CHAR_LIT:
            self._advance()
            body = token.text[1:-1]
            value = ord(body[-1]) if body else 0
            return ast.IntLiteral(value, line=token.line)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._peek().is_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append(self._parse_expr())
                    while self._peek().is_punct(","):
                        self._advance()
                        args.append(self._parse_expr())
                self._expect_punct(")")
                return ast.Call(name=token.text, args=args, line=token.line)
            return ast.VarRef(name=token.text, line=token.line)
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)


def _parse_int(text: str) -> int:
    text = text.rstrip("uUlL")
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def _const_eval(expr: ast.Expr) -> Optional[int]:
    """Fold an integer constant expression (for array extents)."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp):
        inner = _const_eval(expr.operand)
        if inner is None:
            return None
        return {"-": -inner, "~": ~inner, "!": int(not inner)}.get(expr.op)
    if isinstance(expr, ast.BinaryOp):
        lhs, rhs = _const_eval(expr.lhs), _const_eval(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda: lhs + rhs,
                "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs // rhs if rhs else None,
                "%": lambda: lhs % rhs if rhs else None,
                "<<": lambda: lhs << rhs,
                ">>": lambda: lhs >> rhs,
            }[expr.op]()
        except KeyError:
            return None
    return None


def parse_source(
    source: str,
    source_name: str = "<kernel>",
    predefined=None,
) -> ast.TranslationUnit:
    """Lex and parse C source into a :class:`TranslationUnit`.

    Parameters
    ----------
    source:
        Kernel C source text (our C subset).
    source_name:
        Name recorded on the translation unit (diagnostics only).
    predefined:
        Optional ``{macro: replacement}`` applied before lexing.
    """
    tokens = Lexer(source, predefined).tokenize()
    return Parser(tokens, source_name).parse_translation_unit()
