"""Lexer for the C subset accepted by the GNN-DSE front-end.

The front-end substitutes for Clang in the original paper: it only has to
accept the MachSuite / Polybench style kernels used in the evaluation, so
the language is a C subset (functions, ``for`` loops, arrays, arithmetic,
``if``/``else``, ``#define`` constants and ``#pragma ACCEL`` directives).

The lexer performs a light preprocessing pass:

* ``//`` and ``/* */`` comments are stripped;
* ``#define NAME <integer-expression>`` macros are recorded and expanded
  (object-like macros only, which is all the kernels need);
* ``#pragma ...`` lines are turned into :data:`TokenType.PRAGMA` tokens
  carrying the raw directive text so the parser can attach them to the
  following loop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Iterator, List, Optional

from ..errors import LexerError

__all__ = ["TokenType", "Token", "Lexer", "tokenize"]


class TokenType(Enum):
    """Classification of lexical tokens."""

    IDENT = auto()
    KEYWORD = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()
    STRING_LIT = auto()
    CHAR_LIT = auto()
    PUNCT = auto()
    PRAGMA = auto()
    EOF = auto()


#: Reserved words recognised as :data:`TokenType.KEYWORD`.
KEYWORDS = frozenset(
    {
        "void",
        "int",
        "float",
        "double",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "const",
        "static",
        "for",
        "while",
        "if",
        "else",
        "return",
        "break",
        "continue",
    }
)

# Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_FLOAT_RE = re.compile(r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fF]?")
_INT_RE = re.compile(r"(?:0[xX][0-9a-fA-F]+|\d+)[uUlL]*")
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)\s+(.*?)\s*$")
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+(.*?)\s*$")
_INCLUDE_RE = re.compile(r"^\s*#\s*include\b")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType` classification.
    text:
        The raw token text (for PRAGMA tokens, the directive body after
        ``#pragma``).
    line, column:
        1-based source coordinates of the first character.
    """

    type: TokenType
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        """Return True when this token is the punctuator ``text``."""
        return self.type is TokenType.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Return True when this token is the keyword ``text``."""
        return self.type is TokenType.KEYWORD and self.text == text

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.name}({self.text!r}@{self.line}:{self.column})"


class Lexer:
    """Tokenizer with macro expansion and pragma extraction.

    Parameters
    ----------
    source:
        C source text of the kernel.
    predefined:
        Optional mapping of macro name to replacement text, applied as if
        the macros had been ``#define``-d before line one.  Useful for
        parameterising kernel problem sizes from Python.
    """

    def __init__(self, source: str, predefined: Optional[Dict[str, str]] = None):
        self._source = source
        self._macros: Dict[str, str] = dict(predefined or {})
        #: Predefined macros win over in-source #defines, so callers can
        #: re-parameterise kernels (e.g. shrink problem sizes in tests).
        self._predefined = frozenset(self._macros)
        self._tokens: List[Token] = []

    @property
    def macros(self) -> Dict[str, str]:
        """Macros collected from ``#define`` lines (plus predefined ones)."""
        return dict(self._macros)

    def tokenize(self) -> List[Token]:
        """Tokenize the whole source and return the token list.

        The returned list always ends with a single EOF token.
        """
        self._tokens = []
        for line_no, line in enumerate(_strip_comments(self._source).split("\n"), start=1):
            self._lex_line(line, line_no)
        last_line = self._source.count("\n") + 1
        self._tokens.append(Token(TokenType.EOF, "", last_line, 1))
        return self._tokens

    # -- internals ---------------------------------------------------------

    def _lex_line(self, line: str, line_no: int) -> None:
        define = _DEFINE_RE.match(line)
        if define:
            name, body = define.group(1), define.group(2)
            if name not in self._predefined:
                self._macros[name] = self._expand_macros(body)
            return
        pragma = _PRAGMA_RE.match(line)
        if pragma:
            self._tokens.append(Token(TokenType.PRAGMA, pragma.group(1), line_no, 1))
            return
        if _INCLUDE_RE.match(line):
            return  # headers carry no semantics for the kernels we accept
        self._lex_code(self._expand_macros(line), line_no)

    def _expand_macros(self, text: str) -> str:
        # Iterate to a fixed point so macros may reference earlier macros.
        for _ in range(16):
            expanded = _IDENT_RE.sub(
                lambda m: self._macros.get(m.group(0), m.group(0)), text
            )
            if expanded == text:
                return expanded
            text = expanded
        return text

    def _lex_code(self, line: str, line_no: int) -> None:
        pos = 0
        length = len(line)
        while pos < length:
            ch = line[pos]
            if ch in " \t\r":
                pos += 1
                continue
            col = pos + 1
            ident = _IDENT_RE.match(line, pos)
            if ident:
                text = ident.group(0)
                kind = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
                self._tokens.append(Token(kind, text, line_no, col))
                pos = ident.end()
                continue
            if ch.isdigit() or (ch == "." and pos + 1 < length and line[pos + 1].isdigit()):
                pos = self._lex_number(line, pos, line_no, col)
                continue
            if ch == '"':
                pos = self._lex_quoted(line, pos, line_no, col, '"', TokenType.STRING_LIT)
                continue
            if ch == "'":
                pos = self._lex_quoted(line, pos, line_no, col, "'", TokenType.CHAR_LIT)
                continue
            punct = self._match_punct(line, pos)
            if punct:
                self._tokens.append(Token(TokenType.PUNCT, punct, line_no, col))
                pos += len(punct)
                continue
            raise LexerError(f"unexpected character {ch!r}", line_no, col)

    def _lex_number(self, line: str, pos: int, line_no: int, col: int) -> int:
        text = line[pos:]
        m_float = _FLOAT_RE.match(text)
        m_int = _INT_RE.match(text)
        # Prefer the longer match; a plain integer matches both regexes.
        if m_float and (not m_int or m_float.end() > m_int.end()):
            lexeme = m_float.group(0)
            is_float = any(c in lexeme for c in ".eE") and not lexeme.lower().startswith("0x")
            kind = TokenType.FLOAT_LIT if is_float else TokenType.INT_LIT
            self._tokens.append(Token(kind, lexeme, line_no, col))
            return pos + m_float.end()
        if m_int:
            self._tokens.append(Token(TokenType.INT_LIT, m_int.group(0), line_no, col))
            return pos + m_int.end()
        raise LexerError("malformed numeric literal", line_no, col)

    def _lex_quoted(
        self, line: str, pos: int, line_no: int, col: int, quote: str, kind: TokenType
    ) -> int:
        end = pos + 1
        while end < len(line):
            if line[end] == "\\":
                end += 2
                continue
            if line[end] == quote:
                self._tokens.append(Token(kind, line[pos : end + 1], line_no, col))
                return end + 1
            end += 1
        raise LexerError(f"unterminated {quote} literal", line_no, col)

    @staticmethod
    def _match_punct(line: str, pos: int) -> Optional[str]:
        for punct in _PUNCTUATORS:
            if line.startswith(punct, pos):
                return punct
        return None


def _strip_comments(source: str) -> str:
    """Remove ``/* */`` and ``//`` comments, preserving line structure."""
    out: List[str] = []
    i = 0
    n = len(source)
    in_block = False
    while i < n:
        if in_block:
            if source.startswith("*/", i):
                in_block = False
                i += 2
            else:
                if source[i] == "\n":
                    out.append("\n")
                i += 1
            continue
        if source.startswith("/*", i):
            in_block = True
            i += 2
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        out.append(source[i])
        i += 1
    return "".join(out)


def tokenize(source: str, predefined: Optional[Dict[str, str]] = None) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source, predefined).tokenize()


def iter_pragma_tokens(tokens: List[Token]) -> Iterator[Token]:
    """Yield only the PRAGMA tokens from a token stream."""
    for token in tokens:
        if token.type is TokenType.PRAGMA:
            yield token
