"""AST node definitions for the C subset front-end.

The AST is deliberately small: it models exactly the constructs found in
the MachSuite / Polybench style kernels that GNN-DSE evaluates on —
functions over scalar and array parameters, ``for`` loops (optionally
annotated with ``#pragma ACCEL`` directives), ``if``/``else``, assignment
and compound assignment, and side-effect-free arithmetic expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "CType",
    "Node",
    "Expr",
    "IntLiteral",
    "FloatLiteral",
    "VarRef",
    "ArrayRef",
    "UnaryOp",
    "BinaryOp",
    "TernaryOp",
    "Call",
    "Cast",
    "Stmt",
    "DeclStmt",
    "ExprStmt",
    "AssignStmt",
    "IfStmt",
    "ForStmt",
    "WhileStmt",
    "ReturnStmt",
    "BreakStmt",
    "ContinueStmt",
    "Block",
    "PragmaDirective",
    "ParamDecl",
    "FunctionDef",
    "TranslationUnit",
]


@dataclass(frozen=True)
class CType:
    """A (very) simplified C type: base scalar plus array dimensions.

    ``dims`` is a tuple of static extents; an empty tuple means scalar.
    ``base`` is one of ``void/int/float/double/char/long``.
    """

    base: str
    dims: Tuple[int, ...] = ()
    is_const: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_float(self) -> bool:
        return self.base in ("float", "double")

    @property
    def element_bits(self) -> int:
        """Bit width of one element, used by the HLS resource model."""
        return {"void": 0, "char": 8, "short": 16, "int": 32, "long": 64, "float": 32, "double": 64}[self.base]

    def num_elements(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim
        return total

    def __str__(self) -> str:
        suffix = "".join(f"[{d}]" for d in self.dims)
        return f"{self.base}{suffix}"


class Node:
    """Base class for every AST node (statements and expressions)."""

    line: int = 0


class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int
    line: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float
    line: int = 0


@dataclass
class VarRef(Expr):
    name: str
    line: int = 0


@dataclass
class ArrayRef(Expr):
    """``base[idx0][idx1]...`` — ``base`` is a VarRef (no pointer chains)."""

    base: str
    indices: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class UnaryOp(Expr):
    op: str  # one of: - ! ~ +
    operand: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class BinaryOp(Expr):
    op: str  # arithmetic, comparison, logical, bitwise, shifts
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class TernaryOp(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Cast(Expr):
    target: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]
    line: int = 0


class Stmt(Node):
    """Base class for statements."""


@dataclass
class PragmaDirective(Node):
    """A raw ``#pragma`` directive attached to the statement that follows.

    ``text`` is everything after ``#pragma`` (e.g. ``ACCEL pipeline
    auto{__PIPE__L1}``).
    """

    text: str = ""
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class AssignStmt(Stmt):
    """``target op= value`` where op is '' for plain assignment."""

    target: Expr = None  # type: ignore[assignment]  # VarRef or ArrayRef
    op: str = ""  # '', '+', '-', '*', '/', '%', '^', '&', '|', '<<', '>>'
    value: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    otherwise: Optional[Block] = None
    line: int = 0


@dataclass
class ForStmt(Stmt):
    """A canonical counted loop ``for (init; cond; step) body``.

    ``pragmas`` carries the ``#pragma ACCEL`` directives written directly
    above the loop in source order.  ``label`` is a stable identifier
    (``L0``, ``L1``...) assigned by the parser in pre-order so pragma
    placeholders and design-space entries can refer to loops.
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]
    pragmas: List[PragmaDirective] = field(default_factory=list)
    label: str = ""
    line: int = 0


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None
    line: int = 0


@dataclass
class BreakStmt(Stmt):
    line: int = 0


@dataclass
class ContinueStmt(Stmt):
    line: int = 0


@dataclass
class ParamDecl(Node):
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: CType = None  # type: ignore[assignment]
    params: List[ParamDecl] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class TranslationUnit(Node):
    """Top-level container: the functions of one kernel source file."""

    functions: List[FunctionDef] = field(default_factory=list)
    source_name: str = "<kernel>"

    def function(self, name: str) -> FunctionDef:
        """Return the function named ``name`` (KeyError if absent)."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    @property
    def top(self) -> FunctionDef:
        """The top-level kernel: by convention, the last defined function."""
        if not self.functions:
            raise KeyError("translation unit has no functions")
        return self.functions[-1]


def walk_stmts(stmt: Stmt) -> Sequence[Stmt]:
    """Pre-order traversal of a statement subtree (including ``stmt``)."""
    out: List[Stmt] = [stmt]
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            out.extend(walk_stmts(child))
    elif isinstance(stmt, ForStmt):
        out.extend(walk_stmts(stmt.body))
    elif isinstance(stmt, WhileStmt):
        out.extend(walk_stmts(stmt.body))
    elif isinstance(stmt, IfStmt):
        out.extend(walk_stmts(stmt.then))
        if stmt.otherwise is not None:
            out.extend(walk_stmts(stmt.otherwise))
    return out


def collect_loops(root: Stmt) -> List[ForStmt]:
    """Return all ``for`` loops under ``root`` in pre-order."""
    return [s for s in walk_stmts(root) if isinstance(s, ForStmt)]
