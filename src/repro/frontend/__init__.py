"""C-subset front-end: lexer, parser, pragma handling, semantic checks.

This package substitutes for the Clang front-end in the original GNN-DSE
flow (Fig. 3 of the paper): kernel C source in, AST + pragma placeholders
out.  See :mod:`repro.ir.lowering` for the AST → IR step.
"""

from .ast_nodes import (
    ArrayRef,
    AssignStmt,
    BinaryOp,
    Block,
    Call,
    Cast,
    CType,
    DeclStmt,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDef,
    IfStmt,
    IntLiteral,
    ParamDecl,
    PragmaDirective,
    ReturnStmt,
    TernaryOp,
    TranslationUnit,
    UnaryOp,
    VarRef,
    WhileStmt,
    collect_loops,
    walk_stmts,
)
from .interpreter import InterpreterError, run_function, run_kernel
from .lexer import Lexer, Token, TokenType, tokenize
from .parser import Parser, parse_source
from .pragmas import (
    Pragma,
    PragmaKind,
    PipelineOption,
    annotate_candidates,
    collect_pragmas,
    parse_pragma,
)
from .semantic import INTRINSICS, Symbol, SymbolTable, analyze, infer_expr_type

__all__ = [
    "ArrayRef",
    "AssignStmt",
    "BinaryOp",
    "Block",
    "Call",
    "Cast",
    "CType",
    "DeclStmt",
    "ExprStmt",
    "FloatLiteral",
    "ForStmt",
    "FunctionDef",
    "IfStmt",
    "IntLiteral",
    "ParamDecl",
    "PragmaDirective",
    "ReturnStmt",
    "TernaryOp",
    "TranslationUnit",
    "UnaryOp",
    "VarRef",
    "WhileStmt",
    "collect_loops",
    "walk_stmts",
    "InterpreterError",
    "run_function",
    "run_kernel",
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse_source",
    "Pragma",
    "PragmaKind",
    "PipelineOption",
    "annotate_candidates",
    "collect_pragmas",
    "parse_pragma",
    "INTRINSICS",
    "Symbol",
    "SymbolTable",
    "analyze",
    "infer_expr_type",
]
