"""Functional interpreter for the C subset.

Executes a parsed kernel on numpy arrays, giving the front-end an
end-to-end *semantic* test oracle: ``gemm-ncubed`` really multiplies
matrices, ``nw`` really fills the Needleman-Wunsch table, and so on.
Used by the test suite with shrunken problem sizes (the lexer lets
callers override ``#define`` macros).

The interpreter is deliberately straightforward — Python loops over the
AST — so it stays an obviously-correct reference, not a fast one.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..errors import FrontendError
from . import ast_nodes as ast

__all__ = ["run_function", "run_kernel", "InterpreterError"]


class InterpreterError(FrontendError):
    """Raised on runtime errors while interpreting a kernel."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


_INTRINSICS = {
    "sqrt": math.sqrt,
    "sqrtf": math.sqrt,
    "fabs": abs,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "pow": math.pow,
    "min": min,
    "max": max,
}


class _Interpreter:
    def __init__(self, unit: ast.TranslationUnit):
        self._unit = unit

    # -- functions ----------------------------------------------------------

    def call(self, name: str, args: List):
        fn = self._unit.function(name)
        if len(args) != len(fn.params):
            raise InterpreterError(
                f"{name} expects {len(fn.params)} arguments, got {len(args)}"
            )
        env: Dict[str, object] = {}
        for param, value in zip(fn.params, args):
            if param.ctype.is_array:
                array = np.asarray(value)
                if param.ctype.dims and all(d > 0 for d in param.ctype.dims):
                    expected = param.ctype.num_elements()
                    if array.size != expected:
                        raise InterpreterError(
                            f"{name}: argument {param.name} has {array.size} "
                            f"elements, expected {expected}"
                        )
                    array = array.reshape(param.ctype.dims)
                env[param.name] = array
            else:
                env[param.name] = float(value) if param.ctype.is_float else int(value)
        try:
            self._exec_block(fn.body, env)
        except _Return as ret:
            return ret.value
        return None

    # -- statements ----------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Dict) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Dict) -> None:
        if isinstance(stmt, ast.DeclStmt):
            if stmt.ctype.is_array:
                dtype = np.float64 if stmt.ctype.is_float else np.int64
                env[stmt.name] = np.zeros(stmt.ctype.dims, dtype=dtype)
            else:
                value = self._eval(stmt.init, env) if stmt.init is not None else 0
                env[stmt.name] = self._coerce(value, stmt.ctype)
        elif isinstance(stmt, ast.AssignStmt):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.IfStmt):
            if self._eval(stmt.cond, env):
                self._exec_block(stmt.then, env)
            elif stmt.otherwise is not None:
                self._exec_block(stmt.otherwise, env)
        elif isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.WhileStmt):
            while self._eval(stmt.cond, env):
                try:
                    self._exec_block(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.ReturnStmt):
            raise _Return(self._eval(stmt.value, env) if stmt.value else None)
        elif isinstance(stmt, ast.BreakStmt):
            raise _Break()
        elif isinstance(stmt, ast.ContinueStmt):
            raise _Continue()
        else:
            raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.ForStmt, env: Dict) -> None:
        if stmt.init is not None:
            self._exec_stmt(stmt.init, env)
        while stmt.cond is None or self._eval(stmt.cond, env):
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                break
            except _Continue:
                pass
            if stmt.step is not None:
                self._exec_stmt(stmt.step, env)

    def _exec_assign(self, stmt: ast.AssignStmt, env: Dict) -> None:
        value = self._eval(stmt.value, env)
        if stmt.op:
            current = self._eval(stmt.target, env)
            value = self._binary(stmt.op, current, value)
        target = stmt.target
        if isinstance(target, ast.VarRef):
            previous = env.get(target.name)
            if isinstance(previous, float):
                value = float(value)
            elif isinstance(previous, int) and not isinstance(previous, bool):
                value = int(value)
            env[target.name] = value
        elif isinstance(target, ast.ArrayRef):
            array = env[target.base]
            index = tuple(int(self._eval(i, env)) for i in target.indices)
            try:
                array[index] = value
            except IndexError:
                raise InterpreterError(
                    f"store out of bounds: {target.base}{list(index)}"
                ) from None
        else:
            raise InterpreterError("bad assignment target")

    # -- expressions -----------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Dict):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.VarRef):
            try:
                return env[expr.name]
            except KeyError:
                raise InterpreterError(f"undefined variable {expr.name!r}") from None
        if isinstance(expr, ast.ArrayRef):
            array = env[expr.base]
            index = tuple(int(self._eval(i, env)) for i in expr.indices)
            try:
                value = array[index]
            except IndexError:
                raise InterpreterError(
                    f"load out of bounds: {expr.base}{list(index)}"
                ) from None
            return value.item() if hasattr(value, "item") and value.ndim == 0 else value
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return int(not value)
            if expr.op == "~":
                return ~int(value)
            raise InterpreterError(f"unknown unary {expr.op!r}")
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                return int(bool(self._eval(expr.lhs, env)) and bool(self._eval(expr.rhs, env)))
            if expr.op == "||":
                return int(bool(self._eval(expr.lhs, env)) or bool(self._eval(expr.rhs, env)))
            return self._binary(expr.op, self._eval(expr.lhs, env), self._eval(expr.rhs, env))
        if isinstance(expr, ast.TernaryOp):
            if self._eval(expr.cond, env):
                return self._eval(expr.then, env)
            return self._eval(expr.otherwise, env)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, env)
            if expr.target.is_float:
                return float(value)
            return int(value)
        if isinstance(expr, ast.Call):
            args = [self._eval(a, env) for a in expr.args]
            if expr.name in _INTRINSICS:
                return _INTRINSICS[expr.name](*args)
            return self.call(expr.name, args)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    @staticmethod
    def _binary(op: str, lhs, rhs):
        both_int = isinstance(lhs, (int, np.integer)) and isinstance(rhs, (int, np.integer))
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise InterpreterError("division by zero")
            if both_int:
                return int(lhs / rhs)  # C truncating division
            return lhs / rhs
        if op == "%":
            if rhs == 0:
                raise InterpreterError("modulo by zero")
            return int(math.fmod(lhs, rhs)) if both_int else math.fmod(lhs, rhs)
        if op in ("<", ">", "<=", ">=", "==", "!="):
            table = {
                "<": lhs < rhs, ">": lhs > rhs, "<=": lhs <= rhs,
                ">=": lhs >= rhs, "==": lhs == rhs, "!=": lhs != rhs,
            }
            return int(table[op])
        if op == "&":
            return int(lhs) & int(rhs)
        if op == "|":
            return int(lhs) | int(rhs)
        if op == "^":
            return int(lhs) ^ int(rhs)
        if op == "<<":
            return int(lhs) << int(rhs)
        if op == ">>":
            return int(lhs) >> int(rhs)
        raise InterpreterError(f"unknown operator {op!r}")

    @staticmethod
    def _coerce(value, ctype: ast.CType):
        return float(value) if ctype.is_float else int(value)


def run_function(unit: ast.TranslationUnit, name: str, args: List):
    """Interpret ``name`` from a parsed unit.  Array arguments are
    mutated in place (C semantics); the return value is the function's."""
    return _Interpreter(unit).call(name, args)


def run_kernel(unit: ast.TranslationUnit, args: List):
    """Interpret the unit's top-level kernel function."""
    return run_function(unit, unit.top.name, args)
