"""Parsing and modelling of ``#pragma ACCEL`` directives.

The Merlin compiler (Section 2.3 of the paper) exposes exactly three
pragmas, each attached to a ``for`` loop::

    #pragma ACCEL pipeline auto{__PIPE__L0}
    #pragma ACCEL parallel factor=auto{__PARA__L0}
    #pragma ACCEL tile factor=auto{__TILE__L0}

``auto{NAME}`` is a *placeholder*: the design-space explorer substitutes a
concrete option for ``NAME`` in every design point.  A directive may also
carry a fixed value (e.g. ``factor=4``), in which case it is not a tunable
knob.  Pipeline options are ``off`` / ``cg`` / ``fg`` (coarse-/fine-grained);
parallel and tile options are positive integer factors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Union

from ..errors import PragmaError
from . import ast_nodes as ast

__all__ = [
    "PragmaKind",
    "PipelineOption",
    "Pragma",
    "parse_pragma",
    "collect_pragmas",
    "annotate_candidates",
    "AUTO_RE",
]

AUTO_RE = re.compile(r"auto\{([A-Za-z_][A-Za-z0-9_]*)\}")


class PragmaKind(Enum):
    """The three Merlin pragma kinds, ordered by their graph `position`.

    The integer values match the ``position`` edge attribute of
    Section 4.2: tile=0, pipeline=1, parallel=2.
    """

    TILE = 0
    PIPELINE = 1
    PARALLEL = 2

    @property
    def keyword(self) -> str:
        return self.name.lower()


class PipelineOption(str, Enum):
    """Options for the pipeline pragma: off, coarse-grained, fine-grained."""

    OFF = "off"
    COARSE = "cg"
    FINE = "fg"


#: A concrete pragma value: a PipelineOption for pipeline, an int factor
#: for parallel/tile.
PragmaValue = Union[PipelineOption, int]


@dataclass
class Pragma:
    """One ``#pragma ACCEL`` directive attached to a loop.

    Attributes
    ----------
    kind:
        pipeline / parallel / tile.
    placeholder:
        The ``auto{NAME}`` placeholder name, or None when the value is fixed.
    fixed_value:
        Concrete value when the directive is not tunable, else None.
    loop_label:
        Label of the ``for`` loop this pragma is attached to (``L0``...),
        filled in by :func:`collect_pragmas`.
    function:
        Name of the enclosing function.
    """

    kind: PragmaKind
    placeholder: Optional[str] = None
    fixed_value: Optional[PragmaValue] = None
    loop_label: str = ""
    function: str = ""

    @property
    def is_tunable(self) -> bool:
        return self.placeholder is not None

    @property
    def name(self) -> str:
        """Stable identifier of this knob (placeholder name when tunable)."""
        if self.placeholder:
            return self.placeholder
        return f"__{self.kind.keyword.upper()}__{self.function}__{self.loop_label}"

    def render(self, value: Optional[PragmaValue] = None) -> str:
        """Render the directive text with ``value`` substituted.

        When ``value`` is None the placeholder form is rendered back.
        """
        if value is None and self.fixed_value is not None:
            value = self.fixed_value
        if value is None:
            option = f"auto{{{self.placeholder}}}"
        elif isinstance(value, PipelineOption):
            option = value.value
        else:
            option = str(int(value))
        if self.kind is PragmaKind.PIPELINE:
            return f"ACCEL pipeline {option}"
        return f"ACCEL {self.kind.keyword} factor={option}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pragma({self.kind.keyword}, {self.name}, loop={self.function}/{self.loop_label})"


_PIPELINE_RE = re.compile(r"^ACCEL\s+pipeline\s*(?:\b(off|cg|fg|flatten)\b)?\s*(.*)$", re.IGNORECASE)
_FACTOR_RE = re.compile(r"^ACCEL\s+(parallel|tile)\s*(?:factor\s*=\s*(\S+))?\s*$", re.IGNORECASE)


def parse_pragma(text: str) -> Optional[Pragma]:
    """Parse one directive body (the text after ``#pragma``).

    Returns None for non-ACCEL pragmas (e.g. ``HLS`` pragmas the kernels
    might carry), raises :class:`PragmaError` for malformed ACCEL ones.
    """
    stripped = text.strip()
    if not stripped.upper().startswith("ACCEL"):
        return None
    m = _PIPELINE_RE.match(stripped)
    if m and "pipeline" in stripped.lower():
        option_kw, rest = m.group(1), m.group(2).strip()
        auto = AUTO_RE.search(rest or "") or AUTO_RE.search(stripped)
        if auto:
            return Pragma(PragmaKind.PIPELINE, placeholder=auto.group(1))
        if option_kw:
            kw = option_kw.lower()
            if kw == "flatten":
                kw = "fg"
            return Pragma(PragmaKind.PIPELINE, fixed_value=PipelineOption(kw))
        # Bare "ACCEL pipeline" means pipeline unconditionally (cg).
        return Pragma(PragmaKind.PIPELINE, fixed_value=PipelineOption.COARSE)
    m = _FACTOR_RE.match(stripped)
    if m:
        kind = PragmaKind.PARALLEL if m.group(1).lower() == "parallel" else PragmaKind.TILE
        option = m.group(2)
        if option is None:
            raise PragmaError(f"missing factor= in {text!r}")
        auto = AUTO_RE.match(option)
        if auto:
            return Pragma(kind, placeholder=auto.group(1))
        try:
            return Pragma(kind, fixed_value=int(option))
        except ValueError as exc:
            raise PragmaError(f"bad factor {option!r} in {text!r}") from exc
    raise PragmaError(f"unrecognised ACCEL pragma: {text!r}")


def collect_pragmas(unit: ast.TranslationUnit) -> List[Pragma]:
    """Collect every ACCEL pragma of a translation unit, loop-resolved.

    Pragmas are returned in source order; each carries the label of the
    loop it annotates and the enclosing function name.  Duplicate
    placeholder names raise :class:`PragmaError` (each knob must be
    uniquely addressable).
    """
    pragmas: List[Pragma] = []
    seen: Dict[str, str] = {}
    for fn in unit.functions:
        for loop in ast.collect_loops(fn.body):
            for directive in loop.pragmas:
                pragma = parse_pragma(directive.text)
                if pragma is None:
                    continue
                pragma.loop_label = loop.label
                pragma.function = fn.name
                if pragma.is_tunable:
                    where = f"{fn.name}/{loop.label}"
                    if pragma.placeholder in seen:
                        raise PragmaError(
                            f"placeholder {pragma.placeholder!r} used at both "
                            f"{seen[pragma.placeholder]} and {where}"
                        )
                    seen[pragma.placeholder] = where
                pragmas.append(pragma)
    return pragmas


def annotate_candidates(unit: ast.TranslationUnit) -> List[Pragma]:
    """Insert candidate pragma placeholders on every un-annotated loop.

    This implements the "Candidate Pragma Generator" of Fig. 3: each
    ``for`` loop can take up to three pragmas (pipeline, parallel, tile).
    Loops that already carry ACCEL pragmas are left untouched.  Tile
    pragmas are only proposed for loops that contain a nested loop, as
    tiling an innermost loop has no cache to exploit.

    Returns the full pragma list of the (mutated) unit.
    """
    for fn in unit.functions:
        for loop in ast.collect_loops(fn.body):
            if any(parse_pragma(p.text) for p in loop.pragmas):
                continue
            suffix = f"__{fn.name}__{loop.label}"
            has_subloop = bool(ast.collect_loops(loop.body))
            directives = []
            if has_subloop:
                directives.append(f"ACCEL tile factor=auto{{__TILE{suffix}}}")
            directives.append(f"ACCEL pipeline auto{{__PIPE{suffix}}}")
            directives.append(f"ACCEL parallel factor=auto{{__PARA{suffix}}}")
            loop.pragmas = [ast.PragmaDirective(text=t, line=loop.line) for t in directives]
    return collect_pragmas(unit)
