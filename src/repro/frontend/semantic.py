"""Semantic analysis: symbol resolution and light type checking.

This pass validates the AST before IR lowering:

* every identifier is declared (parameter, local, or loop variable);
* called functions are defined in the unit or are known intrinsics;
* subscript depth does not exceed the declared array rank;
* assignment targets are variables or array elements.

It produces per-function :class:`SymbolTable` objects that the lowering
pass reuses, so name resolution logic lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..errors import SemanticError
from . import ast_nodes as ast

__all__ = ["Symbol", "SymbolTable", "analyze", "INTRINSICS"]

#: Functions treated as known math intrinsics (lowered to single IR calls).
INTRINSICS: Dict[str, ast.CType] = {
    "sqrt": ast.CType("double"),
    "sqrtf": ast.CType("float"),
    "fabs": ast.CType("double"),
    "abs": ast.CType("int"),
    "exp": ast.CType("double"),
    "log": ast.CType("double"),
    "sin": ast.CType("double"),
    "cos": ast.CType("double"),
    "pow": ast.CType("double"),
    "min": ast.CType("int"),
    "max": ast.CType("int"),
}


@dataclass
class Symbol:
    """A named program entity (parameter or local)."""

    name: str
    ctype: ast.CType
    is_param: bool = False

    @property
    def is_array(self) -> bool:
        return self.ctype.is_array


@dataclass
class SymbolTable:
    """Flat per-function symbol table (C block scoping approximated).

    Kernel code in our subset never shadows names across blocks, so a
    flat table per function is faithful and keeps lookups trivial.
    """

    function: str
    symbols: Dict[str, Symbol] = field(default_factory=dict)

    def declare(self, name: str, ctype: ast.CType, is_param: bool = False) -> Symbol:
        if name in self.symbols:
            # Re-declaration with identical type occurs for loop variables
            # reused across loops (e.g. two `for (int i = ...)`); accept it.
            existing = self.symbols[name]
            if existing.ctype != ctype:
                raise SemanticError(
                    f"{self.function}: conflicting declarations of {name!r}: "
                    f"{existing.ctype} vs {ctype}"
                )
            return existing
        symbol = Symbol(name, ctype, is_param)
        self.symbols[name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise SemanticError(f"{self.function}: use of undeclared identifier {name!r}") from None

    def arrays(self) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.is_array]


class _Checker:
    def __init__(self, unit: ast.TranslationUnit):
        self._unit = unit
        self._functions: Set[str] = {fn.name for fn in unit.functions}

    def run(self) -> Dict[str, SymbolTable]:
        tables: Dict[str, SymbolTable] = {}
        for fn in self._unit.functions:
            tables[fn.name] = self._check_function(fn)
        return tables

    def _check_function(self, fn: ast.FunctionDef) -> SymbolTable:
        table = SymbolTable(fn.name)
        for param in fn.params:
            table.declare(param.name, param.ctype, is_param=True)
        self._check_block(fn.body, table)
        return table

    def _check_block(self, block: ast.Block, table: SymbolTable) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, table)

    def _check_stmt(self, stmt: ast.Stmt, table: SymbolTable) -> None:
        if isinstance(stmt, ast.DeclStmt):
            table.declare(stmt.name, stmt.ctype)
            if stmt.init is not None:
                if stmt.ctype.is_array:
                    raise SemanticError(
                        f"{table.function}: array initialisers are not supported ({stmt.name})"
                    )
                self._check_expr(stmt.init, table)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_assign_target(stmt.target, table)
            self._check_expr(stmt.value, table)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, table)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, table)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.cond, table)
            self._check_block(stmt.then, table)
            if stmt.otherwise is not None:
                self._check_block(stmt.otherwise, table)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._check_stmt(stmt.init, table)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, table)
            if stmt.step is not None:
                self._check_stmt(stmt.step, table)
            self._check_block(stmt.body, table)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_expr(stmt.cond, table)
            self._check_block(stmt.body, table)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._check_expr(stmt.value, table)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass
        else:
            raise SemanticError(f"{table.function}: unsupported statement {type(stmt).__name__}")

    def _check_assign_target(self, target: ast.Expr, table: SymbolTable) -> None:
        if isinstance(target, ast.VarRef):
            symbol = table.lookup(target.name)
            if symbol.is_array:
                raise SemanticError(
                    f"{table.function}: cannot assign whole array {target.name!r}"
                )
        elif isinstance(target, ast.ArrayRef):
            self._check_array_ref(target, table)
        else:
            raise SemanticError(
                f"{table.function}: assignment target must be a variable or array element"
            )

    def _check_array_ref(self, ref: ast.ArrayRef, table: SymbolTable) -> None:
        symbol = table.lookup(ref.base)
        if not symbol.is_array:
            raise SemanticError(f"{table.function}: {ref.base!r} subscripted but not an array")
        if len(ref.indices) > len(symbol.ctype.dims):
            raise SemanticError(
                f"{table.function}: {ref.base!r} has rank {len(symbol.ctype.dims)} "
                f"but is subscripted {len(ref.indices)} times"
            )
        for index in ref.indices:
            self._check_expr(index, table)

    def _check_expr(self, expr: ast.Expr, table: SymbolTable) -> None:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
            return
        if isinstance(expr, ast.VarRef):
            table.lookup(expr.name)
            return
        if isinstance(expr, ast.ArrayRef):
            self._check_array_ref(expr, table)
            return
        if isinstance(expr, ast.UnaryOp):
            self._check_expr(expr.operand, table)
            return
        if isinstance(expr, ast.BinaryOp):
            self._check_expr(expr.lhs, table)
            self._check_expr(expr.rhs, table)
            return
        if isinstance(expr, ast.TernaryOp):
            self._check_expr(expr.cond, table)
            self._check_expr(expr.then, table)
            self._check_expr(expr.otherwise, table)
            return
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, table)
            return
        if isinstance(expr, ast.Call):
            if expr.name not in self._functions and expr.name not in INTRINSICS:
                raise SemanticError(
                    f"{table.function}: call to unknown function {expr.name!r}"
                )
            for arg in expr.args:
                self._check_expr(arg, table)
            return
        raise SemanticError(f"{table.function}: unsupported expression {type(expr).__name__}")


def analyze(unit: ast.TranslationUnit) -> Dict[str, SymbolTable]:
    """Run semantic analysis, returning a symbol table per function.

    Raises :class:`~repro.errors.SemanticError` on the first violation.
    """
    return _Checker(unit).run()


def infer_expr_type(expr: ast.Expr, table: SymbolTable) -> ast.CType:
    """Best-effort static type of ``expr`` (int/float/double).

    Follows C's usual arithmetic conversions in spirit: any double operand
    makes the result double, else any float makes it float, else int.
    """
    if isinstance(expr, ast.IntLiteral):
        return ast.CType("int")
    if isinstance(expr, ast.FloatLiteral):
        return ast.CType("double")
    if isinstance(expr, ast.VarRef):
        ctype = table.lookup(expr.name).ctype
        return ast.CType(ctype.base)
    if isinstance(expr, ast.ArrayRef):
        ctype = table.lookup(expr.base).ctype
        if len(expr.indices) < len(ctype.dims):
            return ast.CType(ctype.base, ctype.dims[len(expr.indices):])
        return ast.CType(ctype.base)
    if isinstance(expr, ast.UnaryOp):
        return infer_expr_type(expr.operand, table)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||"):
            return ast.CType("int")
        lhs = infer_expr_type(expr.lhs, table)
        rhs = infer_expr_type(expr.rhs, table)
        return _combine(lhs, rhs)
    if isinstance(expr, ast.TernaryOp):
        return _combine(infer_expr_type(expr.then, table), infer_expr_type(expr.otherwise, table))
    if isinstance(expr, ast.Cast):
        return ast.CType(expr.target.base)
    if isinstance(expr, ast.Call):
        if expr.name in INTRINSICS:
            return INTRINSICS[expr.name]
        return ast.CType("int")
    return ast.CType("int")


def _combine(lhs: ast.CType, rhs: ast.CType) -> ast.CType:
    for base in ("double", "float", "long"):
        if lhs.base == base or rhs.base == base:
            return ast.CType(base)
    return ast.CType("int")
