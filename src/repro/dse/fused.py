"""Fused lazy-engine evaluation for the DSE pipeline (``--engine fused``).

Where :class:`~repro.dse.pipeline.CompiledGNNEngine` hand-lowers the
paper's exact TransformerConv architecture into numpy (bit-identical,
per-copy GEMMs), this engine runs the *model's own forward* with a
:class:`~repro.nn.lazy.graph.LazyTensor` input, so it supports every
GNN the eager engine can express (any conv type, any JKN mode) and
inherits the lazy executor's optimizations:

* the whole candidate batch flows through each ``Linear`` as ONE tall
  ``(B*N, F) @ (F, out)`` GEMM instead of per-graph-copy GEMMs,
* the q/k/v/root projections of one layer (same input node, constant
  2-D weights) stack into a single wide GEMM,
* elementwise chains execute in place on pooled buffers.

The price is tolerance-level (not bit-level) agreement with the eager
reference: batching changes BLAS reduction blocking and stacking
re-associates column blocks.  :class:`~repro.dse.pipeline.
EvaluationPipeline` therefore verifies the first fused batch per
kernel against the eager predictor (:mod:`repro.nn.lazy.equiv`).

Template reuse mirrors the compiled path: one
:class:`_FusedTemplate` per (kernel, capacity) holds the tiled batch
structure; ``set_point`` rewrites only the pragma feature rows of one
slot, and the LazyTensor source wraps the template's array *by
reference*, so patches flow into the next recorded forward.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..graph.encoding import PRAGMA_FEATURE_SLICE
from ..model.models import GNNDSEModel
from ..nn.data import Batch, GraphData
from ..nn.lazy.graph import LazyTensor
from ..nn.tensor import Tensor, no_grad

__all__ = ["FusedGNNEngine", "_FusedTemplate"]


class _FusedTemplate:
    """Fixed-capacity batch of one kernel's graph for the fused engine.

    Built with :meth:`Batch.from_graphs` on ``capacity`` copies of the
    encoded kernel graph, so edge ordering, self-loops, and segment
    structure are — by construction — exactly what the eager reference
    builds for the same candidates.
    """

    def __init__(self, enc, capacity: int):
        self.enc = enc
        self.capacity = capacity
        self.num_nodes = enc.num_nodes
        graph = GraphData(
            x=enc.x_base,
            edge_index=enc.edge_index,
            edge_attr=enc.edge_attr,
            kernel=getattr(enc, "kernel", ""),
        )
        self.batch = Batch.from_graphs([graph] * capacity)
        # from_graphs concatenated fresh default-dtype arrays; keep the
        # node-feature matrix and hand the model a LazyTensor viewing it
        # by reference, so set_point patches reach the next forward.
        self.x = self.batch.x
        self.batch.x = LazyTensor(self.x)
        self.batch.edge_projection = self.edge_projection
        self._edge_proj_cache: Dict[int, Tensor] = {}

    def set_point(self, slot: int, point) -> None:
        """Write one candidate's pragma features into a template slot."""
        rows, values = self.enc.pragma_patch(point)
        self.x[slot * self.num_nodes + rows, PRAGMA_FEATURE_SLICE] = values

    def edge_projection(self, lin) -> Tensor:
        """Memoised ``lin(edge_attr)`` (see ``TransformerConv.forward``).

        Edge attributes are design-point-independent, so each edge
        Linear projects them once per template, not once per forward.
        Keyed by layer identity; stale only if a layer's weights are
        retrained in place, which (as with the compiled engine's
        precomputed projections) requires a fresh pipeline/template.
        """
        cached = self._edge_proj_cache.get(id(lin))
        if cached is None:
            with no_grad():
                cached = Tensor(lin(Tensor(self.batch.edge_attr)).data)
            self._edge_proj_cache[id(lin)] = cached
        return cached


class FusedGNNEngine:
    """One GNN model running on the fused lazy engine over a template."""

    def __init__(self, model, template: _FusedTemplate):
        self.model = model
        self.template = template

    @staticmethod
    def supports(model) -> bool:
        """True for any full GNN model (conv stack + pool + heads).

        Broader than the compiled engine: conv type and JKN mode are
        unconstrained because the model's own forward does the math.
        MLP baselines (``PragmaMLPModel``/``ContextMLPModel``) read
        batch extras the template does not carry, so they fall back.
        """
        return isinstance(model, GNNDSEModel) and bool(getattr(model, "convs", None))

    def record(self) -> LazyTensor:
        """Record one forward over the template batch without realizing."""
        with no_grad():
            return self.model(self.template.batch)

    def forward(self) -> np.ndarray:
        """Record + realize one forward over the template batch."""
        return self.record().data


def forward_all(engines: Dict[str, "FusedGNNEngine"], names) -> Dict[str, np.ndarray]:
    """Record every named engine's forward, then realize them together.

    One joint realize lets the executor stack GEMMs *across* models:
    the classifier's and regressors' first-layer projections all read
    the same node-feature source, so they fuse into one wide GEMM over
    the shared input — on top of sharing schedule/buffer bookkeeping.
    """
    from ..nn.lazy.engine import realize

    recorded = {name: engines[name].record() for name in names}
    realize([t._node for t in recorded.values()])
    return {name: t.data for name, t in recorded.items()}
