"""Budgeted search strategies over one shared surrogate-query ledger.

The meta-searcher (:mod:`repro.dse.race`) races structurally different
strategies — simulated annealing, bottleneck-style greedy hill
climbing, the RL policy explorer, and random sampling — under **one**
query budget.  Everything they share lives here:

- :class:`QueryBudget` — the hard cap on *distinct* design points
  pushed through the surrogate.  Revisits are served from the shared
  memo for free (exactly how the evaluation pipeline's point cache
  behaves), so strategies compete on model compute, not on how often
  they re-probe known points.
- :class:`BudgetedEvaluator` — batches candidate points through the
  :class:`~repro.dse.pipeline.EvaluationPipeline` in lockstep (the
  ``run_many`` pattern from PR 1: one surrogate batch per step across
  all chains/episodes), charges the budget for memo misses only, and
  maintains the **shared** top-M list and Pareto front every strategy
  contributes to.
- :class:`SearchStrategy` — the stepper interface the racer drives:
  ``step(grant)`` advances the strategy until ``grant`` queries are
  spent (or it stalls), reporting how many new Pareto points the spend
  produced — the bandit's reward signal.

Every strategy draws from its own ``random.Random(seed)`` stream in a
fixed order, so a seeded run's edit trajectory and budget ledger are
bit-reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..designspace.space import DesignPoint, DesignSpace, point_key
from ..errors import ReproError
from .pareto import pareto_merge
from .search import PARETO_KEYS, DSECandidate

__all__ = [
    "AnnealingStrategy",
    "BudgetedEvaluator",
    "GreedyStrategy",
    "QueryBudget",
    "RandomStrategy",
    "SearchStrategy",
    "StepOutcome",
    "build_strategy",
]


class BudgetExhausted(ReproError):
    """Internal signal: the shared query budget is fully spent."""


class QueryBudget:
    """Hard cap on distinct surrogate queries, shared by all strategies."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ReproError(f"query budget must be >= 1, got {limit}")
        self.limit = int(limit)
        self.spent = 0

    @property
    def remaining(self) -> int:
        return self.limit - self.spent

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def charge(self, queries: int) -> None:
        if queries > self.remaining:
            raise ReproError(
                f"budget overrun: {queries} queries requested, "
                f"{self.remaining} remaining"
            )
        self.spent += queries


def _candidate_objectives(candidate: DSECandidate) -> Dict[str, float]:
    return candidate.prediction.objectives


class BudgetedEvaluator:
    """Shared, memoised, budget-charging surrogate evaluator.

    One instance is shared by every strategy in a race: the memo, the
    top-M list, and the Pareto front are global, so a point one
    strategy already paid for is free for the others and the front is
    the union of everyone's discoveries.
    """

    def __init__(
        self,
        pipeline,
        spec,
        space: DesignSpace,
        budget: QueryBudget,
        top_m: int = 10,
        fit_threshold: float = 0.8,
    ):
        self.pipeline = pipeline
        self.spec = spec
        self.space = space
        self.budget = budget
        self.top_m = top_m
        self.fit_threshold = fit_threshold
        self.memo: Dict[str, DSECandidate] = {}
        self.top: List[DSECandidate] = []
        self.pareto: List[DSECandidate] = []
        self._front_keys: set = set()

    # -- frontier bookkeeping ---------------------------------------------------

    def usable(self, candidate: DSECandidate) -> bool:
        p = candidate.prediction
        return p.valid and p.fits(self.fit_threshold)

    def _merge_top(self, batch: List[DSECandidate]) -> None:
        merged = self.top + [c for c in batch if self.usable(c)]
        merged.sort(key=lambda c: c.predicted_latency)
        seen: set = set()
        unique: List[DSECandidate] = []
        for candidate in merged:
            key = point_key(candidate.point)
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
            if len(unique) >= self.top_m:
                break
        self.top = unique

    def _admit(self, fresh: List[DSECandidate]) -> List[bool]:
        """Merge newly evaluated candidates; flag the new front members."""
        usable = [c for c in fresh if self.usable(c)]
        self.pareto = pareto_merge(
            self.pareto, usable, _candidate_objectives, PARETO_KEYS
        )
        front_keys = {point_key(c.point) for c in self.pareto}
        flags = [
            point_key(c.point) in front_keys
            and point_key(c.point) not in self._front_keys
            for c in fresh
        ]
        self._front_keys = front_keys
        self._merge_top(fresh)
        return flags

    # -- evaluation -------------------------------------------------------------

    def evaluate(
        self, points: Sequence[DesignPoint]
    ) -> Tuple[List[Optional[DSECandidate]], List[bool]]:
        """Score ``points`` in one lockstep surrogate batch.

        Memo hits are free; distinct new points are charged against the
        budget.  When the remaining budget cannot cover every new point
        the batch is truncated deterministically (first-come order) and
        the dropped tail comes back as ``None``.  The second list flags,
        per input point, whether it just entered the shared Pareto
        front — the novelty signal the RL reward and the racer's bandit
        both consume.
        """
        keys = [point_key(p) for p in points]
        new_keys: List[str] = []
        new_points: List[DesignPoint] = []
        for key, point in zip(keys, points):
            if key not in self.memo and key not in new_keys:
                new_keys.append(key)
                new_points.append(point)
        affordable = min(len(new_points), self.budget.remaining)
        new_keys, new_points = new_keys[:affordable], new_points[:affordable]
        fresh_flags: Dict[str, bool] = {}
        if new_points:
            self.budget.charge(len(new_points))
            predictions = self.pipeline.predict_batch(
                self.spec.name, new_points, objectives_for="valid"
            )
            fresh = [
                DSECandidate(point, prediction)
                for point, prediction in zip(new_points, predictions)
            ]
            for key, candidate in zip(new_keys, fresh):
                self.memo[key] = candidate
            fresh_flags = dict(zip(new_keys, self._admit(fresh)))
        out: List[Optional[DSECandidate]] = []
        novel: List[bool] = []
        seen_in_call: set = set()
        for key in keys:
            out.append(self.memo.get(key))
            is_novel = fresh_flags.get(key, False) and key not in seen_in_call
            novel.append(is_novel)
            seen_in_call.add(key)
        return out, novel

    @property
    def queries(self) -> int:
        return self.budget.spent


@dataclass
class StepOutcome:
    """What one racer grant bought from one strategy."""

    queries: int = 0  #: budget spent during the step
    new_pareto: int = 0  #: points admitted to the shared front
    proposals: int = 0  #: candidate points proposed (incl. memo hits)
    stalled: bool = False  #: the strategy could not spend its grant

    def merge(self, other: "StepOutcome") -> None:
        self.queries += other.queries
        self.new_pareto += other.new_pareto
        self.proposals += other.proposals
        self.stalled = other.stalled


class SearchStrategy:
    """Base stepper: propose batches until the grant is spent.

    Subclasses implement :meth:`propose` (the next lockstep batch of
    candidate points) and :meth:`observe` (scored results, for state
    updates).  The base ``step`` loop enforces the grant, counts
    novelty, and stalls out when proposals stop costing budget — a
    strategy cycling over known points cannot spin forever.
    """

    name = "strategy"

    #: Consecutive zero-cost proposal rounds before declaring a stall.
    STALL_ROUNDS = 8

    def __init__(self, evaluator: BudgetedEvaluator, seed: int = 0):
        self.evaluator = evaluator
        self.rng = random.Random(f"{self.name}:{seed}")

    # -- subclass hooks ---------------------------------------------------------

    def propose(self) -> List[DesignPoint]:  # pragma: no cover - abstract
        raise NotImplementedError

    def observe(
        self,
        points: List[DesignPoint],
        candidates: List[Optional[DSECandidate]],
        novel: List[bool],
    ) -> None:
        """Consume scored proposals; default keeps no state."""

    # -- the budget-bounded stepping loop ---------------------------------------

    def step(self, grant: int) -> StepOutcome:
        outcome = StepOutcome()
        spent_before = self.evaluator.queries
        idle_rounds = 0
        while (
            self.evaluator.queries - spent_before < grant
            and not self.evaluator.budget.exhausted
        ):
            points = self.propose()
            if not points:
                outcome.stalled = True
                break
            before = self.evaluator.queries
            candidates, novel = self.evaluator.evaluate(points)
            self.observe(points, candidates, novel)
            outcome.proposals += len(points)
            outcome.new_pareto += sum(novel)
            if self.evaluator.queries == before:
                idle_rounds += 1
                if idle_rounds >= self.STALL_ROUNDS:
                    outcome.stalled = True
                    break
            else:
                idle_rounds = 0
        outcome.queries = self.evaluator.queries - spent_before
        return outcome

    # -- shared scoring ---------------------------------------------------------

    def score(self, candidate: Optional[DSECandidate]) -> float:
        """Scalarised objective (minimised): latency for usable points."""
        if candidate is None or not self.evaluator.usable(candidate):
            return float("inf")
        return candidate.predicted_latency


class RandomStrategy(SearchStrategy):
    """Uniform random sampling — the diversity floor every racer needs."""

    name = "random"

    def __init__(self, evaluator: BudgetedEvaluator, seed: int = 0, batch: int = 16):
        super().__init__(evaluator, seed)
        self.batch = batch

    def propose(self) -> List[DesignPoint]:
        return self.evaluator.space.sample(self.rng, self.batch)


class GreedyStrategy(SearchStrategy):
    """Bottleneck-style greedy hill climbing with random restarts.

    Mirrors AutoDSE's commit-the-best-improvement loop on the
    surrogate: every step scores all one-knob mutations of the
    incumbent in one batch, commits the best usable improvement, and
    restarts from a fresh random point when the incumbent is locally
    optimal (that restart is what keeps the strategy contributing
    front points after the first basin is mined out).
    """

    name = "greedy"

    def __init__(self, evaluator: BudgetedEvaluator, seed: int = 0):
        super().__init__(evaluator, seed)
        self.current = evaluator.space.default_point()
        self.current_score = float("inf")
        self._pending: List[DesignPoint] = []

    def propose(self) -> List[DesignPoint]:
        self._pending = [self.current] + self.evaluator.space.neighbors(self.current)
        return self._pending

    def observe(self, points, candidates, novel) -> None:
        scored = [(self.score(c), i) for i, c in enumerate(candidates)]
        best_score, best_index = min(scored)
        if best_index != 0 and best_score < self.score(candidates[0]):
            self.current = points[best_index]
            self.current_score = best_score
        else:
            # Local optimum (or an all-unusable neighbourhood): restart.
            self.current = self.evaluator.space.sample(self.rng, 1)[0]
            self.current_score = float("inf")


class AnnealingStrategy(SearchStrategy):
    """Lockstep multi-chain simulated annealing (the SA baseline arm).

    Semantics follow :class:`~repro.dse.annealing.SimulatedAnnealingDSE`
    — Metropolis acceptance on a scale-relative temperature with an
    unusable-point penalty — but each step proposes one candidate per
    chain and scores them in a single surrogate batch, and the budget
    ledger charges distinct points only.
    """

    name = "sa"

    def __init__(
        self,
        evaluator: BudgetedEvaluator,
        seed: int = 0,
        chains: int = 4,
        initial_temperature: float = 2.0,
        cooling: float = 0.97,
        penalty: float = 4.0,
    ):
        super().__init__(evaluator, seed)
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.penalty = penalty
        space = evaluator.space
        start = space.default_point()
        self.chains = [
            dict(
                rng=random.Random(f"{self.name}:{seed}:chain{i}"),
                current=dict(start) if i == 0 else space.sample(self.rng, 1)[0],
                score=float("inf"),
                worst_usable=1.0,
                temperature=initial_temperature,
                scored=False,
            )
            for i in range(chains)
        ]
        self._proposals: List[Tuple[dict, DesignPoint]] = []

    def _effective(self, chain: dict, score: float) -> float:
        if math.isinf(score):
            return chain["worst_usable"] * self.penalty
        return score

    def propose(self) -> List[DesignPoint]:
        self._proposals = []
        for chain in self.chains:
            if not chain["scored"]:
                # First visit: score the chain's own start point.
                self._proposals.append((chain, dict(chain["current"])))
                continue
            neighbors = self.evaluator.space.neighbors(chain["current"])
            if not neighbors:
                continue
            self._proposals.append((chain, chain["rng"].choice(neighbors)))
        return [point for _, point in self._proposals]

    def observe(self, points, candidates, novel) -> None:
        for (chain, point), candidate in zip(self._proposals, candidates):
            if candidate is None:  # dropped by budget truncation
                continue
            cand_score = self.score(candidate)
            if not math.isinf(cand_score):
                chain["worst_usable"] = max(chain["worst_usable"], cand_score)
            if not chain["scored"]:
                chain["current"], chain["score"] = point, cand_score
                chain["scored"] = True
                continue
            delta = self._effective(chain, cand_score) - self._effective(
                chain, chain["score"]
            )
            scale = max(abs(self._effective(chain, chain["score"])), 1e-9)
            accept = delta <= 0 or chain["rng"].random() < math.exp(
                -delta / (scale * max(chain["temperature"], 1e-6))
            )
            if accept:
                chain["current"], chain["score"] = point, cand_score
            chain["temperature"] *= self.cooling


#: Strategy-name -> constructor.  ``rl`` is registered lazily by
#: :mod:`repro.dse.rl` to keep this module import-light.
_REGISTRY: Dict[str, Callable[..., SearchStrategy]] = {
    "random": RandomStrategy,
    "greedy": GreedyStrategy,
    "sa": AnnealingStrategy,
}


def register_strategy(name: str, factory: Callable[..., SearchStrategy]) -> None:
    _REGISTRY[name] = factory


def build_strategy(
    name: str, evaluator: BudgetedEvaluator, seed: int = 0
) -> SearchStrategy:
    """Construct one registered strategy bound to a shared evaluator."""
    if name == "rl":
        from . import rl  # noqa: F401  (registers itself on import)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown search strategy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(evaluator, seed=seed)
