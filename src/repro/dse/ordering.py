"""Pragma-ordering heuristic of Section 4.4.

For enormous solution spaces the DSE cannot sweep every knob jointly, so
the paper orders the pragmas and explores them in that order:

* BFS-like traversal starting from the **innermost** loop levels (HLS
  implements fine-grained optimisations best, so inner pragmas are
  evaluated sooner);
* within one loop level the priority is ``parallel`` > ``pipeline`` >
  ``tile``;
* when the picked pragma A depends on a pragma B at the same or one
  outer loop level (e.g. a loop's parallel knob depends on its parent's
  pipeline knob, which can absorb it via fg), B is promoted ahead of A.
"""

from __future__ import annotations

from typing import Dict, List

from ..designspace.rules import PruningRules
from ..designspace.space import DesignSpace, Knob
from ..frontend.pragmas import PragmaKind

__all__ = ["order_pragmas"]

#: parallel > pipeline > tile (Section 4.4).
_KIND_ORDER = {PragmaKind.PARALLEL: 0, PragmaKind.PIPELINE: 1, PragmaKind.TILE: 2}


def order_pragmas(space: DesignSpace, promote_dependencies: bool = True) -> List[Knob]:
    """Return the knobs of ``space`` in the paper's evaluation order.

    ``promote_dependencies=False`` skips the dependency fix-up, leaving
    the raw innermost-first / parallel>pipeline>tile BFS order.
    """
    rules = space.rules
    loop_depth: Dict[str, int] = {}
    if isinstance(rules, PruningRules):
        for knob in space.knobs:
            loop_depth[knob.name] = rules.loop_of(knob).depth
    else:
        for knob in space.knobs:
            loop_depth[knob.name] = 0

    # Innermost-first (deepest loops first); stable on source order.
    ordered = sorted(
        space.knobs,
        key=lambda k: (-loop_depth[k.name], _KIND_ORDER[k.kind]),
    )

    if promote_dependencies and isinstance(rules, PruningRules):
        ordered = _promote_dependencies(ordered, rules)
    return ordered


def _promote_dependencies(ordered: List[Knob], rules: PruningRules) -> List[Knob]:
    """Move each knob's dependencies ahead of it (stable otherwise)."""
    result = list(ordered)
    # A bounded number of passes suffices: each pass only moves knobs
    # forward, and the dependency relation follows the loop tree.
    for _ in range(len(result)):
        moved = False
        position = {knob.name: i for i, knob in enumerate(result)}
        for knob in list(result):
            for dep in rules.dependency_of(knob):
                if dep.name not in position:
                    continue
                if position[dep.name] > position[knob.name]:
                    result.remove(dep)
                    result.insert(position[knob.name], dep)
                    position = {k.name: i for i, k in enumerate(result)}
                    moved = True
        if not moved:
            break
    return result
