"""Policy-gradient pragma explorer (REINFORCE over pragma edits).

IronMan (PAPERS.md) shows a learned policy beats annealing and greedy
search for HLS DSE at fixed query budgets.  This module reproduces the
idea on the repo's own stack, with no new dependencies:

- **State**: the current design point, encoded per knob as three dense
  features — normalised candidate index plus at-minimum / at-maximum
  boundary flags (:func:`point_features`).
- **Actions**: single-pragma edits — step one knob one candidate up or
  down (``2 * len(knobs)`` actions), infeasible boundary moves masked
  out of the softmax (:class:`~repro.nn.distributions.MaskedCategorical`).
- **Policy**: a small MLP on the existing numpy autograd
  (:mod:`repro.nn`) mapping state features to action logits.
- **Reward**: the improvement of a scalarised latency/resource
  objective (log-latency potential with an unusable-point penalty)
  plus a *Pareto-novelty bonus* whenever the edit lands a point newly
  admitted to the shared front.
- **Training**: REINFORCE with returns-to-go, a per-step batch-mean
  baseline, and an entropy regulariser; episodes run in lockstep so
  every step scores one candidate per episode in a single surrogate
  batch (the ``run_many`` batching pattern from PR 1).

Seeded runs are bit-reproducible: the sampler consumes one
``random.Random`` stream in episode order and the policy/optimiser
maths is plain deterministic numpy, so the full edit trajectory —
exposed in :attr:`RLExplorer.trajectory` — replays identically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..designspace.space import DesignPoint, DesignSpace, point_key
from ..nn.distributions import MaskedCategorical
from ..nn.module import MLP
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from .search import DSECandidate
from .strategies import BudgetedEvaluator, SearchStrategy, register_strategy

__all__ = [
    "FEATURES_PER_KNOB",
    "RLExplorer",
    "action_count",
    "action_mask",
    "apply_action",
    "feature_dim",
    "point_features",
]

#: Dense features encoded per knob: normalised index, at-min, at-max.
FEATURES_PER_KNOB = 3


def feature_dim(space: DesignSpace) -> int:
    return FEATURES_PER_KNOB * len(space.knobs)


def action_count(space: DesignSpace) -> int:
    """Two actions per knob: step the candidate index up or down."""
    return 2 * len(space.knobs)


def point_features(space: DesignSpace, point: DesignPoint) -> np.ndarray:
    """Encode one design point as the policy's input vector."""
    out = np.empty(feature_dim(space), dtype=np.float64)
    for i, knob in enumerate(space.knobs):
        index = knob.index_of(point[knob.name])
        top = len(knob.candidates) - 1
        base = FEATURES_PER_KNOB * i
        out[base] = index / top if top else 0.0
        out[base + 1] = 1.0 if index == 0 else 0.0
        out[base + 2] = 1.0 if index == top else 0.0
    return out


def action_mask(space: DesignSpace, point: DesignPoint) -> np.ndarray:
    """Feasibility of each (knob, direction) edit from ``point``.

    Action ``2*k`` steps knob ``k`` up one candidate, ``2*k + 1`` steps
    it down; moves off the end of the candidate list are masked.
    """
    mask = np.zeros(action_count(space), dtype=bool)
    for i, knob in enumerate(space.knobs):
        index = knob.index_of(point[knob.name])
        mask[2 * i] = index < len(knob.candidates) - 1
        mask[2 * i + 1] = index > 0
    return mask


def apply_action(space: DesignSpace, point: DesignPoint, action: int) -> DesignPoint:
    """Apply one pragma edit; the result is canonical under the rules."""
    knob = space.knobs[action // 2]
    index = knob.index_of(point[knob.name]) + (1 if action % 2 == 0 else -1)
    index = min(max(index, 0), len(knob.candidates) - 1)
    edited = dict(point)
    edited[knob.name] = knob.candidates[index]
    if space.rules is not None:
        edited = space.rules.canonicalize(edited)
    return edited


class RLExplorer(SearchStrategy):
    """REINFORCE explorer over pragma-edit actions.

    Runs ``episodes`` rollouts in lockstep for ``horizon`` steps each;
    every step evaluates one edited point per episode in a single
    surrogate batch through the shared
    :class:`~repro.dse.strategies.BudgetedEvaluator`.  After each
    rollout batch the policy takes one Adam step on the REINFORCE loss.

    The explorer is a :class:`~repro.dse.strategies.SearchStrategy`, so
    it can run standalone (:meth:`step` with the full budget) or as one
    arm of the :class:`~repro.dse.race.StrategyRacer`.
    """

    name = "rl"

    def __init__(
        self,
        evaluator: BudgetedEvaluator,
        seed: int = 0,
        episodes: int = 8,
        horizon: int = 12,
        hidden: int = 32,
        lr: float = 0.02,
        gamma: float = 0.9,
        entropy_coef: float = 0.01,
        novelty_bonus: float = 0.5,
        invalid_penalty: float = 1.0,
    ):
        super().__init__(evaluator, seed)
        space = evaluator.space
        self.episodes = episodes
        self.horizon = horizon
        self.gamma = gamma
        self.entropy_coef = entropy_coef
        self.novelty_bonus = novelty_bonus
        self.invalid_penalty = invalid_penalty
        self.policy = MLP(
            [feature_dim(space), hidden, action_count(space)],
            activation="tanh",
            rng=np.random.default_rng(seed),
        )
        self.optimizer = Adam(self.policy.parameters(), lr=lr)
        self.updates = 0  #: completed REINFORCE updates
        self.trajectory: List[str] = []  #: "batch:step:episode:action:key" log
        self._batch_index = 0
        self._worst_latency = 1.0
        self._reset_rollout()

    # -- rollout state ----------------------------------------------------------

    def _reset_rollout(self) -> None:
        self._phase = "reset"
        self._step_index = 0
        self._states: List[DesignPoint] = []
        self._potentials: List[float] = []
        self._log_probs: List[Tensor] = []
        self._entropies: List[Tensor] = []
        self._rewards: List[np.ndarray] = []
        self._actions: Optional[np.ndarray] = None

    def _potential(self, candidate: Optional[DSECandidate]) -> float:
        """Scalarised state quality (maximised): −log latency, penalised.

        Unusable points sit ``invalid_penalty`` below the worst usable
        latency seen so far, so every chain can climb out of invalid
        regions yet never prefers them.
        """
        if candidate is not None and self.evaluator.usable(candidate):
            latency = max(candidate.predicted_latency, 1.0)
            self._worst_latency = max(self._worst_latency, latency)
            return -math.log(latency)
        return -math.log(self._worst_latency) - self.invalid_penalty

    # -- SearchStrategy hooks ---------------------------------------------------

    def propose(self) -> List[DesignPoint]:
        space = self.evaluator.space
        if self._phase == "reset":
            # Episode starts: the neutral point plus seeded random
            # spread (one stream, consumed in episode order).
            self._states = [space.default_point()] + space.sample(
                self.rng, self.episodes - 1
            )
            return [dict(p) for p in self._states]
        features = np.stack([point_features(space, p) for p in self._states])
        mask = np.stack([action_mask(space, p) for p in self._states])
        dist = MaskedCategorical(self.policy(Tensor(features)), mask)
        self._actions = dist.sample(self.rng)
        self._log_probs.append(dist.log_prob(self._actions))
        self._entropies.append(dist.entropy())
        edited = [
            apply_action(space, point, int(action))
            for point, action in zip(self._states, self._actions)
        ]
        for episode, (action, point) in enumerate(zip(self._actions, edited)):
            self.trajectory.append(
                f"{self._batch_index}:{self._step_index}:{episode}:"
                f"{int(action)}:{point_key(point)}"
            )
        return edited

    def observe(self, points, candidates, novel) -> None:
        if self._phase == "reset":
            self._potentials = [self._potential(c) for c in candidates]
            self._phase = "act"
            return
        rewards = np.zeros(len(points), dtype=np.float64)
        for i, (candidate, is_novel) in enumerate(zip(candidates, novel)):
            potential = self._potential(candidate)
            rewards[i] = potential - self._potentials[i]
            if is_novel:
                rewards[i] += self.novelty_bonus
            self._potentials[i] = potential
        self._rewards.append(rewards)
        self._states = [dict(p) for p in points]
        self._step_index += 1
        if self._step_index >= self.horizon:
            self._update_policy()
            self._batch_index += 1
            self._reset_rollout()

    # -- REINFORCE --------------------------------------------------------------

    def _update_policy(self) -> None:
        if not self._rewards:
            return
        rewards = np.stack(self._rewards)  # (T, E)
        steps = rewards.shape[0]
        returns = np.zeros_like(rewards)
        running = np.zeros(rewards.shape[1])
        for t in range(steps - 1, -1, -1):
            running = rewards[t] + self.gamma * running
            returns[t] = running
        # Per-step batch-mean baseline, then global scale normalisation.
        advantages = returns - returns.mean(axis=1, keepdims=True)
        scale = advantages.std()
        if scale > 1e-8:
            advantages = advantages / scale
        loss = None
        for t in range(steps):
            term = self._log_probs[t] * Tensor(advantages[t])
            term = term + self._entropies[t] * self.entropy_coef
            loss = term if loss is None else loss + term
        loss = loss.mean() * (-1.0 / steps)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        self.updates += 1


def _build_rl(evaluator: BudgetedEvaluator, seed: int = 0, **kwargs) -> RLExplorer:
    return RLExplorer(evaluator, seed=seed, **kwargs)


register_strategy("rl", _build_rl)
