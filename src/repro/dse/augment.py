"""Database augmentation rounds (Section 4.4 / Fig. 7).

Each round: run the model-driven DSE on every kernel, evaluate the
top-M predicted designs with the real (simulated) HLS tool, commit the
true results to the database, and retrain the predictor on the enlarged
database.  Mispredicted points are exactly the ones most informative to
add, so the DSE quality climbs across rounds — Fig. 7 reports the
per-round speedup over the best design of the *initial* database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..designspace.generator import build_design_space
from ..explorer.database import Database
from ..explorer.evaluator import Evaluator
from ..hls.tool import MerlinHLSTool
from ..kernels import get_kernel
from ..model.predictor import GNNDSEPredictor
from .search import ModelDSE

__all__ = ["RoundOutcome", "AugmentationResult", "run_dse_rounds"]


@dataclass
class RoundOutcome:
    """One augmentation round's per-kernel results."""

    round: int
    #: kernel -> best true latency among this round's evaluated top-M
    best_latency: Dict[str, Optional[int]] = field(default_factory=dict)
    #: kernel -> speedup vs the best design in the initial database
    speedup: Dict[str, float] = field(default_factory=dict)
    added_records: int = 0

    def average_speedup(self) -> float:
        values = [s for s in self.speedup.values() if s > 0]
        return sum(values) / len(values) if values else 0.0


@dataclass
class AugmentationResult:
    rounds: List[RoundOutcome] = field(default_factory=list)

    def speedup_table(self) -> Dict[str, List[float]]:
        """kernel -> per-round speedups (Fig. 7's bars)."""
        kernels = sorted({k for r in self.rounds for k in r.speedup})
        return {k: [r.speedup.get(k, 0.0) for r in self.rounds] for k in kernels}


def run_dse_rounds(
    kernels: List[str],
    database: Database,
    predictor_factory: Callable[[Database], GNNDSEPredictor],
    tool: Optional[MerlinHLSTool] = None,
    rounds: int = 4,
    top_m: int = 10,
    fit_threshold: float = 0.8,
    time_limit_seconds: float = 3600.0,
    refine: Optional[Callable[[GNNDSEPredictor, Database], GNNDSEPredictor]] = None,
) -> AugmentationResult:
    """Run Fig. 7's multi-round DSE + database-expansion loop.

    Parameters
    ----------
    predictor_factory:
        Trains a predictor from a database (called for round 1).
    refine:
        Optional cheaper retraining for rounds 2+ (e.g. fine-tuning);
        defaults to calling ``predictor_factory`` again.
    """
    tool = tool or MerlinHLSTool()
    result = AugmentationResult()

    baseline: Dict[str, Optional[int]] = {}
    for name in kernels:
        record = database.best_valid(name, fit_threshold)
        baseline[name] = record.latency if record else None

    predictor = predictor_factory(database)
    for round_index in range(1, rounds + 1):
        outcome = RoundOutcome(round=round_index)
        evaluator = Evaluator(tool, database)
        for name in kernels:
            spec = get_kernel(name)
            space = build_design_space(spec)
            dse = ModelDSE(
                predictor, spec, space, fit_threshold=fit_threshold, top_m=top_m
            )
            top = dse.run(time_limit_seconds=time_limit_seconds)
            best: Optional[int] = None
            for candidate in top.top:
                before = len(database)
                res = evaluator.evaluate(
                    spec, candidate.point, source="dse", round=round_index
                )
                outcome.added_records += len(database) - before
                if res.valid and res.fits(fit_threshold):
                    best = res.latency if best is None else min(best, res.latency)
            outcome.best_latency[name] = best
            base = baseline[name]
            if best is not None and base:
                outcome.speedup[name] = base / best
            else:
                outcome.speedup[name] = 0.0
        result.rounds.append(outcome)
        if round_index < rounds:
            if refine is not None:
                predictor = refine(predictor, database)
            else:
                predictor = predictor_factory(database)
    return result
