"""Parallel sharded DSE with checkpoint/resume.

The surrogate makes design-space exploration embarrassingly parallel:
once the space is deterministically split into contiguous shards of
the enumeration order, each shard can be scored by an independent
worker process running the same cascade/:class:`EvaluationPipeline`
as the serial explorer, and the shard-local top-M lists and Pareto
fronts merge back into results **bit-identical** to the single-process
sweep (both the iterated top-M merge and the incremental Pareto merge
are batch-boundary invariant — see
:meth:`~repro.dse.search.ModelDSE.evaluate_stream`).

:class:`ParallelDSE` adds the operational layer any scatter/gather
stack needs:

- a per-worker task queue + shared result channel (fork-started
  processes, so untrained/loaded predictors transfer without pickling);
- per-worker heartbeats (emitted at shard start and after every
  evaluation batch) with an optional stall timeout;
- automatic retry of shards whose worker dies mid-shard — exactly once
  per shard, logged on the ``repro.dse.parallel`` logger; a second
  death raises :class:`~repro.errors.WorkerCrashError`;
- a fault/latency injection hook (:class:`WorkerHooks`) for tests and
  hardware-independent benchmarks;
- an atomic JSON checkpoint journal of completed shards plus the
  running Pareto front, so a killed run resumes without re-evaluating
  finished shards (``--resume``); corrupt or mismatched checkpoints
  raise :class:`~repro.errors.CheckpointError`.

``workers=1`` evaluates shards in-process (no subprocesses at all) —
useful for checkpointed single-core runs and as the deterministic
reference in tests.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Dict, List, Optional, Sequence

from ..designspace.space import DesignSpace
from ..errors import CheckpointError, DSEError, WorkerCrashError
from ..explorer.database import deserialize_point, serialize_point
from ..frontend.pragmas import PipelineOption
from ..model.predictor import Prediction
from ..obs import TRACER, counter, histogram, span
from ..workers import ForkSupervisor, SupervisedWorker, drain_queue
from .pareto import pareto_merge
from .pipeline import EvaluationPipeline, PipelineStats
from .search import PARETO_KEYS, DSECandidate, DSEResult, ModelDSE, _candidate_objectives

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "DSECheckpoint",
    "ParallelDSE",
    "ShardResult",
    "WorkerHooks",
    "candidate_payload",
    "candidate_from_payload",
]

logger = logging.getLogger("repro.dse.parallel")

#: Version of the checkpoint journal written by :class:`DSECheckpoint`.
CHECKPOINT_SCHEMA_VERSION = 1

# Process-wide observability instruments (see ``repro.obs``).  All
# duration/deadline math in this module runs on monotonic clocks
# (``time.monotonic`` / the tracer's ``perf_counter`` epoch); a stepped
# wall clock can therefore neither trip the stall detector nor skew the
# heartbeat-lag histogram.
_HEARTBEAT_LAG = histogram("dse.heartbeat_lag_seconds")
_SHARD_RETRIES = counter("dse.shard_retries")
_SHARDS_COMPLETED = counter("dse.shards_completed")
_WORKER_CRASHES = counter("dse.worker_crashes")
_TEARDOWN_ERRORS = counter("dse.teardown_errors")


# ---------------------------------------------------------------------------
# candidate (de)serialization — lossless float round-trip via JSON shortest-repr


def candidate_payload(candidate: DSECandidate) -> Dict[str, object]:
    """JSON form of one scored candidate (exact float round-trip)."""
    prediction = candidate.prediction
    return {
        "point": serialize_point(candidate.point),
        "prediction": {
            "valid": prediction.valid,
            "valid_prob": prediction.valid_prob,
            "objectives": prediction.objectives,
        },
    }


def candidate_from_payload(raw: Dict[str, object]) -> DSECandidate:
    """Inverse of :func:`candidate_payload`."""
    try:
        pred = raw["prediction"]
        objectives = pred["objectives"]
        prediction = Prediction(
            valid=bool(pred["valid"]),
            valid_prob=float(pred["valid_prob"]),
            objectives=None
            if objectives is None
            else {str(k): float(v) for k, v in objectives.items()},
        )
        return DSECandidate(point=deserialize_point(raw["point"]), prediction=prediction)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed candidate payload: {exc}") from None


def _stats_payload(stats: Optional[PipelineStats]) -> Optional[Dict[str, object]]:
    if stats is None:
        return None
    return {f.name: getattr(stats, f.name) for f in dataclass_fields(stats)}


def _stats_from_payload(raw) -> Optional[PipelineStats]:
    if raw is None:
        return None
    names = {f.name for f in dataclass_fields(PipelineStats)}
    try:
        return PipelineStats(**{k: v for k, v in raw.items() if k in names})
    except TypeError as exc:
        raise CheckpointError(f"malformed stats payload: {exc}") from None


# ---------------------------------------------------------------------------
# shard bookkeeping


@dataclass
class ShardResult:
    """One shard's evaluation outcome (what workers send back)."""

    index: int
    top: List[DSECandidate]
    pareto: List[DSECandidate]
    explored: int
    stats: Optional[PipelineStats] = None
    worker: int = -1
    attempts: int = 1

    def to_payload(self) -> Dict[str, object]:
        return {
            "explored": self.explored,
            "worker": self.worker,
            "attempts": self.attempts,
            "stats": _stats_payload(self.stats),
            "top": [candidate_payload(c) for c in self.top],
            "pareto": [candidate_payload(c) for c in self.pareto],
        }

    @classmethod
    def from_payload(cls, index: int, raw: Dict[str, object]) -> "ShardResult":
        try:
            return cls(
                index=index,
                top=[candidate_from_payload(c) for c in raw["top"]],
                pareto=[candidate_from_payload(c) for c in raw["pareto"]],
                explored=int(raw["explored"]),
                stats=_stats_from_payload(raw.get("stats")),
                worker=int(raw.get("worker", -1)),
                attempts=int(raw.get("attempts", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed shard {index} in checkpoint: {exc}"
            ) from None


@dataclass
class WorkerHooks:
    """Instrumentation hooks threaded into every worker.

    ``on_shard_start(worker_id, shard_index, attempt)`` runs before a
    shard is evaluated — tests inject faults here (``os._exit``) to
    exercise the retry path.  ``batch_overhead_seconds`` adds a fixed
    sleep after every evaluation batch, modelling the per-dispatch cost
    (RPC / accelerator launch / HLS invocation) that parallel workers
    overlap; ``benchmarks/bench_parallel_dse.py`` uses it so scaling
    numbers are hardware-independent.  Hooks must be fork-inheritable
    (plain functions/closures are fine); they never change results.
    """

    on_shard_start: Optional[Callable[[int, int, int], None]] = None
    batch_overhead_seconds: float = 0.0


# ---------------------------------------------------------------------------
# checkpoint journal


class DSECheckpoint:
    """Atomic JSON journal of completed shards + the running Pareto front.

    The file is rewritten atomically (``.tmp`` + ``os.replace``) after
    every completed shard, so at any kill point it is either the old or
    the new complete journal — never a torn write from THIS process.  A
    truncated or hand-edited file, a schema mismatch, or a fingerprint
    mismatch (different kernel/space/search parameters) raises
    :class:`~repro.errors.CheckpointError` on resume.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)

    @staticmethod
    def fingerprint(
        kernel: str,
        space: DesignSpace,
        top_m: int,
        fit_threshold: float,
        shard_size: int,
        num_shards: int,
        total_points: int,
    ) -> str:
        signature = {
            "kernel": kernel,
            "knobs": [
                {
                    "name": knob.name,
                    "candidates": [
                        v.value if isinstance(v, PipelineOption) else int(v)
                        for v in knob.candidates
                    ],
                }
                for knob in space.knobs
            ],
            "top_m": top_m,
            "fit_threshold": fit_threshold,
            "shard_size": shard_size,
            "num_shards": num_shards,
            "total_points": total_points,
        }
        blob = json.dumps(signature, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Dict[str, object]:
        """Parse and structurally validate the journal (not the fingerprint)."""
        try:
            with open(self.path, "r") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is corrupt or half-written "
                f"(invalid JSON at line {exc.lineno}); delete it to start fresh"
            ) from None
        if not isinstance(raw, dict):
            raise CheckpointError(f"checkpoint {self.path}: expected a JSON object")
        version = raw.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path}: schema v{version!r} unsupported "
                f"(this build writes v{CHECKPOINT_SCHEMA_VERSION})"
            )
        for key in ("kernel", "fingerprint", "shard_size", "num_shards",
                    "total_points", "completed"):
            if key not in raw:
                raise CheckpointError(
                    f"checkpoint {self.path} is corrupt or half-written "
                    f"(missing field {key!r}); delete it to start fresh"
                )
        if not isinstance(raw["completed"], dict):
            raise CheckpointError(f"checkpoint {self.path}: 'completed' must be an object")
        return raw

    def write(
        self,
        *,
        kernel: str,
        fingerprint: str,
        top_m: int,
        fit_threshold: float,
        shard_size: int,
        num_shards: int,
        total_points: int,
        completed: Dict[int, ShardResult],
        pareto: Sequence[DSECandidate],
        retries: int,
    ) -> None:
        payload = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "kernel": kernel,
            "fingerprint": fingerprint,
            "top_m": top_m,
            "fit_threshold": fit_threshold,
            "shard_size": shard_size,
            "num_shards": num_shards,
            "total_points": total_points,
            "retries": retries,
            "completed": {
                str(index): result.to_payload()
                for index, result in sorted(completed.items())
            },
            "pareto": [candidate_payload(c) for c in pareto],
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# worker process


@dataclass
class _WorkerConfig:
    """Everything a worker needs to rebuild its evaluation stack."""

    top_m: int
    fit_threshold: float
    batch_size: int
    pipeline_batch_size: int
    engine: str
    cache: bool


def _worker_main(worker_id, predictor, spec, space, config, task_q, result_q, hooks):
    """Worker loop: one shard per task, heartbeat per batch.

    Runs in a fork-started child, so ``predictor``/``space``/``hooks``
    arrive by memory inheritance, not pickling.  Each worker owns a
    fresh :class:`EvaluationPipeline` (compiled engines and caches are
    per-process; caching never changes values, so per-worker caches
    keep results bit-identical).
    """
    pipeline = EvaluationPipeline(
        predictor,
        batch_size=config.pipeline_batch_size,
        engine=config.engine,
        cache=config.cache,
    )
    dse = ModelDSE(
        predictor, spec, space,
        fit_threshold=config.fit_threshold,
        top_m=config.top_m,
        batch_size=config.batch_size,
        pipeline=pipeline,
    )
    while True:
        task = task_q.get()
        if task is None:
            result_q.put(("exit", worker_id))
            return
        index, attempt, points = task
        # Heartbeat stamps are CLOCK_MONOTONIC: fork-started children
        # share the parent's monotonic clock (same boot epoch), so the
        # orchestrator can difference them for queue-lag without any
        # wall-clock involvement.
        result_q.put(("hb", worker_id, index, time.monotonic()))
        try:
            if hooks is not None and hooks.on_shard_start is not None:
                hooks.on_shard_start(worker_id, index, attempt)

            def on_batch(_explored):
                if hooks is not None and hooks.batch_overhead_seconds > 0:
                    time.sleep(hooks.batch_overhead_seconds)
                result_q.put(("hb", worker_id, index, time.monotonic()))

            before = pipeline.stats.copy()
            top, pareto, explored, _ = dse.evaluate_stream(points, on_batch=on_batch)
            result = ShardResult(
                index=index,
                top=top,
                pareto=pareto,
                explored=explored,
                stats=pipeline.stats - before,
                worker=worker_id,
                attempts=attempt,
            )
            result_q.put(("result", worker_id, result))
        except BaseException:
            result_q.put(("error", worker_id, index, traceback.format_exc()))


class _WorkerHandle(SupervisedWorker):
    """Orchestrator-side state for one live worker process.

    The process/heartbeat mechanics come from
    :class:`~repro.workers.SupervisedWorker` (shared with the serving
    pool); this subclass adds the DSE-side scheduling state.
    """

    def __init__(self, worker_id, process, channel=None):
        super().__init__(worker_id, process, channel)
        self.assigned: Optional[int] = None
        self.assigned_at: Optional[float] = None  # tracer-epoch seconds

    @property
    def task_queue(self):
        return self.channel


# ---------------------------------------------------------------------------
# the orchestrator


class ParallelDSE:
    """Multiprocessing DSE orchestrator over deterministic shards.

    Parameters mirror :class:`~repro.dse.search.ModelDSE` where they
    overlap; the parallel-specific ones:

    workers:
        Worker processes.  ``1`` evaluates shards in-process (no
        subprocesses) — the checkpointing serial mode.
    shard_size / shards_per_worker:
        Shard granularity.  Explicit ``shard_size`` wins; otherwise the
        space is cut into ``workers * shards_per_worker`` shards so a
        died-and-retried shard costs a fraction of the run.
    checkpoint_path / resume:
        Journal location.  With ``resume=True`` an existing journal's
        completed shards are merged in without re-evaluation (its shard
        plan is adopted); a missing file starts fresh, a corrupt or
        mismatched one raises :class:`CheckpointError`.
    hooks:
        :class:`WorkerHooks` for fault/latency injection.
    heartbeat_timeout_seconds:
        When set, a worker that is alive but has not heartbeat for this
        long is killed and its shard retried (same single-retry budget
        as a crash).
    max_attempts:
        Evaluation attempts per shard before
        :class:`~repro.errors.WorkerCrashError` (default 2: the
        original run plus exactly one retry).
    """

    def __init__(
        self,
        predictor,
        spec,
        space: DesignSpace,
        workers: int = 2,
        top_m: int = 10,
        fit_threshold: float = 0.8,
        batch_size: int = 256,
        pipeline_batch_size: int = 24,
        engine: str = "auto",
        cache: bool = True,
        exhaustive_limit: int = 20_000,
        shard_size: Optional[int] = None,
        shards_per_worker: int = 4,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        hooks: Optional[WorkerHooks] = None,
        heartbeat_timeout_seconds: Optional[float] = None,
        max_attempts: int = 2,
        mp_context: str = "fork",
    ):
        if workers < 1:
            raise DSEError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise DSEError(f"max_attempts must be >= 1, got {max_attempts}")
        if resume and checkpoint_path is None:
            raise DSEError("resume=True requires a checkpoint_path")
        self.predictor = predictor
        self.spec = spec
        self.space = space
        self.workers = workers
        self.top_m = top_m
        self.fit_threshold = fit_threshold
        self.batch_size = batch_size
        self.pipeline_batch_size = pipeline_batch_size
        self.engine = engine
        self.cache = cache
        self.exhaustive_limit = exhaustive_limit
        self.shard_size = shard_size
        self.shards_per_worker = max(int(shards_per_worker), 1)
        self.checkpoint = DSECheckpoint(checkpoint_path) if checkpoint_path else None
        self.resume = resume
        self.hooks = hooks
        self.heartbeat_timeout_seconds = heartbeat_timeout_seconds
        self.max_attempts = max_attempts
        self.mp_context = mp_context

    # -- planning ---------------------------------------------------------------

    def _make_dse(self, pipeline: Optional[EvaluationPipeline]) -> ModelDSE:
        return ModelDSE(
            self.predictor, self.spec, self.space,
            fit_threshold=self.fit_threshold,
            top_m=self.top_m,
            batch_size=self.batch_size,
            exhaustive_limit=self.exhaustive_limit,
            pipeline=pipeline,
            use_pipeline=pipeline is not None,
        )

    def _plan(self):
        """Enumerate the space and cut it into contiguous shards."""
        if self.space.size(exact_limit=self.exhaustive_limit) > self.exhaustive_limit:
            raise DSEError(
                f"{self.spec.name}: design space exceeds exhaustive_limit="
                f"{self.exhaustive_limit}; parallel sharding needs an "
                "exhaustively enumerable space — use the serial heuristic "
                "search (workers=1, no checkpoint) for this kernel"
            )
        points = list(self.space.enumerate())
        total = len(points)
        if self.shard_size is not None:
            size = max(int(self.shard_size), 1)
        else:
            size = max(math.ceil(total / (self.workers * self.shards_per_worker)), 1)
        shards = [points[i:i + size] for i in range(0, total, size)] or [[]]
        return shards, size, total

    def _load_resume_state(self, shards, shard_size, total):
        """Validate + absorb an existing checkpoint; returns run state."""
        completed: Dict[int, ShardResult] = {}
        prior_retries = 0
        if self.checkpoint is None:
            return shards, shard_size, completed, prior_retries
        if not self.resume or not self.checkpoint.exists():
            if self.resume:
                logger.info(
                    "checkpoint %s not found; starting fresh", self.checkpoint.path
                )
            return shards, shard_size, completed, prior_retries
        raw = self.checkpoint.load()
        stored_size = int(raw["shard_size"])
        if stored_size != shard_size:
            # Adopt the journal's shard plan so completed shards line up.
            size = max(stored_size, 1)
            points = [p for shard in shards for p in shard]
            shards = [points[i:i + size] for i in range(0, len(points), size)] or [[]]
            shard_size = size
        expected = DSECheckpoint.fingerprint(
            self.spec.name, self.space, self.top_m, self.fit_threshold,
            shard_size, len(shards), total,
        )
        if raw["fingerprint"] != expected:
            raise CheckpointError(
                f"checkpoint {self.checkpoint.path} was written for a different "
                f"run (kernel/space/search parameters changed); refusing to "
                "resume — delete it to start fresh"
            )
        for key, payload in raw["completed"].items():
            try:
                index = int(key)
            except ValueError:
                raise CheckpointError(
                    f"checkpoint {self.checkpoint.path}: bad shard index {key!r}"
                ) from None
            if not 0 <= index < len(shards):
                raise CheckpointError(
                    f"checkpoint {self.checkpoint.path}: shard index {index} "
                    f"out of range (num_shards={len(shards)})"
                )
            completed[index] = ShardResult.from_payload(index, payload)
        prior_retries = int(raw.get("retries", 0))
        return shards, shard_size, completed, prior_retries

    # -- checkpoint write --------------------------------------------------------

    def _checkpoint_write(self, fingerprint, shard_size, num_shards, total,
                          completed, retries):
        if self.checkpoint is None:
            return
        pareto: List[DSECandidate] = []
        for index in sorted(completed):
            pareto = pareto_merge(
                pareto, completed[index].pareto, _candidate_objectives, PARETO_KEYS
            )
        self.checkpoint.write(
            kernel=self.spec.name,
            fingerprint=fingerprint,
            top_m=self.top_m,
            fit_threshold=self.fit_threshold,
            shard_size=shard_size,
            num_shards=num_shards,
            total_points=total,
            completed=completed,
            pareto=pareto,
            retries=retries,
        )

    # -- public API --------------------------------------------------------------

    def run(self, time_limit_seconds: float = 3600.0) -> DSEResult:
        """Evaluate all shards (resuming if configured) and merge."""
        with span(
            "dse.parallel.run", kernel=self.spec.name, workers=self.workers
        ) as root:
            return self._run(time_limit_seconds, root)

    def _run(self, time_limit_seconds: float, root) -> DSEResult:
        start = time.monotonic()
        shards, shard_size, total = self._plan()
        shards, shard_size, completed, prior_retries = self._load_resume_state(
            shards, shard_size, total
        )
        num_shards = len(shards)
        fingerprint = DSECheckpoint.fingerprint(
            self.spec.name, self.space, self.top_m, self.fit_threshold,
            shard_size, num_shards, total,
        )
        resumed = sorted(completed)
        pending = [i for i in range(num_shards) if i not in completed]
        retries = 0

        if pending:
            runner = self._run_in_process if self.workers == 1 else self._run_workers
            retries = runner(
                shards, pending, completed,
                fingerprint, shard_size, num_shards, total, prior_retries,
                deadline=start + time_limit_seconds,
            )

        # -- merge (shard order == enumeration order, so ties keep the
        # serial explorer's ordering exactly) --
        merger = self._make_dse(pipeline=None)
        top: List[DSECandidate] = []
        pareto: List[DSECandidate] = []
        explored = 0
        evaluated_now = 0
        stats: Optional[PipelineStats] = None
        with span("dse.pareto_merge", shards=len(completed)):
            for index in sorted(completed):
                shard = completed[index]
                top = merger._merge_top(top, shard.top)
                pareto = pareto_merge(
                    pareto, shard.pareto, _candidate_objectives, PARETO_KEYS
                )
                explored += shard.explored
                if index not in resumed:
                    evaluated_now += shard.explored
                if shard.stats is not None:
                    stats = shard.stats if stats is None else stats + shard.stats
        seconds = time.monotonic() - start
        root.set(
            shards=num_shards, shards_resumed=len(resumed),
            retries=prior_retries + retries, explored=explored,
        )
        return DSEResult(
            kernel=self.spec.name,
            top=top,
            explored=explored,
            seconds=seconds,
            exhaustive=True,
            predictions_per_second=evaluated_now / seconds if seconds > 0 else 0.0,
            stats=stats,
            pareto=pareto,
            workers=self.workers,
            shards=num_shards,
            shards_resumed=len(resumed),
            retries=prior_retries + retries,
        )

    # -- in-process execution (workers == 1) -------------------------------------

    def _run_in_process(self, shards, pending, completed, fingerprint,
                        shard_size, num_shards, total, prior_retries, deadline):
        pipeline = EvaluationPipeline(
            self.predictor,
            batch_size=self.pipeline_batch_size,
            engine=self.engine,
            cache=self.cache,
        )
        dse = self._make_dse(pipeline)
        hooks = self.hooks
        for index in pending:
            if time.monotonic() > deadline:
                break
            if hooks is not None and hooks.on_shard_start is not None:
                hooks.on_shard_start(0, index, 1)

            def on_batch(_explored):
                if hooks is not None and hooks.batch_overhead_seconds > 0:
                    time.sleep(hooks.batch_overhead_seconds)

            before = pipeline.stats.copy()
            with span("dse.shard", shard=index, points=len(shards[index]), worker=0):
                top, pareto, explored, _ = dse.evaluate_stream(
                    shards[index], on_batch=on_batch
                )
            completed[index] = ShardResult(
                index=index, top=top, pareto=pareto, explored=explored,
                stats=pipeline.stats - before, worker=0, attempts=1,
            )
            _SHARDS_COMPLETED.inc()
            self._checkpoint_write(
                fingerprint, shard_size, num_shards, total, completed, prior_retries
            )
        return 0

    # -- multiprocess execution ---------------------------------------------------

    def _run_workers(self, shards, pending, completed, fingerprint,
                     shard_size, num_shards, total, prior_retries, deadline):
        supervisor = ForkSupervisor(
            _worker_main,
            mp_context=self.mp_context,
            name_prefix="repro-dse-worker",
            worker_class=_WorkerHandle,
        )
        result_queue = supervisor.context.Queue()
        config = _WorkerConfig(
            top_m=self.top_m,
            fit_threshold=self.fit_threshold,
            batch_size=self.batch_size,
            pipeline_batch_size=self.pipeline_batch_size,
            engine=self.engine,
            cache=self.cache,
        )
        queue: deque = deque(pending)
        attempts: Dict[int, int] = {}
        retries = 0

        def spawn() -> None:
            task_queue = supervisor.context.Queue()
            supervisor.spawn(
                self.predictor, self.spec, self.space,
                config, task_queue, result_queue, self.hooks,
                channel=task_queue,
            )

        def drain(block_seconds: float = 0.0) -> bool:
            """Process every queued message; returns True if any arrived."""
            got_any = False
            while True:
                try:
                    message = result_queue.get(timeout=block_seconds if not got_any else 0.0)
                except queue_mod.Empty:
                    return got_any
                got_any = True
                kind = message[0]
                if kind == "hb":
                    _, worker_id, _index, stamp = message
                    handle = supervisor.get(worker_id)
                    if handle is not None:
                        # Liveness keys off the orchestrator's own
                        # monotonic arrival clock; the worker's stamp
                        # (same CLOCK_MONOTONIC epoch under fork) only
                        # feeds the queue-lag histogram.
                        handle.beat()
                        _HEARTBEAT_LAG.observe(
                            max(handle.last_heartbeat - stamp, 0.0)
                        )
                elif kind == "result":
                    _, worker_id, shard = message
                    handle = supervisor.get(worker_id)
                    if handle is not None and handle.assigned == shard.index:
                        handle.assigned = None
                        handle.beat()
                        if handle.assigned_at is not None:
                            TRACER.record(
                                "dse.shard",
                                handle.assigned_at,
                                TRACER.now() - handle.assigned_at,
                                shard=shard.index, worker=worker_id,
                                points=shard.explored, attempt=shard.attempts,
                            )
                            handle.assigned_at = None
                    if shard.index not in completed:
                        completed[shard.index] = shard
                        _SHARDS_COMPLETED.inc()
                        self._checkpoint_write(
                            fingerprint, shard_size, num_shards, total,
                            completed, prior_retries + retries,
                        )
                elif kind == "error":
                    _, worker_id, index, trace = message
                    raise DSEError(
                        f"worker {worker_id} failed on shard {index}:\n{trace}"
                    )
                elif kind == "exit":
                    _, worker_id = message
                    handle = supervisor.get(worker_id)
                    if handle is not None:
                        handle.beat()

        def retry_shard(handle: _WorkerHandle, reason: str) -> None:
            nonlocal retries
            index = handle.assigned
            handle.assigned = None
            supervisor.discard(handle.worker_id)
            if index is None or index in completed:
                return
            if attempts.get(index, 0) >= self.max_attempts:
                raise WorkerCrashError(
                    f"shard {index} of {self.spec.name} failed "
                    f"{attempts[index]} times (last worker "
                    f"{handle.worker_id}: {reason}); giving up"
                )
            retries += 1
            _SHARD_RETRIES.inc()
            logger.warning(
                "worker %d %s on shard %d (attempt %d/%d); retrying once",
                handle.worker_id, reason, index,
                attempts.get(index, 0), self.max_attempts,
            )
            queue.appendleft(index)

        try:
            for _ in range(min(self.workers, len(queue))):
                spawn()
            out_of_time = False
            while True:
                # Assign one shard per idle worker.
                for handle in supervisor.handles():
                    if handle.assigned is not None or not handle.alive():
                        continue
                    if not queue or time.monotonic() > deadline:
                        break
                    index = queue.popleft()
                    attempts[index] = attempts.get(index, 0) + 1
                    handle.task_queue.put((index, attempts[index], shards[index]))
                    handle.assigned = index
                    handle.assigned_at = TRACER.now()
                    handle.beat()
                in_flight = [
                    h for h in supervisor.handles() if h.assigned is not None
                ]
                if time.monotonic() > deadline:
                    out_of_time = True
                if not in_flight and (not queue or out_of_time):
                    break
                drain(block_seconds=0.05)
                # Liveness: a dead worker with an assigned shard lost it.
                for handle in supervisor.handles():
                    if handle.assigned is None:
                        continue
                    if not handle.alive():
                        drain()  # absorb any result that raced the crash
                        if handle.assigned is not None:
                            _WORKER_CRASHES.inc()
                            exitcode = handle.process.exitcode
                            retry_shard(handle, f"died (exit code {exitcode})")
                            if queue and len(supervisor) < self.workers:
                                spawn()
                    elif (
                        self.heartbeat_timeout_seconds is not None
                        and handle.heartbeat_age() > self.heartbeat_timeout_seconds
                    ):
                        supervisor.kill(handle)
                        drain()
                        if handle.assigned is not None:
                            retry_shard(
                                handle,
                                f"stalled (no heartbeat for "
                                f"{self.heartbeat_timeout_seconds:g}s)",
                            )
                            if queue and len(supervisor) < self.workers:
                                spawn()
            drain()
        finally:
            def _count_notify_error(handle, exc):
                _TEARDOWN_ERRORS.inc()
                logger.warning(
                    "failed to send shutdown sentinel to worker %d: %s",
                    handle.worker_id, exc,
                )

            supervisor.shutdown(
                notify=lambda handle: handle.task_queue.put_nowait(None),
                on_notify_error=_count_notify_error,
            )
            drain_queue(result_queue)
            result_queue.close()
        return retries
