"""Pareto-frontier utilities over design objectives.

All objectives are minimised: latency directly; resource utilizations
as reported.  Used to pick the Pareto-optimal designs the paper's DSE
returns and to sanity-check DSE output in tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["dominates", "pareto_front", "pareto_merge"]


def dominates(a: Dict[str, float], b: Dict[str, float], keys: Sequence[str]) -> bool:
    """True when ``a`` is no worse than ``b`` on every key and better on one."""
    no_worse = all(a[k] <= b[k] for k in keys)
    better = any(a[k] < b[k] for k in keys)
    return no_worse and better


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Dict[str, float]],
    keys: Sequence[str] = ("latency", "DSP", "BRAM", "LUT", "FF"),
) -> List[T]:
    """Non-dominated subset of ``items`` (order preserved).

    ``objectives(item)`` must return a dict containing every key in
    ``keys``; all are minimised.
    """
    values = [objectives(item) for item in items]
    front: List[T] = []
    for i, item in enumerate(items):
        dominated = False
        for j, other in enumerate(values):
            if j != i and dominates(other, values[i], keys):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front


def pareto_merge(
    front: Sequence[T],
    additions: Sequence[T],
    objectives: Callable[[T], Dict[str, float]],
    keys: Sequence[str] = ("latency", "DSP", "BRAM", "LUT", "FF"),
) -> List[T]:
    """Merge ``additions`` into an existing Pareto ``front``.

    Incremental merging is exact: dominance is transitive, so filtering
    ``front + additions`` yields the same set (in the same first-seen
    order) as filtering the full underlying stream at once.  This is
    what lets shard-local fronts combine into the global front without
    revisiting evaluated points.
    """
    if not additions:
        return list(front)
    return pareto_front(list(front) + list(additions), objectives, keys)
