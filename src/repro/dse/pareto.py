"""Pareto-frontier utilities over design objectives.

All objectives are minimised: latency directly; resource utilizations
as reported.  Used to pick the Pareto-optimal designs the paper's DSE
returns and to sanity-check DSE output in tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = [
    "DEFAULT_OBJECTIVE_KEYS",
    "objective_keys_for",
    "dominates",
    "pareto_front",
    "pareto_merge",
]

#: Objective keys (all minimised) of the reference FPGA device — the
#: single source of truth the DSE searchers, the Pareto archive, and
#: this module's defaults share.  Device-specific axes come from
#: :func:`objective_keys_for`.
DEFAULT_OBJECTIVE_KEYS: Tuple[str, ...] = ("latency", "DSP", "BRAM", "LUT", "FF")


def objective_keys_for(device) -> Tuple[str, ...]:
    """Objective keys for Pareto dominance on ``device``.

    ``None`` (or a device without declared axes) means the reference
    FPGA's latency + DSP/BRAM/LUT/FF; registered devices report
    latency + their own resource axes (e.g. PE/ISLOT for a CGRA).
    """
    if device is None:
        return DEFAULT_OBJECTIVE_KEYS
    return tuple(getattr(device, "pareto_keys", DEFAULT_OBJECTIVE_KEYS))


def dominates(a: Dict[str, float], b: Dict[str, float], keys: Sequence[str]) -> bool:
    """True when ``a`` is no worse than ``b`` on every key and better on one."""
    no_worse = all(a[k] <= b[k] for k in keys)
    better = any(a[k] < b[k] for k in keys)
    return no_worse and better


def pareto_front(
    items: Sequence[T],
    objectives: Callable[[T], Dict[str, float]],
    keys: Sequence[str] = DEFAULT_OBJECTIVE_KEYS,
) -> List[T]:
    """Non-dominated subset of ``items`` (order preserved).

    ``objectives(item)`` must return a dict containing every key in
    ``keys``; all are minimised.
    """
    values = [objectives(item) for item in items]
    front: List[T] = []
    for i, item in enumerate(items):
        dominated = False
        for j, other in enumerate(values):
            if j != i and dominates(other, values[i], keys):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front


def pareto_merge(
    front: Sequence[T],
    additions: Sequence[T],
    objectives: Callable[[T], Dict[str, float]],
    keys: Sequence[str] = DEFAULT_OBJECTIVE_KEYS,
) -> List[T]:
    """Merge ``additions`` into an existing Pareto ``front``.

    Incremental merging is exact: dominance is transitive, so filtering
    ``front + additions`` yields the same set (in the same first-seen
    order) as filtering the full underlying stream at once.  This is
    what lets shard-local fronts combine into the global front without
    revisiting evaluated points.
    """
    if not additions:
        return list(front)
    return pareto_front(list(front) + list(additions), objectives, keys)
