"""Multi-objective DSE: maintain the predicted Pareto frontier.

Problem 2 of the paper asks for *Pareto-optimal* design points (latency
vs the four resource utilizations), not only the latency champion.
:class:`ParetoDSE` extends :class:`~repro.dse.search.ModelDSE` with a
bounded non-dominated archive updated on every prediction batch, so one
sweep yields both the top-M latency designs *and* the predicted
frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..designspace.space import point_key
from .pareto import DEFAULT_OBJECTIVE_KEYS, dominates
from .search import DSECandidate, DSEResult, ModelDSE

__all__ = ["ParetoArchive", "ParetoDSE"]


@dataclass
class ParetoArchive:
    """Bounded archive of mutually non-dominated candidates.

    When the archive exceeds ``capacity`` the most-crowded member (by
    nearest-neighbour latency distance) is evicted, preserving spread.
    ``_seen`` tombstones every key ever admitted — including evicted
    and pruned members — so re-offering a point the archive already
    judged can never re-admit it and make the frontier depend on the
    order points arrive in.
    """

    capacity: int = 64
    keys: Tuple[str, ...] = DEFAULT_OBJECTIVE_KEYS
    members: List[DSECandidate] = field(default_factory=list)
    _seen: set = field(default_factory=set)

    def _objectives(self, candidate: DSECandidate) -> Dict[str, float]:
        return {k: candidate.prediction.objectives[k] for k in self.keys}

    def offer(self, candidate: DSECandidate) -> bool:
        """Insert ``candidate`` if it is not dominated; prune dominated
        incumbents.  Returns True only when the candidate was admitted
        *and survived* — a candidate the capacity eviction removes
        immediately is reported as not admitted."""
        key = point_key(candidate.point)
        if key in self._seen:
            return False
        objectives = self._objectives(candidate)
        for member in self.members:
            if dominates(self._objectives(member), objectives, self.keys):
                return False
        survivors = [
            m
            for m in self.members
            if not dominates(objectives, self._objectives(m), self.keys)
        ]
        survivors.append(candidate)
        self._seen.add(key)
        self.members = survivors
        if len(self.members) > self.capacity:
            victim = self._evict_most_crowded()
            if victim is candidate:
                return False
        return True

    def _evict_most_crowded(self) -> Optional[DSECandidate]:
        ordered = sorted(self.members, key=lambda c: c.predicted_latency)
        # Never evict the extremes; drop the member with the smallest
        # latency gap to its neighbours.  The victim's key stays in
        # ``_seen`` (tombstoned) so it cannot be re-admitted later.
        best_index, best_gap = None, float("inf")
        for i in range(1, len(ordered) - 1):
            gap = (
                ordered[i + 1].predicted_latency - ordered[i - 1].predicted_latency
            )
            if gap < best_gap:
                best_index, best_gap = i, gap
        if best_index is None:
            return None
        victim = ordered[best_index]
        self.members = [m for m in self.members if m is not victim]
        return victim

    def frontier(self) -> List[DSECandidate]:
        """Members sorted by predicted latency (ascending)."""
        return sorted(self.members, key=lambda c: c.predicted_latency)


class ParetoDSE(ModelDSE):
    """ModelDSE that additionally tracks the predicted Pareto frontier."""

    def __init__(self, *args, archive_capacity: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        self.archive = ParetoArchive(capacity=archive_capacity, keys=tuple(self.pareto_keys))

    def _merge_top(self, top, batch):
        for candidate in batch:
            if self._usable(candidate.prediction):
                self.archive.offer(candidate)
        return super()._merge_top(top, batch)

    def run(self, time_limit_seconds: float = 3600.0) -> DSEResult:
        result = super().run(time_limit_seconds)
        result.pareto = self.archive.frontier()  # type: ignore[attr-defined]
        return result
