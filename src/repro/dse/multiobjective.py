"""Multi-objective DSE: maintain the predicted Pareto frontier.

Problem 2 of the paper asks for *Pareto-optimal* design points (latency
vs the four resource utilizations), not only the latency champion.
:class:`ParetoDSE` extends :class:`~repro.dse.search.ModelDSE` with a
bounded non-dominated archive updated on every prediction batch, so one
sweep yields both the top-M latency designs *and* the predicted
frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..designspace.space import point_key
from .pareto import dominates
from .search import DSECandidate, DSEResult, ModelDSE

__all__ = ["ParetoArchive", "ParetoDSE"]

_KEYS = ("latency", "DSP", "BRAM", "LUT", "FF")


@dataclass
class ParetoArchive:
    """Bounded archive of mutually non-dominated candidates.

    When the archive exceeds ``capacity`` the most-crowded member (by
    nearest-neighbour latency distance) is evicted, preserving spread.
    """

    capacity: int = 64
    members: List[DSECandidate] = field(default_factory=list)
    _seen: set = field(default_factory=set)

    def _objectives(self, candidate: DSECandidate) -> Dict[str, float]:
        return {k: candidate.prediction.objectives[k] for k in _KEYS}

    def offer(self, candidate: DSECandidate) -> bool:
        """Insert ``candidate`` if it is not dominated; prune dominated
        incumbents.  Returns True when the candidate was admitted."""
        key = point_key(candidate.point)
        if key in self._seen:
            return False
        objectives = self._objectives(candidate)
        for member in self.members:
            if dominates(self._objectives(member), objectives, _KEYS):
                return False
        survivors = [
            m
            for m in self.members
            if not dominates(objectives, self._objectives(m), _KEYS)
        ]
        survivors.append(candidate)
        self._seen = {point_key(m.point) for m in survivors}
        self.members = survivors
        if len(self.members) > self.capacity:
            self._evict_most_crowded()
        return True

    def _evict_most_crowded(self) -> None:
        ordered = sorted(self.members, key=lambda c: c.predicted_latency)
        # Never evict the extremes; drop the member with the smallest
        # latency gap to its neighbours.
        best_index, best_gap = None, float("inf")
        for i in range(1, len(ordered) - 1):
            gap = (
                ordered[i + 1].predicted_latency - ordered[i - 1].predicted_latency
            )
            if gap < best_gap:
                best_index, best_gap = i, gap
        if best_index is not None:
            victim = ordered[best_index]
            self.members = [m for m in self.members if m is not victim]
            self._seen.discard(point_key(victim.point))

    def frontier(self) -> List[DSECandidate]:
        """Members sorted by predicted latency (ascending)."""
        return sorted(self.members, key=lambda c: c.predicted_latency)


class ParetoDSE(ModelDSE):
    """ModelDSE that additionally tracks the predicted Pareto frontier."""

    def __init__(self, *args, archive_capacity: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        self.archive = ParetoArchive(capacity=archive_capacity)

    def _merge_top(self, top, batch):
        for candidate in batch:
            if self._usable(candidate.prediction):
                self.archive.offer(candidate)
        return super()._merge_top(top, batch)

    def run(self, time_limit_seconds: float = 3600.0) -> DSEResult:
        result = super().run(time_limit_seconds)
        result.pareto = self.archive.frontier()  # type: ignore[attr-defined]
        return result
