"""Cross-device design-space exploration over the device registry.

One search per registered target, each kept Pareto-optimal over its own
device axes, plus a *merged* front answering "which (device, design)
pairs are jointly non-dominated?".  Because different targets expose
different resource axes (DSP/BRAM/LUT/FF on an FPGA, PE/ISLOT on a
CGRA), the merged front is taken over the device-agnostic objectives
``("latency", "util_max")`` — latency in cycles and the worst-axis
utilization, both well-defined on every registry entry.

FPGA targets can be searched with a trained surrogate (the predictor is
re-bound per device via :meth:`GNNDSEPredictor.for_device`, which
conditions the encoding and rescales utilizations onto the target's
capacities); CGRA-style targets — and predictor-less runs — fall back
to :class:`AnalyticPredictor`, a thin predictor facade over the modeled
HLS/CGRA evaluator itself.

Everything here is deterministic: devices are visited in sorted-name
order and each per-device search is the (batch-boundary invariant)
:class:`~repro.dse.search.ModelDSE`, so repeated runs produce
bit-identical merged fronts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hls.device import get_device
from ..model.predictor import Prediction
from .pareto import pareto_front
from .search import DSECandidate, DSEResult, ModelDSE

__all__ = [
    "CROSS_DEVICE_KEYS",
    "AnalyticPredictor",
    "DeviceFrontEntry",
    "CrossDeviceResult",
    "cross_device_objectives",
    "run_cross_device_dse",
]

#: Device-agnostic objective keys the merged cross-device front is kept
#: over.  Per-device axes are incomparable across targets; latency and
#: the worst-axis utilization exist for every registry entry.
CROSS_DEVICE_KEYS: Tuple[str, ...] = ("latency", "util_max")


class AnalyticPredictor:
    """Predictor facade over the modeled HLS/CGRA evaluator.

    Quacks like :class:`~repro.model.GNNDSEPredictor` as far as the DSE
    needs (``device`` attribute + ``predict_batch``), but answers with
    the analytic estimator itself — exact by construction, no trained
    artifact required.  This is how CGRA-style targets (no surrogate
    training data) and predictor-less cross-device sweeps are searched.
    """

    def __init__(self, device):
        self.device = device
        from ..hls.tool import MerlinHLSTool  # local import: dse ← hls only here

        self.tool = MerlinHLSTool(device=device)

    def predict_batch(self, kernel: str, points: Sequence) -> List[Prediction]:
        from ..kernels import get_kernel

        spec = get_kernel(kernel)
        out: List[Prediction] = []
        for point in points:
            result = self.tool.synthesize(spec, point)
            out.append(
                Prediction(
                    valid=result.valid,
                    valid_prob=1.0 if result.valid else 0.0,
                    objectives=result.objectives,
                )
            )
        return out

    def predict(self, kernel: str, point) -> Prediction:
        return self.predict_batch(kernel, [point])[0]


@dataclass
class DeviceFrontEntry:
    """One (device, design) pair on the merged cross-device front."""

    device: str
    candidate: DSECandidate

    def payload(self) -> Dict[str, object]:
        from ..designspace.space import point_key

        objectives = self.candidate.prediction.objectives or {}
        return {
            "device": self.device,
            "point": point_key(self.candidate.point),
            "objectives": {k: float(v) for k, v in sorted(objectives.items())},
            **{k: float(v) for k, v in sorted(cross_device_objectives(self).items())},
        }


def cross_device_objectives(entry: DeviceFrontEntry) -> Dict[str, float]:
    """Project a device-front entry onto :data:`CROSS_DEVICE_KEYS`."""
    objectives = entry.candidate.prediction.objectives or {}
    utils = [v for k, v in objectives.items() if k != "latency"]
    return {
        "latency": float(objectives.get("latency", float("inf"))),
        "util_max": float(max(utils)) if utils else float("inf"),
    }


@dataclass
class CrossDeviceResult:
    """Outcome of one cross-device DSE run.

    ``per_device`` maps device name → that device's own
    :class:`~repro.dse.search.DSEResult` (front over the device's own
    axes); ``merged`` is the jointly non-dominated set of
    device-annotated designs over :data:`CROSS_DEVICE_KEYS`.
    """

    kernel: str
    per_device: Dict[str, DSEResult]
    merged: List[DeviceFrontEntry] = field(default_factory=list)

    @property
    def devices(self) -> List[str]:
        return sorted(self.per_device)

    def payload(self) -> Dict[str, object]:
        """JSON-ready, deterministic summary of the run."""
        from ..designspace.space import point_key

        return {
            "kernel": self.kernel,
            "devices": self.devices,
            "merged": [entry.payload() for entry in self.merged],
            "per_device": {
                name: {
                    "device": result.device,
                    "explored": result.explored,
                    "exhaustive": result.exhaustive,
                    "pareto": [
                        {
                            "point": point_key(c.point),
                            "objectives": {
                                k: float(v)
                                for k, v in sorted(
                                    (c.prediction.objectives or {}).items()
                                )
                            },
                        }
                        for c in result.pareto
                    ],
                }
                for name, result in sorted(self.per_device.items())
            },
        }


def _resolve(device):
    return get_device(device) if isinstance(device, str) else device


def run_cross_device_dse(
    spec,
    space,
    devices: Sequence,
    predictor=None,
    fit_threshold: float = 0.8,
    top_m: int = 10,
    batch_size: int = 256,
    exhaustive_limit: int = 20_000,
    time_limit_seconds: float = 3600.0,
) -> CrossDeviceResult:
    """Run one DSE per device and merge the fronts.

    ``devices`` holds registry names or device objects.  FPGA targets
    use ``predictor`` (re-bound per device) when one is given; CGRA
    targets and predictor-less runs use :class:`AnalyticPredictor`.
    The per-device time budget is ``time_limit_seconds`` each.
    """
    resolved = sorted((_resolve(d) for d in devices), key=lambda d: d.name)
    per_device: Dict[str, DSEResult] = {}
    for device in resolved:
        use_model = (
            predictor is not None
            and getattr(device, "kind", "fpga") == "fpga"
            and hasattr(predictor, "for_device")
        )
        if use_model:
            dse = ModelDSE(
                predictor.for_device(device),
                spec,
                space,
                fit_threshold=fit_threshold,
                top_m=top_m,
                batch_size=batch_size,
                exhaustive_limit=exhaustive_limit,
                device=device,
            )
        else:
            dse = ModelDSE(
                AnalyticPredictor(device),
                spec,
                space,
                fit_threshold=fit_threshold,
                top_m=top_m,
                batch_size=batch_size,
                exhaustive_limit=exhaustive_limit,
                pipeline=None,
                use_pipeline=False,
                device=device,
            )
        per_device[device.name] = dse.run(time_limit_seconds)

    entries = [
        DeviceFrontEntry(device=name, candidate=candidate)
        for name in sorted(per_device)
        for candidate in per_device[name].pareto
    ]
    merged = pareto_front(entries, cross_device_objectives, CROSS_DEVICE_KEYS)
    return CrossDeviceResult(kernel=spec.name, per_device=per_device, merged=merged)
