"""Model-driven design-space exploration (Section 4.4).

With the predictor answering in milliseconds, small spaces are swept
**exhaustively**; enormous ones are searched with the ordered-pragma
heuristic: knobs are visited in the order of :func:`order_pragmas`, a
beam of the most-promising partial assignments is kept, and the global
top-M predicted designs are retained throughout.  A wall-clock limit
bounds the search exactly as in the paper (one hour for mvt/2mm).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..designspace.space import DesignPoint, DesignSpace, point_key
from ..model.predictor import GNNDSEPredictor, Prediction
from .ordering import order_pragmas
from .pareto import DEFAULT_OBJECTIVE_KEYS, objective_keys_for, pareto_front, pareto_merge
from .pipeline import EvaluationPipeline, PipelineStats

__all__ = ["PARETO_KEYS", "DSECandidate", "DSEResult", "ModelDSE"]

#: Objectives (all minimised) the DSE's running Pareto front is kept
#: over on the reference device; device-bound searches use the target's
#: own axes (see :func:`repro.dse.pareto.objective_keys_for`).
PARETO_KEYS = DEFAULT_OBJECTIVE_KEYS


def _candidate_objectives(candidate: "DSECandidate"):
    return candidate.prediction.objectives


@dataclass
class DSECandidate:
    """One predicted-good design point."""

    point: DesignPoint
    prediction: Prediction

    @property
    def predicted_latency(self) -> float:
        # Mirrors ``Prediction.latency`` exactly (``inf`` when the cascade
        # skipped regression), so sorting candidates and reading their
        # predictions can never disagree at the validity threshold.
        return self.prediction.latency


@dataclass
class DSEResult:
    """Outcome of one model-driven DSE run.

    ``pareto`` is the non-dominated subset (over :data:`PARETO_KEYS`)
    of every *usable* candidate the search scored, in first-evaluated
    order.  ``workers``/``shards``/``shards_resumed``/``retries``
    describe how :class:`~repro.dse.parallel.ParallelDSE` produced the
    result; the serial searchers leave them at their defaults.

    ``strategy`` names the search that produced the result (``"beam"``
    for this module's exhaustive/beam search); when it is ``"race"``
    the ``race`` dict carries the strategy racer's budget ledger and
    per-arm totals (:meth:`~repro.dse.race.RaceResult.summary`).
    """

    kernel: str
    top: List[DSECandidate]
    explored: int
    seconds: float
    exhaustive: bool
    predictions_per_second: float = 0.0
    stats: Optional[PipelineStats] = None
    pareto: List[DSECandidate] = field(default_factory=list)
    workers: int = 1
    shards: int = 0
    shards_resumed: int = 0
    retries: int = 0
    strategy: str = "beam"
    race: Optional[Dict[str, object]] = None
    #: Name of the registered device the search targeted ("" = the
    #: reference device, for results predating device provenance).
    device: str = ""

    def top_points(self) -> List[DesignPoint]:
        return [c.point for c in self.top]

    def pareto_points(self) -> List[DesignPoint]:
        return [c.point for c in self.pareto]


class ModelDSE:
    """Design-space exploration driven by the trained predictor.

    Parameters
    ----------
    predictor:
        Trained :class:`~repro.model.GNNDSEPredictor`.
    spec, space:
        Kernel and its design space.
    fit_threshold:
        Utilization ceiling T_u of Eq. 7.
    top_m:
        Number of best designs to keep (the paper evaluates the top 10
        with the real HLS tool afterwards).
    batch_size:
        Prediction batch size.
    exhaustive_limit:
        Sweep the whole space when its size does not exceed this.
    beam_width:
        Beam kept per knob step in heuristic mode.
    pipeline:
        Evaluation pipeline to route predictions through; constructed
        from ``predictor`` when not given.  Pass ``pipeline=None`` and
        ``use_pipeline=False`` to call ``predictor.predict_batch``
        directly (the pre-pipeline behaviour).
    device:
        Registered device the search targets.  Defaults to the
        predictor's bound device (``predictor.device``) or, failing
        that, the reference device; determines the Pareto objective
        keys and the ``device`` stamp on results.
    """

    def __init__(
        self,
        predictor: GNNDSEPredictor,
        spec,
        space: DesignSpace,
        fit_threshold: float = 0.8,
        top_m: int = 10,
        batch_size: int = 256,
        exhaustive_limit: int = 20_000,
        beam_width: int = 8,
        pipeline: Optional[EvaluationPipeline] = None,
        use_pipeline: bool = True,
        device=None,
    ):
        self.predictor = predictor
        self.spec = spec
        self.space = space
        self.fit_threshold = fit_threshold
        self.top_m = top_m
        self.batch_size = batch_size
        self.exhaustive_limit = exhaustive_limit
        self.beam_width = beam_width
        if pipeline is None and use_pipeline:
            pipeline = EvaluationPipeline(predictor)
        self.pipeline = pipeline
        self.device = device if device is not None else getattr(predictor, "device", None)
        self.pareto_keys = objective_keys_for(self.device)
        self.device_name = getattr(self.device, "name", "")
        # Device-declared fit axes (None = all non-latency objectives,
        # the reference-device behaviour).
        self.fit_axes = getattr(self.device, "fit_axes", None)

    # -- scoring ------------------------------------------------------------------

    def _usable(self, prediction: Prediction) -> bool:
        return prediction.valid and prediction.fits(self.fit_threshold, axes=self.fit_axes)

    def _merge_top(
        self, top: List[DSECandidate], batch: List[DSECandidate]
    ) -> List[DSECandidate]:
        merged = top + [c for c in batch if self._usable(c.prediction)]
        merged.sort(key=lambda c: c.predicted_latency)
        seen = set()
        unique: List[DSECandidate] = []
        for candidate in merged:
            key = point_key(candidate.point)
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
            if len(unique) >= self.top_m:
                break
        return unique

    def _predict_batch(self, points: List[DesignPoint]) -> List[DSECandidate]:
        if self.pipeline is not None:
            # The search only reads objectives of usable (valid) points, so
            # the pipeline may skip regression for classifier-rejected ones.
            predictions = self.pipeline.predict_batch(
                self.spec.name, points, objectives_for="valid"
            )
        else:
            predictions = self.predictor.predict_batch(self.spec.name, points)
        return [DSECandidate(p, pred) for p, pred in zip(points, predictions)]

    def _ensure_objectives(self, scored: List[DSECandidate]) -> List[DSECandidate]:
        """Re-score candidates whose regression pass was cascade-skipped.

        Only needed on the heuristic fallback path where no usable
        candidate exists and the beam must rank by predicted latency;
        the classifier outputs are already cached, so this costs one
        regression pass over the batch.
        """
        if self.pipeline is None or all(
            c.prediction.objectives is not None for c in scored
        ):
            return scored
        points = [c.point for c in scored]
        predictions = self.pipeline.predict_batch(
            self.spec.name, points, objectives_for="all"
        )
        return [DSECandidate(p, pred) for p, pred in zip(points, predictions)]

    # -- public API ------------------------------------------------------------------

    def run(self, time_limit_seconds: float = 3600.0) -> DSEResult:
        """Run the DSE; returns the predicted top-M designs."""
        if self.space.size(exact_limit=self.exhaustive_limit) <= self.exhaustive_limit:
            return self._run_exhaustive(time_limit_seconds)
        return self._run_heuristic(time_limit_seconds)

    # -- exhaustive sweep ---------------------------------------------------------------

    def _stats_since(self, before: Optional[PipelineStats]) -> Optional[PipelineStats]:
        if self.pipeline is None or before is None:
            return None
        return self.pipeline.stats - before

    def evaluate_stream(
        self,
        points: Iterable[DesignPoint],
        deadline: Optional[float] = None,
        on_batch: Optional[Callable[[int], None]] = None,
        top: Optional[List[DSECandidate]] = None,
        pareto: Optional[List[DSECandidate]] = None,
    ) -> Tuple[List[DSECandidate], List[DSECandidate], int, bool]:
        """Score a point stream in batches; the shared exhaustive scan.

        Both the serial exhaustive sweep and every parallel-DSE shard
        (:mod:`repro.dse.parallel`) run THIS loop, so their per-batch
        merge behaviour — and therefore their results — cannot drift
        apart.  The iterated top-M merge and the incremental Pareto
        merge are both batch-boundary invariant, which is what makes
        sharded evaluation bit-identical to the single-process sweep.

        Returns ``(top, pareto, explored, out_of_time)``.  ``deadline``
        is an absolute ``time.monotonic()`` bound checked after each
        full batch (monotonic, so a stepped wall clock can neither cut
        a sweep short nor extend it); ``on_batch`` (called with the
        running explored count) is the hook parallel workers use for
        heartbeats and tests/benchmarks use for fault and latency
        injection.
        """
        top = list(top) if top else []
        pareto = list(pareto) if pareto else []
        explored = 0
        out_of_time = False

        def consume(batch: List[DesignPoint]) -> None:
            nonlocal top, pareto, explored
            scored = self._predict_batch(batch)
            top = self._merge_top(top, scored)
            usable = [c for c in scored if self._usable(c.prediction)]
            pareto = pareto_merge(pareto, usable, _candidate_objectives, self.pareto_keys)
            explored += len(batch)
            if on_batch is not None:
                on_batch(explored)

        pending: List[DesignPoint] = []
        for point in points:
            pending.append(point)
            if len(pending) >= self.batch_size:
                consume(pending)
                pending = []
                if deadline is not None and time.monotonic() > deadline:
                    out_of_time = True
                    break
        if pending and not out_of_time and (deadline is None or time.monotonic() <= deadline):
            consume(pending)
        return top, pareto, explored, out_of_time

    def _run_exhaustive(self, time_limit_seconds: float) -> DSEResult:
        start = time.monotonic()
        stats_before = self.pipeline.stats.copy() if self.pipeline else None
        top, pareto, explored, _ = self.evaluate_stream(
            self.space.enumerate(), deadline=start + time_limit_seconds
        )
        seconds = time.monotonic() - start
        return DSEResult(
            kernel=self.spec.name,
            top=top,
            explored=explored,
            seconds=seconds,
            exhaustive=True,
            predictions_per_second=explored / seconds if seconds > 0 else 0.0,
            stats=self._stats_since(stats_before),
            pareto=pareto,
            device=self.device_name,
        )

    # -- ordered heuristic search ----------------------------------------------------------

    def _run_heuristic(self, time_limit_seconds: float) -> DSEResult:
        start = time.monotonic()
        stats_before = self.pipeline.stats.copy() if self.pipeline else None
        ordered = order_pragmas(self.space)
        seen = set()
        top: List[DSECandidate] = []
        explored = 0

        base = self.space.default_point()
        beam: List[DesignPoint] = [base]
        out_of_time = False
        # Repeated ordered sweeps refine the beam until the clock runs out.
        for sweep in range(8):
            if out_of_time:
                break
            improved = False
            for knob in ordered:
                candidates: List[DesignPoint] = []
                for point in beam:
                    for mutated in self.space.mutations(point, knob.name) + [point]:
                        key = point_key(mutated)
                        if key in seen:
                            continue
                        seen.add(key)
                        candidates.append(mutated)
                if not candidates:
                    continue
                scored: List[DSECandidate] = []
                for i in range(0, len(candidates), self.batch_size):
                    scored.extend(self._predict_batch(candidates[i : i + self.batch_size]))
                explored += len(candidates)
                top_before = top[0].predicted_latency if top else float("inf")
                top = self._merge_top(top, scored)
                if top and top[0].predicted_latency < top_before:
                    improved = True
                # Next beam: best usable candidates (fall back to lowest
                # predicted latency when nothing usable has appeared yet).
                usable = [c for c in scored if self._usable(c.prediction)]
                if not usable:
                    scored = self._ensure_objectives(scored)
                pool = usable or scored
                pool.sort(key=lambda c: c.predicted_latency)
                beam = [c.point for c in pool[: self.beam_width]] or beam
                if time.monotonic() - start > time_limit_seconds:
                    out_of_time = True
                    break
            if not improved:
                break
        seconds = time.monotonic() - start
        return DSEResult(
            kernel=self.spec.name,
            top=top,
            explored=explored,
            seconds=seconds,
            exhaustive=False,
            predictions_per_second=explored / seconds if seconds > 0 else 0.0,
            stats=self._stats_since(stats_before),
            # The beam search only retains the top list; its front is
            # the non-dominated subset of those survivors.
            pareto=pareto_front(top, _candidate_objectives, self.pareto_keys),
            device=self.device_name,
        )
