"""Batched, cached evaluation pipeline: the DSE surrogate hot path.

The searchers in this package probe the GNN surrogate thousands of
times per run, so evaluation throughput — not model quality — bounds
how much of a design space one wall-clock budget can cover.  This
module turns the point-by-point reference path into a pipeline:

1. **Keyed encoding cache** — each kernel is lowered and encoded once
   (:class:`EncodingCache`); per candidate only the pragma-node feature
   cells (``len(pragma_rows) * 6`` floats) are rewritten inside a tiled
   batch template, instead of rebuilding the ProGraML graph and copying
   the full feature matrix per point.
2. **Compiled batched inference** — :class:`CompiledGNNEngine` lowers
   the transformer-conv GNN stack to flat numpy kernels over a fixed
   batch template (fused projections, CSR segment reductions, a
   self-loop split that keeps the reference summation order), replacing
   thousands of small autograd ``Tensor`` ops per point with a handful
   of large array operations per batch.
3. **Classifier-first cascade** — searches only consume regression
   objectives of *valid* candidates, so ``objectives_for="valid"``
   skips the two regression forwards for points the classifier rejects.
4. **Pipeline statistics** — :class:`PipelineStats` tracks points/sec,
   cache hits, batch counts and per-stage wall time; searchers thread
   it through :class:`~repro.dse.search.DSEResult` and the CLI prints
   it.

Results are bit-identical to the reference path: both materialize
predictions through
:func:`~repro.model.predictor.predictions_from_outputs`, which
canonicalizes every scalar through float32, and the compiled engine
mirrors the reference operation order exactly (see
``tests/test_pipeline.py``).  Predictors without the compiled-engine
contract (duck-typed stubs, non-transformer configs) transparently fall
back to their own ``predict_batch``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..designspace.space import DesignPoint, point_key
from ..graph import EncodedGraph, encode_kernel
from ..graph.encoding import PRAGMA_FEATURE_SLICE
from ..kernels import get_kernel
from ..model.predictor import (
    DEFAULT_VALID_THRESHOLD,
    Prediction,
    predictions_from_outputs,
    scale_objectives_for_device,
)
from ..nn.conv import TransformerConv
from ..nn.lazy.equiv import EngineEquivalenceError, predictions_equivalent
from ..nn.pooling import NodeAttentionPool, SumPool
from ..nn.tensor import get_default_dtype, no_grad
from ..obs import counter, histogram, span
from .fused import FusedGNNEngine, _FusedTemplate, forward_all as fused_forward_all

__all__ = [
    "CompiledGNNEngine",
    "EncodingCache",
    "EvaluationPipeline",
    "PipelineStats",
    "UnsupportedModelError",
    "surrogate_scorers",
]


def surrogate_scorers(
    pipeline: "EvaluationPipeline", kernel: str, fit_threshold: float = 0.8
):
    """Point and batch scorers for the annealer, backed by one pipeline.

    Both go through the cascade (regression only for valid points) and
    share the pipeline's point cache; unusable points score ``inf``,
    which the annealer never reads — it applies its own penalty.
    """

    def to_pair(prediction: Prediction) -> Tuple[bool, float]:
        usable = prediction.valid and prediction.fits(fit_threshold)
        return usable, prediction.latency

    def scorer(point: DesignPoint) -> Tuple[bool, float]:
        return to_pair(
            pipeline.predict_batch(kernel, [point], objectives_for="valid")[0]
        )

    def batch_scorer(points: List[DesignPoint]) -> List[Tuple[bool, float]]:
        return [
            to_pair(p)
            for p in pipeline.predict_batch(kernel, points, objectives_for="valid")
        ]

    return scorer, batch_scorer


class UnsupportedModelError(RuntimeError):
    """The compiled engine cannot lower this model architecture."""


# Process-wide observability instruments (see ``repro.obs``).  Counters
# are always on (one integer add behind a lock, a handful per *batch*,
# never per point); spans compile to a shared no-op unless tracing is
# enabled, so the PR 1 hot-path speedups are preserved.
_OBS_POINTS = counter("pipeline.points")
_OBS_BATCHES = counter("pipeline.batches")
_OBS_CACHE_HITS = counter("pipeline.cache_hits")
_OBS_CACHE_MISSES = counter("pipeline.cache_misses")
_OBS_BATCH_FILL = histogram("pipeline.batch_fill")


# ---------------------------------------------------------------------------
# statistics


@dataclass
class PipelineStats:
    """Counters and per-stage wall time for one pipeline (cumulative)."""

    points: int = 0  #: predictions returned to callers
    batches: int = 0  #: model forward batches executed
    model_points: int = 0  #: points actually pushed through a model
    cache_hits: int = 0
    cache_misses: int = 0
    cascade_skipped: int = 0  #: points whose regression forwards were skipped
    padded_slots: int = 0  #: always 0 since right-sized chunk templates; kept for schema stability
    encode_seconds: float = 0.0  #: template fill + pragma patching
    inference_seconds: float = 0.0  #: model forward passes
    materialize_seconds: float = 0.0  #: Prediction construction
    wall_seconds: float = 0.0
    engine: str = ""

    def points_per_second(self) -> float:
        return self.points / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def cache_hit_rate(self) -> float:
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    def __sub__(self, other: "PipelineStats") -> "PipelineStats":
        out = PipelineStats(engine=self.engine)
        for f in fields(self):
            if f.name == "engine":
                continue
            setattr(out, f.name, getattr(self, f.name) - getattr(other, f.name))
        return out

    def __add__(self, other: "PipelineStats") -> "PipelineStats":
        """Merge counters from another pipeline (parallel-DSE workers)."""
        out = PipelineStats(engine=self.engine or other.engine)
        for f in fields(self):
            if f.name == "engine":
                continue
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def copy(self) -> "PipelineStats":
        return PipelineStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form, plus the derived rates (``/metrics``, ``dse --output``)."""
        out: Dict[str, object] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["points_per_second"] = self.points_per_second()
        out["cache_hit_rate"] = self.cache_hit_rate()
        return out

    def summary(self) -> str:
        return (
            f"{self.points:,} pts in {self.wall_seconds:.2f}s "
            f"({self.points_per_second():,.0f} pts/s, {self.engine}) | "
            f"{self.batches} batches, cache {self.cache_hits}/{self.cache_hits + self.cache_misses} hit, "
            f"{self.cascade_skipped} regression-skipped | "
            f"encode {self.encode_seconds:.2f}s infer {self.inference_seconds:.2f}s "
            f"materialize {self.materialize_seconds:.2f}s"
        )


# ---------------------------------------------------------------------------
# batch template: one kernel's graph tiled ``capacity`` times


class _BatchTemplate:
    """Fixed-capacity batched graph structure for one kernel.

    Real edges are sorted (stably) by destination and tiled per graph
    copy; self-loops are *split out* and handled on node-aligned arrays.
    Because the reference batch appends each node's self-loop after its
    real in-edges (with exactly-zero edge features), reducing the real
    edges first and folding the self contribution in afterwards
    reproduces the reference segment sums association-for-association.
    """

    def __init__(self, enc: EncodedGraph, capacity: int, dtype):
        self.enc = enc
        self.capacity = capacity
        self.dtype = np.dtype(dtype)
        N = enc.num_nodes
        src, dst = enc.edge_index
        order = np.argsort(dst, kind="stable")
        self.eattr_sorted = enc.edge_attr[order]
        src_sorted = src[order].astype(np.int64)
        dst_sorted = dst[order].astype(np.int64)
        offsets = (np.arange(capacity, dtype=np.int64) * N)[:, None]
        self.src = (src_sorted[None, :] + offsets).ravel()
        self.dst = (dst_sorted[None, :] + offsets).ravel()
        self.num_nodes = N
        self.total_nodes = N * capacity
        self.total_edges = src_sorted.shape[0] * capacity
        counts = np.tile(np.bincount(dst_sorted, minlength=N), capacity)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        self.seg_starts = indptr[:-1]
        self.seg_nonempty = counts > 0
        ones = np.ones(self.total_edges, dtype=np.float32)
        self.edge_csr = sp.csr_matrix(
            (ones, np.arange(self.total_edges), indptr),
            shape=(self.total_nodes, self.total_edges),
        )
        node_indptr = np.arange(capacity + 1, dtype=np.int64) * N
        self.node_csr = sp.csr_matrix(
            (np.ones(self.total_nodes, dtype=np.float32),
             np.arange(self.total_nodes), node_indptr),
            shape=(capacity, self.total_nodes),
        )
        self.node_starts = node_indptr[:-1]
        self.graph_ids = np.repeat(np.arange(capacity, dtype=np.int64), N)
        self.x = np.tile(enc.x_base.astype(self.dtype), (capacity, 1))
        self.pragma_rows = enc.pragma_row_order
        self.all_pragma_rows = (self.pragma_rows[None, :] + offsets).ravel()

    def set_point(self, slot: int, point: DesignPoint) -> None:
        """Write one candidate's pragma features into a template slot."""
        rows, values = self.enc.pragma_patch(point)
        self.x[slot * self.num_nodes + rows, PRAGMA_FEATURE_SLICE] = values


# ---------------------------------------------------------------------------
# compiled engine


def _mlp_weights(mlp, dtype) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
    weights = []
    for layer in mlp.net.layers:
        if hasattr(layer, "weight"):
            weights.append((
                layer.weight.data.astype(dtype),
                None if layer.bias is None else layer.bias.data.astype(dtype),
            ))
        elif type(layer).__name__ not in ("ELU", "Dropout", "Identity"):
            raise UnsupportedModelError(
                f"compiled engine only lowers ELU MLPs, found {type(layer).__name__}"
            )
    return weights


def _run_mlp(weights, x: np.ndarray) -> np.ndarray:
    for i, (W, b) in enumerate(weights):
        x = x @ W
        if b is not None:
            x += b
        if i < len(weights) - 1:
            neg = np.exp(np.clip(x, -60.0, 0.0)) - 1.0
            np.copyto(neg, x, where=x > 0)
            x = neg
    return x


class _Workspace:
    """Reusable scratch buffers keyed by (tag, layer)."""

    def __init__(self):
        self._bufs: Dict[tuple, np.ndarray] = {}

    def get(self, key, shape, dtype) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf


class CompiledGNNEngine:
    """One GNN model lowered onto a :class:`_BatchTemplate`.

    Supports the paper's architecture family: a stack of
    :class:`~repro.nn.conv.TransformerConv` layers with ELU, optional
    jumping knowledge (``max``/``last``), attention or sum pooling, and
    MLP heads.  Anything else raises :class:`UnsupportedModelError` so
    the pipeline can fall back to the reference path.
    """

    def __init__(self, model, template: _BatchTemplate):
        self.template = template
        self.dtype = template.dtype
        self._ws = _Workspace()
        self.trace = None  # set to a list to record per-layer node embeddings
        self._compile(model)

    @staticmethod
    def supports(model) -> bool:
        convs = getattr(model, "convs", None)
        if not convs or not all(isinstance(c, TransformerConv) for c in convs):
            return False
        jkn = getattr(model, "jkn", None)
        if jkn is not None and jkn.mode not in ("max", "last"):
            return False
        pool = getattr(model, "pool", None)
        if not isinstance(pool, (NodeAttentionPool, SumPool)):
            return False
        heads = getattr(model, "heads", None)
        return heads is not None and getattr(heads, "task", None) in (
            "classification",
            "regression",
        )

    def _compile(self, model) -> None:
        if not self.supports(model):
            raise UnsupportedModelError(
                f"compiled engine cannot lower {type(model).__name__}"
            )
        dtype = self.dtype
        tpl = self.template
        # Edge features in the exact shape the reference Batch lowers them:
        # real edges plus zero-feature self-loops, stably sorted by dst.
        # Projecting THIS matrix (and then selecting the real-edge rows,
        # which stay in the engine's sorted order) keeps every row
        # bit-identical to the per-point path — BLAS results can depend on
        # the row count of the gemm, so the input shape must match too.
        enc = tpl.enc
        N = enc.num_nodes
        E_real = enc.edge_index.shape[1]
        ref_dst = np.concatenate([enc.edge_index[1], np.arange(N, dtype=np.int64)])
        ref_order = np.argsort(ref_dst, kind="stable")
        eattr_ref = np.vstack(
            [enc.edge_attr, np.zeros((N, enc.edge_attr.shape[1]), dtype=np.float32)]
        )[ref_order].astype(dtype)
        real_rows = np.nonzero(ref_order < E_real)[0]
        layers = []
        for conv in model.convs:
            od = conv.out_dim
            edge_proj = (eattr_ref @ conv.lin_edge.weight.data.astype(dtype))[real_rows]
            Wb = conv.lin_beta.weight.data.astype(dtype)
            layers.append(dict(
                Wq=np.ascontiguousarray(conv.lin_query.weight.data.astype(dtype)),
                bq=conv.lin_query.bias.data.astype(dtype),
                Wkv=np.ascontiguousarray(
                    np.hstack([conv.lin_key.weight.data, conv.lin_value.weight.data])
                ).astype(dtype),
                bkv=np.hstack(
                    [conv.lin_key.bias.data, conv.lin_value.bias.data]
                ).astype(dtype),
                Wr=np.ascontiguousarray(conv.lin_root.weight.data.astype(dtype)),
                br=conv.lin_root.bias.data.astype(dtype),
                # lin_beta acts on concat([agg, root, agg - root]); keep the
                # single gemm over the concatenated input so the gate is
                # bit-identical to the reference at any dtype (splitting the
                # matrix re-associates the dot products and drifts by ulps).
                Wb=np.ascontiguousarray(Wb),
                bb=conv.lin_beta.bias.data.astype(dtype),
                edge_kv=np.tile(
                    np.ascontiguousarray(np.hstack([edge_proj, edge_proj])),
                    (tpl.capacity, 1),
                ),
                heads=conv.heads, head_dim=conv.head_dim, out=od,
            ))
        self._layers = layers
        self._jkn_mode = model.jkn.mode if model.jkn is not None else "last"
        pool = model.pool
        if isinstance(pool, NodeAttentionPool):
            self._pool = dict(
                kind="attention",
                score=_mlp_weights(pool.score_mlp, dtype),
                value=_mlp_weights(pool.value_mlp, dtype),
            )
        else:
            self._pool = dict(kind="sum")
        heads = model.heads
        if heads.task == "classification":
            self._heads = [_mlp_weights(heads.classifier, dtype)]
        else:
            self._heads = [_mlp_weights(h, dtype) for h in heads.heads]
        self._task = heads.task
        # Layer-1 projections of the tiled base features: only pragma rows
        # change between candidates, so everything else is precomputed.
        L = layers[0]
        xb = tpl.enc.x_base.astype(dtype)
        self._l1_base = [
            np.tile(xb @ L["Wq"] + L["bq"], (tpl.capacity, 1)),
            np.tile(xb @ L["Wkv"] + L["bkv"], (tpl.capacity, 1)),
            np.tile(xb @ L["Wr"] + L["br"], (tpl.capacity, 1)),
        ]

    # -- forward ----------------------------------------------------------------

    def _proj(self, h: np.ndarray, W: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``h @ W + b`` computed one graph copy at a time.

        BLAS gemm results can differ by ulps depending on the row count,
        so a single tall gemm over all tiled copies would not be
        bit-identical to the per-point reference.  A batched 3-D matmul
        runs one gemm per graph copy with exactly the per-point shape.
        """
        B = self.template.capacity
        np.matmul(h.reshape(B, -1, h.shape[1]), W, out=out.reshape(B, -1, W.shape[1]))
        out += b
        return out

    def forward(self) -> np.ndarray:
        """Run the compiled forward over the template's current features."""
        tpl, ws, dt = self.template, self._ws, self.dtype
        src, dst = tpl.src, tpl.dst
        NT, E = tpl.total_nodes, tpl.total_edges
        B = tpl.capacity
        rows = tpl.all_pragma_rows
        P = tpl.pragma_rows.shape[0]
        L1 = self._layers[0]
        xr = tpl.x[rows]
        pq1, pkv1, pr1 = self._l1_base
        pq1[rows] = self._proj(xr, L1["Wq"], L1["bq"], np.empty((B * P, L1["out"]), dt))
        pkv1[rows] = self._proj(xr, L1["Wkv"], L1["bkv"], np.empty((B * P, 2 * L1["out"]), dt))
        pr1[rows] = self._proj(xr, L1["Wr"], L1["br"], np.empty((B * P, L1["out"]), dt))
        outs = []
        h = tpl.x
        for li, L in enumerate(self._layers):
            H, D, od = L["heads"], L["head_dim"], L["out"]
            if li == 0:
                pq, pkv, root = pq1, pkv1, pr1
            else:
                pq = self._proj(h, L["Wq"], L["bq"], ws.get(("pq", li), (NT, od), dt))
                pkv = self._proj(h, L["Wkv"], L["bkv"], ws.get(("pkv", li), (NT, 2 * od), dt))
                root = self._proj(h, L["Wr"], L["br"], ws.get(("pr", li), (NT, od), dt))
            q = np.take(pq, dst, axis=0, out=ws.get(("q", li), (E, od), dt), mode="clip")
            kv = np.take(pkv, src, axis=0, out=ws.get(("kv", li), (E, 2 * od), dt), mode="clip")
            kv += L["edge_kv"]
            k = kv[:, :od]
            v = kv[:, od:]
            # (q · k) per head via multiply + pairwise sum, matching the
            # reference ``(q * k).sum(axis=2)`` bit-for-bit (einsum uses a
            # different accumulation order and drifts by ulps at float32).
            prod = np.multiply(
                q.reshape(E, H, D), k.reshape(E, H, D),
                out=ws.get(("prod", li), (E, H, D), dt),
            )
            scores = prod.sum(axis=2, out=ws.get(("scores", li), (E, H), dt))
            scores *= 1.0 / np.sqrt(D)
            # Self-loop contributions on node-aligned arrays (self-loop edge
            # features are exactly zero, so k/v are the projections themselves).
            k_self = pkv[:, :od]
            v_self = pkv[:, od:]
            prod_s = np.multiply(
                pq.reshape(NT, H, D), k_self.reshape(NT, H, D),
                out=ws.get(("prod_s", li), (NT, H, D), dt),
            )
            s_self = prod_s.sum(axis=2, out=ws.get(("s_self", li), (NT, H), dt))
            s_self *= 1.0 / np.sqrt(D)
            m = ws.get(("m", li), (NT, H), dt)
            m[:] = -np.inf
            m[tpl.seg_nonempty] = np.maximum.reduceat(
                scores, tpl.seg_starts[tpl.seg_nonempty], axis=0
            )
            np.maximum(m, s_self, out=m)
            scores -= m[dst]
            np.clip(scores, -60.0, 60.0, out=scores)
            np.exp(scores, out=scores)
            s_self -= m
            np.clip(s_self, -60.0, 60.0, out=s_self)
            np.exp(s_self, out=s_self)
            denom = tpl.edge_csr @ scores
            denom += s_self
            denom += 1e-16
            np.power(denom, -1.0, out=denom)
            scores *= denom[dst]
            s_self *= denom
            v.reshape(E, H, D).__imul__(scores.reshape(E, H, 1))
            agg = tpl.edge_csr @ v
            agg.reshape(NT, H, D).__iadd__(
                s_self.reshape(NT, H, 1) * v_self.reshape(NT, H, D)
            )
            gi = ws.get(("gi", li), (NT, 3 * od), dt)
            gi[:, :od] = agg
            gi[:, od:2 * od] = root
            np.subtract(agg, root, out=gi[:, 2 * od:])
            gate = self._proj(gi, L["Wb"], L["bb"], ws.get(("gate", li), (NT, 1), dt))
            np.clip(gate, -60.0, 60.0, out=gate)
            np.negative(gate, out=gate)
            np.exp(gate, out=gate)
            gate += 1.0
            np.divide(1.0, gate, out=gate)
            out = ws.get(("out", li), (NT, od), dt)
            np.multiply(root, gate, out=out)
            np.subtract(1.0, gate, out=gate)
            agg *= gate
            out += agg
            neg = ws.get(("neg", li), (NT, od), dt)
            np.clip(out, -60.0, 0.0, out=neg)
            np.exp(neg, out=neg)
            neg -= 1.0
            np.copyto(neg, out, where=out > 0)
            h = neg
            outs.append(h)
            if self.trace is not None:
                self.trace.append(h.copy())
        if self._jkn_mode == "max":
            jk = ws.get(("jk",), outs[0].shape, dt)
            np.copyto(jk, outs[0])
            for o in outs[1:]:
                np.maximum(jk, o, out=jk)
        else:
            jk = outs[-1]
        jk3 = jk.reshape(B, -1, jk.shape[1])
        if self._pool["kind"] == "attention":
            s = _run_mlp(self._pool["score"], jk3).reshape(NT, -1)
            m = np.maximum.reduceat(s, tpl.node_starts, axis=0)
            s -= m[tpl.graph_ids]
            np.clip(s, -60.0, 60.0, out=s)
            np.exp(s, out=s)
            denom = tpl.node_csr @ s
            denom += 1e-16
            np.power(denom, -1.0, out=denom)
            s *= denom[tpl.graph_ids]
            vals = _run_mlp(self._pool["value"], jk3).reshape(NT, -1)
            vals *= s
            pooled = tpl.node_csr @ vals
        else:
            pooled = tpl.node_csr @ jk
        pooled3 = pooled.reshape(B, 1, pooled.shape[1])
        cols = [_run_mlp(w, pooled3).reshape(B, -1) for w in self._heads]
        return cols[0] if self._task == "classification" else np.concatenate(cols, axis=1)


# ---------------------------------------------------------------------------
# encoding cache


class EncodingCache:
    """Kernel name -> :class:`EncodedGraph`, lowered and encoded once.

    Resolution order: the predictor's dataset builder (which shares its
    cache with training) when available, otherwise a direct front-end
    -> IR -> graph -> features run, memoised here.
    """

    def __init__(self, builder=None):
        self._builder = builder
        self._encoded: Dict[tuple, EncodedGraph] = {}
        # Serving hits this cache from many request threads at once; the
        # lock makes the encode-once guarantee hold under concurrency.
        self._lock = threading.Lock()

    def get(self, kernel: str, device=None) -> EncodedGraph:
        key = (kernel, getattr(device, "name", None))
        with self._lock:
            enc = self._encoded.get(key)
            if enc is None:
                if self._builder is not None:
                    # Duck-typed stub builders may predate the device
                    # parameter; only pass it when it matters.
                    if device is None:
                        enc = self._builder.encoded_graph(kernel)
                    else:
                        enc = self._builder.encoded_graph(kernel, device=device)
                else:
                    enc = encode_kernel(get_kernel(kernel), device=device)
                self._encoded[key] = enc
            return enc

    def __contains__(self, kernel: str) -> bool:
        with self._lock:
            return (kernel, None) in self._encoded


# ---------------------------------------------------------------------------
# the pipeline


class EvaluationPipeline:
    """Batched + cached surrogate evaluation with a reference fallback.

    Parameters
    ----------
    predictor:
        Anything exposing ``predict_batch(kernel, points,
        valid_threshold)``.  When it looks like a full
        :class:`~repro.model.predictor.GNNDSEPredictor` (classifier +
        regressors + normalizer) whose models the
        :class:`CompiledGNNEngine` can lower, inference runs compiled;
        otherwise every batch is delegated to the predictor itself.
    batch_size:
        Template capacity: candidates evaluated per compiled forward.
    engine:
        ``"auto"`` (default), ``"compiled"`` (raise if unsupported),
        ``"reference"`` (never compile), or ``"fused"`` (run the
        models' own forwards on the lazy fused engine — tolerance-level
        agreement, verified against the eager reference on the first
        batch per kernel unless ``verify_fused=False``).
    cache:
        Memoise per-point raw model outputs keyed by
        :func:`~repro.designspace.space.point_key`, so re-probed points
        (annealer re-visits, multi-explorer sweeps) skip inference.
    """

    def __init__(
        self,
        predictor,
        batch_size: int = 24,
        engine: str = "auto",
        cache: bool = True,
        verify_fused: bool = True,
    ):
        if engine not in ("auto", "compiled", "reference", "fused"):
            raise ValueError(f"unknown engine mode {engine!r}")
        self.predictor = predictor
        self.batch_size = max(int(batch_size), 1)
        self.engine_mode = engine
        self.cache_enabled = cache
        self.verify_fused = verify_fused
        self._fused_verified: set = set()
        self.stats = PipelineStats()
        self.encodings = EncodingCache(getattr(predictor, "builder", None))
        # Device the predictor is bound to (None = reference device):
        # conditions the encoded graphs, keys the compiled templates,
        # and rescales predicted utilizations onto the target's
        # capacities — matching predictor.predict_batch exactly.
        self._device = getattr(predictor, "device", None)
        self._device_name = getattr(self._device, "name", None)
        self._point_cache: Dict[str, Dict] = {}
        self._compiled: Dict[tuple, Dict[str, object]] = {}
        self._compile_failed = False
        # One evaluation at a time: the compiled engines share workspace
        # buffers and batch templates, and the point caches are plain
        # dicts — neither survives concurrent mutation.  The serving
        # layer gets its
        # concurrency from micro-batching, not parallel forwards, so a
        # coarse reentrant lock keeps multi-threaded callers bit-exact.
        self._lock = threading.RLock()

    # -- engine management ------------------------------------------------------

    def _predictor_models(self) -> Optional[Dict[str, object]]:
        p = self.predictor
        for attr in ("classifier", "regressor", "bram_regressor", "normalizer"):
            if not hasattr(p, attr):
                return None
        return {
            "classifier": p.classifier,
            "regressor": p.regressor,
            "bram_regressor": p.bram_regressor,
        }

    def _supports_compiled(self) -> bool:
        """Can (and may) this predictor run on the compiled engine?"""
        if self.engine_mode == "reference" or self._compile_failed:
            return False
        models = self._predictor_models()
        if models is None or not all(
            CompiledGNNEngine.supports(m) for m in models.values()
        ):
            if self.engine_mode == "compiled":
                raise UnsupportedModelError(
                    "engine='compiled' but the predictor's models cannot be lowered"
                )
            self._compile_failed = True
            return False
        return True

    def _supports_fused(self) -> bool:
        """Can (and may) this predictor run on the fused lazy engine?"""
        if self.engine_mode != "fused":
            return False
        models = self._predictor_models()
        if models is None or not all(
            FusedGNNEngine.supports(m) for m in models.values()
        ):
            raise UnsupportedModelError(
                "engine='fused' but the predictor's models are not GNNs "
                "the fused engine can run"
            )
        return True

    def _fused_engines(self, kernel: str, capacity: int) -> Dict[str, object]:
        """Fused engines + template for one kernel at one capacity."""
        key = ("fused", kernel, self._device_name, np.dtype(get_default_dtype()).str, capacity)
        entry = self._compiled.get(key)
        if entry is not None:
            return entry
        models = self._predictor_models()
        for model in models.values():
            model.eval()
        template = _FusedTemplate(self.encodings.get(kernel, self._device), capacity)
        entry = {
            "template": template,
            "engines": {
                name: FusedGNNEngine(model, template)
                for name, model in models.items()
            },
        }
        self._compiled[key] = entry
        return entry

    def _engines(self, kernel: str, capacity: int) -> Dict[str, object]:
        """Compiled engines + template for one kernel at one capacity.

        Templates are compiled per exact capacity (memoised), so partial
        batches — the final chunk of a sweep, or a micro-batcher flush
        under light load — run a right-sized forward instead of padding
        up to ``batch_size`` and paying for dead slots.  The engine is
        bit-identical at every capacity (per-copy gemms keep per-point
        shapes), so chunk sizing never changes results.
        """
        models = self._predictor_models()
        # Compile at the dtype the reference forward actually computes
        # in: float32 graph features promoted by the parameter dtype
        # (``load_state_dict`` upcasts weights to float64, so loaded
        # predictors run in float64 even when the engine default is
        # float32; the promotion is exact, so matching it keeps the
        # compiled path bit-identical).
        dtype = np.dtype(get_default_dtype())
        for model in models.values():
            for param in model.parameters():
                dtype = np.promote_types(dtype, param.data.dtype)
        key = (kernel, self._device_name, dtype.str, capacity)
        entry = self._compiled.get(key)
        if entry is not None:
            return entry
        for model in models.values():
            model.eval()
        template = _BatchTemplate(self.encodings.get(kernel, self._device), capacity, dtype)
        entry = {
            "template": template,
            "engines": {
                name: CompiledGNNEngine(model, template)
                for name, model in models.items()
            },
        }
        self._compiled[key] = entry
        return entry

    # -- cache ------------------------------------------------------------------

    def _kernel_cache(self, kernel: str) -> Dict:
        cache = self._point_cache.get(kernel)
        if cache is None:
            cache = self._point_cache[kernel] = {}
        return cache

    def clear_cache(self) -> None:
        with self._lock:
            self._point_cache.clear()

    def reset_stats(self) -> PipelineStats:
        """Return the cumulative stats and start a fresh window."""
        with self._lock:
            stats, self.stats = self.stats, PipelineStats(engine=self.stats.engine)
            return stats

    def stats_snapshot(self) -> PipelineStats:
        """Point-in-time copy of the cumulative stats (thread-safe)."""
        with self._lock:
            return self.stats.copy()

    # -- evaluation -------------------------------------------------------------

    def predict(
        self,
        kernel: str,
        point: DesignPoint,
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
    ) -> Prediction:
        return self.predict_batch(kernel, [point], valid_threshold)[0]

    def predict_batch(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        valid_threshold: float = DEFAULT_VALID_THRESHOLD,
        objectives_for: str = "all",
    ) -> List[Prediction]:
        """Evaluate many candidates; order-preserving, bit-identical.

        ``objectives_for="valid"`` runs the validity classifier on every
        point but the regression models only on points at or above the
        threshold; rejected points come back with ``objectives=None``.
        """
        if objectives_for not in ("all", "valid"):
            raise ValueError(f"unknown objectives_for {objectives_for!r}")
        if not points:
            return []
        with self._lock:
            t_wall = time.perf_counter()
            hits0, misses0 = self.stats.cache_hits, self.stats.cache_misses
            batches0 = self.stats.batches
            with span(
                "pipeline.predict_batch", kernel=kernel, points=len(points)
            ) as sp:
                if self._supports_fused():
                    out = self._compiled_batch(
                        kernel, points, valid_threshold, objectives_for,
                        fused=True,
                    )
                elif self._supports_compiled():
                    out = self._compiled_batch(
                        kernel, points, valid_threshold, objectives_for
                    )
                else:
                    out = self._reference_batch(kernel, points, valid_threshold)
                sp.set(engine=self.stats.engine)
            self.stats.points += len(points)
            self.stats.wall_seconds += time.perf_counter() - t_wall
            _OBS_POINTS.inc(len(points))
            _OBS_BATCHES.inc(self.stats.batches - batches0)
            _OBS_CACHE_HITS.inc(self.stats.cache_hits - hits0)
            _OBS_CACHE_MISSES.inc(self.stats.cache_misses - misses0)
            return out

    # -- reference path ---------------------------------------------------------

    def _reference_batch(self, kernel, points, valid_threshold) -> List[Prediction]:
        self.stats.engine = "reference"
        cache = self._kernel_cache(kernel) if self.cache_enabled else {}
        keys = [point_key(p) for p in points]
        missing: List[int] = []
        seen_in_call: Dict[str, int] = {}
        for i, key in enumerate(keys):
            if (key, valid_threshold) in cache or key in seen_in_call:
                self.stats.cache_hits += 1
            else:
                seen_in_call[key] = i
                missing.append(i)
                self.stats.cache_misses += 1
        t0 = time.perf_counter()
        fresh: Dict[str, Prediction] = {}
        # Misses are evaluated one point per call: BLAS results can shift
        # by ulps with the gemm row count, so multi-graph reference
        # batches would not be bit-identical to the point-by-point path.
        # The reference engine is the correctness fallback — its speedup
        # comes from the cache, not from batching.
        for i in missing:
            fresh[keys[i]] = self.predictor.predict_batch(
                kernel, [points[i]], valid_threshold
            )[0]
            self.stats.batches += 1
            self.stats.model_points += 1
        self.stats.inference_seconds += time.perf_counter() - t0
        for key, pred in fresh.items():
            if self.cache_enabled:
                cache[(key, valid_threshold)] = pred
        if self.cache_enabled:
            return [cache[(key, valid_threshold)] for key in keys]
        return [fresh[key] for key in keys]

    # -- compiled path ----------------------------------------------------------

    def _forward_chunks(
        self,
        kernel: str,
        points: Sequence[DesignPoint],
        engine_names: Sequence[str],
        fused: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Run selected engines over ``points`` in right-sized chunks.

        Chunks are at most ``batch_size`` points; a partial chunk (the
        tail of a sweep, or a lightly-filled micro-batch from the
        server) gets a template compiled at its exact size, so no
        forward pays for padded slots.
        """
        outputs: Dict[str, List[np.ndarray]] = {name: [] for name in engine_names}
        with no_grad():
            for start in range(0, len(points), self.batch_size):
                chunk = points[start:start + self.batch_size]
                if fused:
                    entry = self._fused_engines(kernel, len(chunk))
                else:
                    entry = self._engines(kernel, len(chunk))
                template = entry["template"]
                engines = entry["engines"]
                with span(
                    "pipeline.forward", kernel=kernel, chunk=len(chunk),
                    engines=",".join(engine_names),
                ):
                    t0 = time.perf_counter()
                    for slot, point in enumerate(chunk):
                        template.set_point(slot, point)
                    self.stats.encode_seconds += time.perf_counter() - t0
                    t0 = time.perf_counter()
                    if fused:
                        results = fused_forward_all(engines, engine_names)
                        for name in engine_names:
                            outputs[name].append(results[name][: len(chunk)].copy())
                    else:
                        for name in engine_names:
                            result = engines[name].forward()
                            outputs[name].append(result[: len(chunk)].copy())
                    self.stats.inference_seconds += time.perf_counter() - t0
                self.stats.batches += 1
                self.stats.model_points += len(chunk)
                _OBS_BATCH_FILL.observe(len(chunk))
        return {name: np.concatenate(chunks, axis=0) for name, chunks in outputs.items()}

    def _compiled_batch(
        self, kernel, points, valid_threshold, objectives_for, fused: bool = False
    ) -> List[Prediction]:
        self.stats.engine = "fused" if fused else "compiled"
        cache = self._kernel_cache(kernel) if self.cache_enabled else {}
        keys = [point_key(p) for p in points]
        records: List[Dict] = []
        for key in keys:
            record = cache.get(key)
            if record is None:
                record = {}
                if self.cache_enabled:
                    cache[key] = record
            records.append(record)
        # Deduplicate within the call: identical keys share one record dict.
        by_key: Dict[str, Dict] = {}
        for key, record in zip(keys, records):
            by_key.setdefault(key, record)
        records = [by_key[key] for key in keys]

        # Stage 1: validity classifier for every point not yet classified.
        need_cls: List[int] = []
        fresh_cls = set()
        for i, record in enumerate(records):
            if "logits" in record:
                self.stats.cache_hits += 1
            elif id(record) in fresh_cls:
                self.stats.cache_hits += 1
            else:
                need_cls.append(i)
                fresh_cls.add(id(record))
                self.stats.cache_misses += 1
        if need_cls:
            cls_out = self._forward_chunks(
                kernel, [points[i] for i in need_cls], ["classifier"], fused=fused
            )["classifier"]
            for row, i in enumerate(need_cls):
                records[i]["logits"] = cls_out[row]

        logits = np.stack([record["logits"] for record in records])
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp[:, 1] / exp.sum(axis=1)

        # Stage 2: regression for points that need objectives.
        if objectives_for == "all":
            wants_reg = [True] * len(points)
        else:
            wants_reg = [bool(probs[i] >= valid_threshold) for i in range(len(points))]
            self.stats.cascade_skipped += sum(1 for w in wants_reg if not w)
        need_reg: List[int] = []
        fresh_reg = set()
        for i, record in enumerate(records):
            if wants_reg[i] and "reg" not in record and id(record) not in fresh_reg:
                need_reg.append(i)
                fresh_reg.add(id(record))
        if need_reg:
            reg_out = self._forward_chunks(
                kernel,
                [points[i] for i in need_reg],
                ["regressor", "bram_regressor"],
                fused=fused,
            )
            for row, i in enumerate(need_reg):
                records[i]["reg"] = reg_out["regressor"][row]
                records[i]["bram"] = reg_out["bram_regressor"][row]

        # Materialize through the shared reference helper.
        t0 = time.perf_counter()
        mask = [wants_reg[i] and "reg" in records[i] for i in range(len(points))]
        reg_dim = None
        for record in records:
            if "reg" in record:
                reg_dim = record["reg"].shape[0]
                break
        if reg_dim is None:
            reg = bram = None
        else:
            reg = np.zeros((len(points), reg_dim), dtype=logits.dtype)
            bram = np.zeros((len(points), 1), dtype=logits.dtype)
            for i, record in enumerate(records):
                if mask[i]:
                    reg[i] = record["reg"]
                    bram[i] = record["bram"]
        out = predictions_from_outputs(
            logits,
            reg,
            bram,
            self.predictor.normalizer,
            valid_threshold,
            objectives_mask=mask if reg is not None else None,
        )
        out = scale_objectives_for_device(out, self._device)
        self.stats.materialize_seconds += time.perf_counter() - t0
        if fused and self.verify_fused and kernel not in self._fused_verified:
            self._verify_fused_batch(kernel, points, out, valid_threshold)
        return out

    def _verify_fused_batch(
        self, kernel, points, fused_preds, valid_threshold, sample: int = 4
    ) -> None:
        """Equivalence gate: check the first fused batch per kernel.

        A few points are re-evaluated on the eager reference predictor
        and compared under the per-dtype tolerance policy
        (:mod:`repro.nn.lazy.equiv`); any divergence raises
        :class:`~repro.nn.lazy.equiv.EngineEquivalenceError` before a
        single fused prediction is acted on.  One-time per kernel —
        steady-state throughput is unaffected.
        """
        n = min(int(sample), len(points))
        reference = self.predictor.predict_batch(
            kernel, list(points[:n]), valid_threshold
        )
        mismatch = predictions_equivalent(
            list(fused_preds[:n]),
            reference,
            valid_threshold=valid_threshold,
            dtype=get_default_dtype(),
        )
        if mismatch is not None:
            raise EngineEquivalenceError(
                f"fused engine failed verification on kernel {kernel!r}: {mismatch}"
            )
        self._fused_verified.add(kernel)
