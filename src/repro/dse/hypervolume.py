"""Exact Pareto hypervolume for minimised objectives.

Search quality is gated on *hypervolume per query budget*: the volume
of objective space dominated by a front, measured against a reference
(nadir) point.  Bigger is better — a front that is both lower-latency
and better-spread dominates more volume at the same budget.

The implementation is the WFG exclusive-hypervolume recursion
(While et al., "A fast way of calculating exact hypervolumes", 2012):

``hv(S) = Σ_i  vol(p_i) − hv({ max(q, p_i) | q ∈ S_{i+1:} })``

which is exact in any dimension and fast for the front sizes the DSE
produces (tens of points, five objectives).  All helpers are pure and
deterministic, so benchmark comparisons are bit-reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["hypervolume", "normalized_hypervolume", "reference_point"]

_EPS = 1e-12


def _vol(point: Tuple[float, ...], ref: Tuple[float, ...]) -> float:
    v = 1.0
    for p, r in zip(point, ref):
        v *= r - p
    return v


def _limit(point: Tuple[float, ...], bound: Tuple[float, ...]) -> Tuple[float, ...]:
    """Worsen ``point`` to the region dominated by ``bound`` (minimisation)."""
    return tuple(max(p, b) for p, b in zip(point, bound))


def _dominates_le(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Weak dominance: ``a`` no worse than ``b`` on every objective."""
    return all(x <= y for x, y in zip(a, b))


def _nondominated(points: List[Tuple[float, ...]]) -> List[Tuple[float, ...]]:
    out: List[Tuple[float, ...]] = []
    for i, p in enumerate(points):
        if any(q != p and _dominates_le(q, p) for j, q in enumerate(points) if j != i):
            continue
        if p not in out:
            out.append(p)
    return out


def _hv(points: List[Tuple[float, ...]], ref: Tuple[float, ...]) -> float:
    if not points:
        return 0.0
    # Sorting by the first objective (descending volume) keeps the
    # recursion shallow: later points are limited by earlier ones.
    points = sorted(points)
    total = 0.0
    for i, p in enumerate(points):
        rest = [_limit(q, p) for q in points[i + 1 :]]
        total += _vol(p, ref) - _hv(_nondominated(rest), ref)
    return total


def hypervolume(
    front: Sequence[Sequence[float]], reference: Sequence[float]
) -> float:
    """Exact hypervolume of ``front`` w.r.t. ``reference`` (all minimised).

    Points at or beyond the reference on any objective are clipped to
    it (contributing zero volume along that axis); dominated and
    duplicate points are filtered first, so the result depends only on
    the non-dominated set.
    """
    ref = tuple(float(r) for r in reference)
    pts = []
    for point in front:
        p = tuple(min(float(v), r) for v, r in zip(point, ref))
        if len(p) != len(ref):
            raise ValueError(
                f"point has {len(p)} objectives, reference has {len(ref)}"
            )
        pts.append(p)
    return _hv(_nondominated(pts), ref)


def reference_point(
    fronts: Sequence[Sequence[Dict[str, float]]],
    keys: Sequence[str],
    margin: float = 0.1,
) -> Dict[str, Tuple[float, float]]:
    """Shared normalisation bounds from the union of ``fronts``.

    Returns per-key ``(ideal, ref)`` where ``ideal`` is the best value
    seen anywhere and ``ref`` the worst, padded by ``margin`` of the
    span so extreme points still dominate non-zero volume.  Comparing
    two searches under bounds derived from *their union* is the
    standard way to keep the metric common and scale-free.
    """
    bounds: Dict[str, Tuple[float, float]] = {}
    for key in keys:
        values = [o[key] for front in fronts for o in front]
        if not values:
            bounds[key] = (0.0, 1.0)
            continue
        lo, hi = min(values), max(values)
        span = (hi - lo) or max(abs(hi), 1.0) * _EPS
        bounds[key] = (lo, hi + margin * span)
    return bounds


def normalized_hypervolume(
    front: Sequence[Dict[str, float]],
    bounds: Dict[str, Tuple[float, float]],
    keys: Sequence[str],
) -> float:
    """Hypervolume after normalising each objective to ``[0, 1]``.

    ``bounds`` maps each key to ``(ideal, ref)`` — usually from
    :func:`reference_point` over every front being compared.  The
    result lies in ``[0, 1]``; an empty front scores 0.
    """
    if not front:
        return 0.0
    normalised = []
    for objectives in front:
        row = []
        for key in keys:
            lo, hi = bounds[key]
            span = hi - lo
            row.append((objectives[key] - lo) / span if span > 0 else 0.0)
        normalised.append(row)
    return hypervolume(normalised, [1.0] * len(keys))
