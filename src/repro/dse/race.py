"""Multi-armed strategy racing under one shared surrogate-query budget.

No single search strategy wins on every kernel: annealing mines deep
basins, greedy sprints to the nearest optimum, the RL policy learns
kernel-specific edit sequences, and random sampling keeps the frontier
spread.  :class:`StrategyRacer` runs them all against **one**
:class:`~repro.dse.strategies.BudgetedEvaluator` — shared memo, shared
top-M, shared Pareto front — and reallocates the remaining budget
round-by-round with a UCB bandit whose reward is each arm's *recent
new-Pareto-point yield per query*.  Budget flows to whichever strategy
is currently producing frontier progress; arms that stop paying rent
decay to exploration-only plays and die once they cannot spend at all.

The race is deterministic end-to-end for a fixed seed: arm order,
grant sizes, the UCB tie-break, and every strategy's internal RNG
stream are all pinned, so the budget ledger — one row per round with
the strategy, spend, and yield — is bit-reproducible.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from .search import DSEResult
from .strategies import (
    BudgetedEvaluator,
    QueryBudget,
    SearchStrategy,
    StepOutcome,
    build_strategy,
)

__all__ = ["DEFAULT_ARMS", "RaceRound", "RaceResult", "StrategyRacer", "run_race"]

#: Default arm lineup, in deterministic play order.
DEFAULT_ARMS = ("sa", "greedy", "rl", "random")


@dataclass
class RaceRound:
    """One ledger row: what one bandit play granted and bought."""

    index: int
    strategy: str
    granted: int
    queries: int
    new_pareto: int
    stalled: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "round": self.index,
            "strategy": self.strategy,
            "granted": self.granted,
            "queries": self.queries,
            "new_pareto": self.new_pareto,
            "stalled": self.stalled,
        }


@dataclass
class RaceResult:
    """Outcome of one race: the shared frontier plus the budget ledger."""

    kernel: str
    budget: int
    queries: int
    seconds: float
    rounds: List[RaceRound]
    totals: Dict[str, StepOutcome]
    top: list
    pareto: list

    def ledger(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.rounds]

    def summary(self) -> Dict[str, object]:
        """JSON-ready per-arm totals + ledger (the payload's `race` field)."""
        return {
            "budget": self.budget,
            "queries": self.queries,
            "rounds": self.ledger(),
            "strategies": {
                name: {
                    "queries": outcome.queries,
                    "new_pareto": outcome.new_pareto,
                    "proposals": outcome.proposals,
                }
                for name, outcome in self.totals.items()
            },
        }

    def as_dse_result(self, stats=None) -> DSEResult:
        return DSEResult(
            kernel=self.kernel,
            top=self.top,
            explored=self.queries,
            seconds=self.seconds,
            exhaustive=False,
            predictions_per_second=self.queries / self.seconds
            if self.seconds > 0
            else 0.0,
            stats=stats,
            pareto=self.pareto,
            strategy="race",
            race=self.summary(),
        )


class _Arm:
    """Bandit bookkeeping for one strategy."""

    def __init__(self, strategy: SearchStrategy, window: int):
        self.strategy = strategy
        self.window = window
        self.plays = 0
        self.recent: List[StepOutcome] = []
        self.total = StepOutcome()
        self.zero_spend_streak = 0

    @property
    def name(self) -> str:
        return self.strategy.name

    @property
    def dead(self) -> bool:
        return self.zero_spend_streak >= 2

    def record(self, outcome: StepOutcome) -> None:
        self.plays += 1
        self.recent.append(outcome)
        if len(self.recent) > self.window:
            self.recent.pop(0)
        self.total.merge(outcome)
        if outcome.queries == 0:
            self.zero_spend_streak += 1
        else:
            self.zero_spend_streak = 0

    def yield_rate(self) -> float:
        """New Pareto points per query over the recent window."""
        queries = sum(o.queries for o in self.recent)
        if queries == 0:
            return 0.0
        return sum(o.new_pareto for o in self.recent) / queries


class StrategyRacer:
    """UCB budget reallocation across search strategies.

    Parameters
    ----------
    evaluator:
        The shared budgeted evaluator all arms probe through.
    strategies:
        Arm instances (or names resolved via
        :func:`~repro.dse.strategies.build_strategy`), played in the
        given order for the warm-up round-robin.
    round_budget:
        Queries granted per bandit play.
    ucb_c:
        Exploration constant of the UCB score
        ``yield + c * sqrt(ln(t) / plays)``.
    window:
        Recent plays per arm considered for the yield estimate (the
        frontier saturates, so old yield must age out).
    """

    def __init__(
        self,
        evaluator: BudgetedEvaluator,
        strategies: Sequence,
        round_budget: int = 32,
        ucb_c: float = 0.5,
        window: int = 8,
        seed: int = 0,
    ):
        if not strategies:
            raise ReproError("racer needs at least one strategy")
        self.evaluator = evaluator
        built = [
            s if isinstance(s, SearchStrategy) else build_strategy(s, evaluator, seed)
            for s in strategies
        ]
        names = [s.name for s in built]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate strategy arms: {names}")
        self.arms = [_Arm(s, window) for s in built]
        self.round_budget = max(int(round_budget), 1)
        self.ucb_c = ucb_c

    def _pick(self) -> Optional[_Arm]:
        alive = [arm for arm in self.arms if not arm.dead]
        if not alive:
            return None
        # Warm-up: play every arm once, in lineup order.
        for arm in alive:
            if arm.plays == 0:
                return arm
        total_plays = sum(arm.plays for arm in alive)
        best, best_score = None, -float("inf")
        for arm in alive:  # lineup order is the deterministic tie-break
            score = arm.yield_rate() + self.ucb_c * math.sqrt(
                math.log(total_plays) / arm.plays
            )
            if score > best_score:
                best, best_score = arm, score
        return best

    def run(self) -> RaceResult:
        budget = self.evaluator.budget
        rounds: List[RaceRound] = []
        start = time.monotonic()
        while not budget.exhausted:
            arm = self._pick()
            if arm is None:
                break
            grant = min(self.round_budget, budget.remaining)
            outcome = arm.strategy.step(grant)
            arm.record(outcome)
            rounds.append(
                RaceRound(
                    index=len(rounds),
                    strategy=arm.name,
                    granted=grant,
                    queries=outcome.queries,
                    new_pareto=outcome.new_pareto,
                    stalled=outcome.stalled,
                )
            )
        return RaceResult(
            kernel=self.evaluator.spec.name,
            budget=budget.limit,
            queries=budget.spent,
            seconds=time.monotonic() - start,
            rounds=rounds,
            totals={arm.name: arm.total for arm in self.arms},
            top=list(self.evaluator.top),
            pareto=list(self.evaluator.pareto),
        )


def run_race(
    pipeline,
    spec,
    space,
    budget: int,
    strategies: Sequence[str] = DEFAULT_ARMS,
    top_m: int = 10,
    seed: int = 0,
    round_budget: int = 32,
) -> RaceResult:
    """Convenience wrapper: build the shared evaluator and race it.

    A single-entry ``strategies`` list degenerates to running that
    strategy alone under the whole budget — exactly how the quality
    benchmark produces its SA baseline, so baseline and race share
    every line of evaluation code.
    """
    evaluator = BudgetedEvaluator(
        pipeline, spec, space, QueryBudget(budget), top_m=top_m
    )
    racer = StrategyRacer(
        evaluator, strategies, round_budget=round_budget, seed=seed
    )
    return racer.run()
