"""Model-driven design-space exploration (Section 4.4).

- :func:`order_pragmas` — the innermost-first pragma-ordering heuristic;
- :class:`ModelDSE` — exhaustive / ordered-beam search over a design
  space with the trained predictor in the loop;
- :func:`run_dse_rounds` — Fig. 7's multi-round database augmentation;
- :func:`pareto_front` — non-dominated filtering of designs;
- :class:`EvaluationPipeline` — the batched + cached surrogate hot
  path every searcher routes its predictions through;
- :class:`ParallelDSE` — sharded multiprocessing orchestrator with
  checkpoint/resume, bit-identical to the serial exhaustive sweep;
- :mod:`~repro.dse.strategies` / :mod:`~repro.dse.rl` /
  :mod:`~repro.dse.race` — budgeted search strategies (annealing,
  greedy, REINFORCE policy explorer, random) raced under one shared
  query budget by a UCB bandit;
- :mod:`~repro.dse.hypervolume` — exact WFG hypervolume, the search
  quality metric the benchmarks gate on.
"""

from .annealing import AnnealingResult, SimulatedAnnealingDSE
from .augment import AugmentationResult, RoundOutcome, run_dse_rounds
from .crossdevice import (
    CROSS_DEVICE_KEYS,
    AnalyticPredictor,
    CrossDeviceResult,
    DeviceFrontEntry,
    cross_device_objectives,
    run_cross_device_dse,
)
from .multiobjective import ParetoArchive, ParetoDSE
from .ordering import order_pragmas
from .parallel import (
    DSECheckpoint,
    ParallelDSE,
    ShardResult,
    WorkerHooks,
)
from .pareto import (
    DEFAULT_OBJECTIVE_KEYS,
    dominates,
    objective_keys_for,
    pareto_front,
    pareto_merge,
)
from .pipeline import (
    CompiledGNNEngine,
    EncodingCache,
    EvaluationPipeline,
    PipelineStats,
    UnsupportedModelError,
    surrogate_scorers,
)
from .hypervolume import hypervolume, normalized_hypervolume, reference_point
from .race import DEFAULT_ARMS, RaceResult, StrategyRacer, run_race
from .search import PARETO_KEYS, DSECandidate, DSEResult, ModelDSE
from .strategies import (
    AnnealingStrategy,
    BudgetedEvaluator,
    GreedyStrategy,
    QueryBudget,
    RandomStrategy,
    SearchStrategy,
    StepOutcome,
    build_strategy,
)

__all__ = [
    "PARETO_KEYS",
    "DEFAULT_OBJECTIVE_KEYS",
    "objective_keys_for",
    "CROSS_DEVICE_KEYS",
    "AnalyticPredictor",
    "CrossDeviceResult",
    "DeviceFrontEntry",
    "cross_device_objectives",
    "run_cross_device_dse",
    "DSECheckpoint",
    "ParallelDSE",
    "ShardResult",
    "WorkerHooks",
    "pareto_merge",
    "AnnealingResult",
    "SimulatedAnnealingDSE",
    "CompiledGNNEngine",
    "EncodingCache",
    "EvaluationPipeline",
    "PipelineStats",
    "UnsupportedModelError",
    "surrogate_scorers",
    "AugmentationResult",
    "RoundOutcome",
    "run_dse_rounds",
    "ParetoArchive",
    "ParetoDSE",
    "order_pragmas",
    "dominates",
    "pareto_front",
    "DSECandidate",
    "DSEResult",
    "ModelDSE",
    "AnnealingStrategy",
    "BudgetedEvaluator",
    "DEFAULT_ARMS",
    "GreedyStrategy",
    "QueryBudget",
    "RaceResult",
    "RandomStrategy",
    "SearchStrategy",
    "StepOutcome",
    "StrategyRacer",
    "build_strategy",
    "hypervolume",
    "normalized_hypervolume",
    "reference_point",
    "run_race",
]
