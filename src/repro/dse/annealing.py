"""Simulated-annealing DSE baseline.

The DSE literature the paper builds on includes simulated-annealing
searchers (e.g. Mahapatra et al. [11], cited in Section 1).  This
implementation searches the pragma space with any *scorer* — the
trained predictor (milliseconds per probe) or the HLS tool itself
(the classic, slow configuration) — giving the repo a second,
structurally different search baseline to compare the ordered-beam
ModelDSE against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..designspace.space import DesignPoint, DesignSpace, point_key

__all__ = ["AnnealingResult", "SimulatedAnnealingDSE"]

#: A scorer maps a design point to (usable, latency-like score).
Scorer = Callable[[DesignPoint], Tuple[bool, float]]


@dataclass
class AnnealingResult:
    best_point: Optional[DesignPoint]
    best_score: float
    evaluations: int
    accepted_moves: int
    trajectory: List[float] = field(default_factory=list)


class SimulatedAnnealingDSE:
    """Classic SA over one kernel's design space.

    Parameters
    ----------
    space:
        The design space (neighbour moves come from
        :meth:`~repro.designspace.space.DesignSpace.neighbors`).
    scorer:
        ``point -> (usable, score)``; score is minimised and only
        usable points can become the incumbent best.
    initial_temperature / cooling:
        Exponential schedule ``T_k = T_0 * cooling**k``.
    penalty:
        Score assigned to unusable points, relative to the worst usable
        score seen so far (keeps the chain able to traverse invalid
        regions without settling in them).
    """

    def __init__(
        self,
        space: DesignSpace,
        scorer: Scorer,
        initial_temperature: float = 2.0,
        cooling: float = 0.97,
        penalty: float = 4.0,
        seed: int = 0,
    ):
        self.space = space
        self.scorer = scorer
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.penalty = penalty
        self.rng = random.Random(seed)

    def run(
        self,
        max_evals: int = 500,
        start_point: Optional[DesignPoint] = None,
    ) -> AnnealingResult:
        """Anneal until the evaluation budget is spent."""
        current = dict(start_point) if start_point else self.space.default_point()
        cache = {}

        def score_of(point: DesignPoint) -> Tuple[bool, float]:
            key = point_key(point)
            if key not in cache:
                cache[key] = self.scorer(point)
            return cache[key]

        usable, current_score = score_of(current)
        worst_usable = current_score if usable else 1.0
        best_point = dict(current) if usable else None
        best_score = current_score if usable else float("inf")

        temperature = self.initial_temperature
        evaluations = 1
        accepted = 0
        trajectory = [best_score]

        while evaluations < max_evals:
            neighbors = self.space.neighbors(current)
            if not neighbors:
                break
            candidate = self.rng.choice(neighbors)
            cand_usable, cand_score = score_of(candidate)
            evaluations += 1
            if cand_usable:
                worst_usable = max(worst_usable, cand_score)
                effective = cand_score
            else:
                effective = worst_usable * self.penalty
            current_effective = (
                current_score if usable else worst_usable * self.penalty
            )
            delta = effective - current_effective
            scale = max(abs(current_effective), 1e-9)
            if delta <= 0 or self.rng.random() < math.exp(
                -delta / (scale * max(temperature, 1e-6))
            ):
                current, usable, current_score = candidate, cand_usable, cand_score
                accepted += 1
                if usable and cand_score < best_score:
                    best_point, best_score = dict(candidate), cand_score
            temperature *= self.cooling
            trajectory.append(best_score)

        return AnnealingResult(
            best_point=best_point,
            best_score=best_score,
            evaluations=evaluations,
            accepted_moves=accepted,
            trajectory=trajectory,
        )
