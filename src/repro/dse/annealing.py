"""Simulated-annealing DSE baseline.

The DSE literature the paper builds on includes simulated-annealing
searchers (e.g. Mahapatra et al. [11], cited in Section 1).  This
implementation searches the pragma space with any *scorer* — the
trained predictor (milliseconds per probe) or the HLS tool itself
(the classic, slow configuration) — giving the repo a second,
structurally different search baseline to compare the ordered-beam
ModelDSE against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..designspace.space import DesignPoint, DesignSpace, point_key

__all__ = ["AnnealingResult", "SimulatedAnnealingDSE"]

#: A scorer maps a design point to (usable, latency-like score).
Scorer = Callable[[DesignPoint], Tuple[bool, float]]

#: A batch scorer maps many design points to their (usable, score) pairs
#: at once — e.g. one surrogate pipeline batch instead of N forwards.
BatchScorer = Callable[[List[DesignPoint]], List[Tuple[bool, float]]]


@dataclass
class AnnealingResult:
    best_point: Optional[DesignPoint]
    best_score: float
    evaluations: int
    accepted_moves: int
    trajectory: List[float] = field(default_factory=list)


class SimulatedAnnealingDSE:
    """Classic SA over one kernel's design space.

    Parameters
    ----------
    space:
        The design space (neighbour moves come from
        :meth:`~repro.designspace.space.DesignSpace.neighbors`).
    scorer:
        ``point -> (usable, score)``; score is minimised and only
        usable points can become the incumbent best.
    initial_temperature / cooling:
        Exponential schedule ``T_k = T_0 * cooling**k``.
    penalty:
        Score assigned to unusable points, relative to the worst usable
        score seen so far (keeps the chain able to traverse invalid
        regions without settling in them).
    batch_scorer:
        Optional many-points-at-once scorer.  :meth:`run_many` uses it
        to evaluate one candidate per chain in a single surrogate
        batch; results are identical to per-point scoring.
    """

    def __init__(
        self,
        space: DesignSpace,
        scorer: Scorer,
        initial_temperature: float = 2.0,
        cooling: float = 0.97,
        penalty: float = 4.0,
        seed: int = 0,
        batch_scorer: Optional[BatchScorer] = None,
    ):
        self.space = space
        self.scorer = scorer
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.penalty = penalty
        self.rng = random.Random(seed)
        self.batch_scorer = batch_scorer

    def run(
        self,
        max_evals: int = 500,
        start_point: Optional[DesignPoint] = None,
    ) -> AnnealingResult:
        """Anneal until the evaluation budget is spent."""
        current = dict(start_point) if start_point else self.space.default_point()
        cache = {}

        def score_of(point: DesignPoint) -> Tuple[bool, float]:
            key = point_key(point)
            if key not in cache:
                cache[key] = self.scorer(point)
            return cache[key]

        usable, current_score = score_of(current)
        worst_usable = current_score if usable else 1.0
        best_point = dict(current) if usable else None
        best_score = current_score if usable else float("inf")

        temperature = self.initial_temperature
        evaluations = 1
        accepted = 0
        trajectory = [best_score]

        while evaluations < max_evals:
            neighbors = self.space.neighbors(current)
            if not neighbors:
                break
            candidate = self.rng.choice(neighbors)
            cand_usable, cand_score = score_of(candidate)
            evaluations += 1
            if cand_usable:
                worst_usable = max(worst_usable, cand_score)
                effective = cand_score
            else:
                effective = worst_usable * self.penalty
            current_effective = (
                current_score if usable else worst_usable * self.penalty
            )
            delta = effective - current_effective
            scale = max(abs(current_effective), 1e-9)
            if delta <= 0 or self.rng.random() < math.exp(
                -delta / (scale * max(temperature, 1e-6))
            ):
                current, usable, current_score = candidate, cand_usable, cand_score
                accepted += 1
                if usable and cand_score < best_score:
                    best_point, best_score = dict(candidate), cand_score
            temperature *= self.cooling
            trajectory.append(best_score)

        return AnnealingResult(
            best_point=best_point,
            best_score=best_score,
            evaluations=evaluations,
            accepted_moves=accepted,
            trajectory=trajectory,
        )

    def run_many(
        self,
        seeds: List[int],
        max_evals: int = 500,
        start_point: Optional[DesignPoint] = None,
    ) -> List[AnnealingResult]:
        """Anneal several independent chains in lockstep.

        Each chain draws from its own ``random.Random(seed)`` in exactly
        the order :meth:`run` would, so per-chain results are identical
        to ``len(seeds)`` sequential runs — but every step scores one
        candidate per chain in a single ``batch_scorer`` call (and a
        shared score cache spans the chains), which is where a batched
        surrogate pipeline pays off.
        """
        cache = {}

        def score_many(points: List[DesignPoint]) -> List[Tuple[bool, float]]:
            keys = [point_key(p) for p in points]
            missing = {}
            for point, key in zip(points, keys):
                if key not in cache and key not in missing:
                    missing[key] = point
            if missing:
                pending = list(missing.values())
                if self.batch_scorer is not None:
                    results = self.batch_scorer(pending)
                else:
                    results = [self.scorer(p) for p in pending]
                for key, result in zip(missing, results):
                    cache[key] = result
            return [cache[key] for key in keys]

        start = dict(start_point) if start_point else self.space.default_point()
        chains = []
        for seed, (usable, score) in zip(
            seeds, score_many([start] * len(seeds))
        ):
            chains.append(dict(
                rng=random.Random(seed),
                current=dict(start),
                usable=usable,
                current_score=score,
                worst_usable=score if usable else 1.0,
                best_point=dict(start) if usable else None,
                best_score=score if usable else float("inf"),
                temperature=self.initial_temperature,
                evaluations=1,
                accepted=0,
                trajectory=[score if usable else float("inf")],
                alive=True,
            ))

        while True:
            stepping = []
            for chain in chains:
                if not chain["alive"] or chain["evaluations"] >= max_evals:
                    continue
                neighbors = self.space.neighbors(chain["current"])
                if not neighbors:
                    chain["alive"] = False
                    continue
                chain["candidate"] = chain["rng"].choice(neighbors)
                stepping.append(chain)
            if not stepping:
                break
            results = score_many([chain["candidate"] for chain in stepping])
            for chain, (cand_usable, cand_score) in zip(stepping, results):
                chain["evaluations"] += 1
                if cand_usable:
                    chain["worst_usable"] = max(chain["worst_usable"], cand_score)
                    effective = cand_score
                else:
                    effective = chain["worst_usable"] * self.penalty
                current_effective = (
                    chain["current_score"]
                    if chain["usable"]
                    else chain["worst_usable"] * self.penalty
                )
                delta = effective - current_effective
                scale = max(abs(current_effective), 1e-9)
                if delta <= 0 or chain["rng"].random() < math.exp(
                    -delta / (scale * max(chain["temperature"], 1e-6))
                ):
                    chain["current"] = chain["candidate"]
                    chain["usable"] = cand_usable
                    chain["current_score"] = cand_score
                    chain["accepted"] += 1
                    if cand_usable and cand_score < chain["best_score"]:
                        chain["best_point"] = dict(chain["candidate"])
                        chain["best_score"] = cand_score
                chain["temperature"] *= self.cooling
                chain["trajectory"].append(chain["best_score"])

        return [
            AnnealingResult(
                best_point=chain["best_point"],
                best_score=chain["best_score"],
                evaluations=chain["evaluations"],
                accepted_moves=chain["accepted"],
                trajectory=chain["trajectory"],
            )
            for chain in chains
        ]
