"""Setuptools shim: enables legacy editable installs (`pip install -e .`)
in offline environments that lack the `wheel` package required by the
PEP 660 editable-install path."""

from setuptools import setup

setup()
