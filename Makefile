# Convenience targets for the GNN-DSE reproduction.

PY ?= python

.PHONY: install test test-fast bench bench-fast bench-smoke serve-smoke examples clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

# Skip tests marked slow (e.g. the float32 pipeline equivalence sweep).
test-fast:
	$(PY) -m pytest tests/ -m "not slow"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Evaluation-pipeline throughput on untrained weights: finishes in
# seconds, no database or training required.
bench-smoke:
	$(PY) benchmarks/bench_pipeline.py --smoke

# Boot the HTTP model server on an ephemeral port and round-trip
# predict + dse + metrics through it; exits non-zero on any mismatch.
serve-smoke:
	$(PY) benchmarks/serve_smoke.py

# Smoke-scale benchmark run (~minutes): tiny database + training budgets.
bench-fast:
	REPRO_SCALE=0.1 REPRO_EPOCHS=6 REPRO_TABLE2_EPOCHS=4 \
	REPRO_FIG7_ROUNDS=2 REPRO_FIG7_EPOCHS=2 REPRO_ABLATION_EPOCHS=2 \
	$(PY) -m pytest benchmarks/ --benchmark-only

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/explore_design_space.py

clean:
	rm -rf .repro_cache .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
