# Convenience targets for the GNN-DSE reproduction.

PY ?= python

.PHONY: install lint test test-fast test-fused bench bench-fast bench-smoke serve-smoke bench-parallel-smoke trace-smoke loop-smoke serve-load-smoke bench-dse-smoke bench-cross-device-smoke ci examples clean

install:
	$(PY) setup.py develop

# Lint is advisory locally (ruff may not be installed); CI installs ruff
# and fails on violations.  Config lives in pyproject.toml.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

test:
	$(PY) -m pytest tests/

# Skip tests marked slow (e.g. the float32 pipeline equivalence sweep).
test-fast:
	$(PY) -m pytest tests/ -m "not slow"

# The engine-parametrized forward tests on the fused lazy engine
# (differential fuzzer and golden tests run in both modes regardless).
test-fused:
	$(PY) -m pytest tests/test_nn_tensor.py tests/test_nn_layers.py \
		tests/test_model.py tests/test_engine_diff.py --engine fused -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Evaluation-pipeline throughput on untrained weights: finishes in
# seconds, no database or training required.  Runs the compiled and
# fused engines side by side (both legs assert equivalence against the
# eager per-point baseline in-row).
bench-smoke:
	$(PY) benchmarks/bench_pipeline.py --smoke --engine both

# Boot the HTTP model server on an ephemeral port and round-trip
# predict + dse + metrics through it; exits non-zero on any mismatch.
serve-smoke:
	$(PY) benchmarks/serve_smoke.py

# Sharded parallel DSE vs the serial sweep: bit-identical results and
# overlap of the (simulated) dispatch cost across 4 workers.
bench-parallel-smoke:
	$(PY) benchmarks/bench_parallel_dse.py --smoke

# Tiny traced DSE through the CLI; validates the exported trace JSON
# against its schema, span-tree containment, and the live metrics
# registry.
trace-smoke:
	cd benchmarks && $(PY) trace_smoke.py

# Two tiny active-learning rounds (estimator oracle) hot-swapping a
# live server under background request load: asserts a new artifact
# version per round, the server answers under both the baseline and
# the final model, and zero requests fail across the swaps.
loop-smoke:
	$(PY) benchmarks/loop_smoke.py

# Open-loop load test against the multi-worker pool: Poisson + burst
# arrivals with per-request deadlines.  Asserts zero 5xx, bounded p99,
# bit-identical predictions across workers, fleet-wide hot-swap
# convergence under load, and a drop-free rolling restart.
serve-load-smoke:
	$(PY) benchmarks/bench_serve_load.py --smoke

# Search-quality gate: race vs the SA baseline at the same query
# budget on three kernels — asserts race hypervolume >= SA and that a
# rerun reproduces every number and ledger row bit-for-bit.
bench-dse-smoke:
	$(PY) benchmarks/bench_dse_quality.py --smoke

bench-cross-device-smoke:
	$(PY) benchmarks/bench_cross_device.py --smoke

# Everything CI runs, in the same order: lint, the tier-1 suite, and
# the eight smoke gates.  `make ci` green locally = workflow green.
ci: lint
	$(PY) -m pytest tests/ -x -q
	$(MAKE) bench-smoke
	$(MAKE) serve-smoke
	$(MAKE) bench-parallel-smoke
	$(MAKE) trace-smoke
	$(MAKE) loop-smoke
	$(MAKE) serve-load-smoke
	$(MAKE) bench-dse-smoke
	$(MAKE) bench-cross-device-smoke

# Smoke-scale benchmark run (~minutes): tiny database + training budgets.
bench-fast:
	REPRO_SCALE=0.1 REPRO_EPOCHS=6 REPRO_TABLE2_EPOCHS=4 \
	REPRO_FIG7_ROUNDS=2 REPRO_FIG7_EPOCHS=2 REPRO_ABLATION_EPOCHS=2 \
	$(PY) -m pytest benchmarks/ --benchmark-only

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/explore_design_space.py

clean:
	rm -rf .repro_cache .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
