# Convenience targets for the GNN-DSE reproduction.

PY ?= python

.PHONY: install test bench bench-fast examples clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Smoke-scale benchmark run (~minutes): tiny database + training budgets.
bench-fast:
	REPRO_SCALE=0.1 REPRO_EPOCHS=6 REPRO_TABLE2_EPOCHS=4 \
	REPRO_FIG7_ROUNDS=2 REPRO_FIG7_EPOCHS=2 REPRO_ABLATION_EPOCHS=2 \
	$(PY) -m pytest benchmarks/ --benchmark-only

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/explore_design_space.py

clean:
	rm -rf .repro_cache .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
