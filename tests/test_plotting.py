"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis import ascii_bars, ascii_scatter


class TestScatter:
    def test_dimensions(self):
        rng = np.random.default_rng(0)
        text = ascii_scatter(rng.normal(size=(20, 2)), width=30, height=10)
        lines = text.split("\n")
        body = [l for l in lines if l.startswith("|")]
        assert len(body) == 10
        assert all(len(l) == 32 for l in body)

    def test_all_points_plotted(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = ascii_scatter(points, width=10, height=5)
        assert text.count(".") >= 2 or "." in text

    def test_value_glyphs(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = ascii_scatter(points, values=np.array([0.0, 10.0]))
        assert "." in text and "@" in text

    def test_constant_coordinates_no_crash(self):
        points = np.zeros((5, 2))
        text = ascii_scatter(points)
        assert "+" in text

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((4, 3)))

    def test_title_included(self):
        text = ascii_scatter(np.zeros((2, 2)), title="hello plot")
        assert text.startswith("hello plot")


class TestBars:
    def test_rows_per_value(self):
        text = ascii_bars({"a": [0.5, 1.5], "b": [1.0]})
        rows = [l for l in text.split("\n") if "[" in l]
        assert len(rows) == 3

    def test_reference_marker(self):
        text = ascii_bars({"a": [0.5]}, reference=1.0)
        assert "|" in text
        assert "reference = 1" in text

    def test_bar_lengths_monotone(self):
        text = ascii_bars({"a": [0.25, 0.5, 1.0]}, width=20)
        rows = [l for l in text.split("\n") if "[" in l]
        hashes = [row.count("#") for row in rows]
        assert hashes[0] < hashes[1] < hashes[2]

    def test_values_printed(self):
        text = ascii_bars({"k": [1.23]})
        assert "1.23" in text
