"""Cross-module consistency invariants.

These tests pin down agreements *between* subsystems that nothing else
checks directly: the graph vocabulary covers every IR opcode, the
operator cost table covers every op kind the analyzer counts, kernels'
declared splits match the experiment constants, and public packages
export exactly what their ``__all__`` promises.
"""

import importlib

import pytest

from repro.graph.vocab import NODE_TEXT_VOCAB, node_text_index, UNK_INDEX
from repro.hls.device import OP_COSTS
from repro.ir.analysis import OpCensus
from repro.ir.values import OPCODES


class TestVocabCoversIR:
    def test_all_non_compare_opcodes_in_vocab(self):
        vocab = set(NODE_TEXT_VOCAB)
        for opcode in OPCODES:
            if opcode in ("icmp", "fcmp"):
                continue  # predicate-qualified text, checked below
            assert opcode in vocab, f"opcode {opcode} missing from vocabulary"

    def test_compare_predicates_in_vocab(self):
        for predicate in ("slt", "sgt", "sle", "sge", "eq", "ne"):
            assert node_text_index(f"icmp.{predicate}") != UNK_INDEX

    def test_value_types_in_vocab(self):
        for text in ("i32", "i64", "float", "double", "i32*", "double*"):
            assert node_text_index(text) != UNK_INDEX

    def test_pragma_keywords_in_vocab(self):
        for text in ("PIPELINE", "PARALLEL", "TILE"):
            assert node_text_index(text) != UNK_INDEX

    def test_no_duplicate_vocab_entries(self):
        assert len(NODE_TEXT_VOCAB) == len(set(NODE_TEXT_VOCAB))


class TestOpCostsCoverCensus:
    def test_every_census_op_kind_has_cost(self):
        census_kinds = [
            f for f in vars(OpCensus()).keys() if f not in ("calls", "callees")
        ]
        for kind in census_kinds:
            key = kind if kind in OP_COSTS else kind
            assert key in OP_COSTS, f"OpCensus kind {kind} lacks an OP_COSTS entry"

    def test_costs_are_positive(self):
        for name, cost in OP_COSTS.items():
            assert cost.latency >= 1, name
            assert cost.dsp >= 0 and cost.lut >= 0 and cost.ff >= 0, name

    def test_float_ops_cost_more_than_int(self):
        assert OP_COSTS["fadd"].latency > OP_COSTS["iadd"].latency
        assert OP_COSTS["fmul"].dsp > OP_COSTS["imul"].dsp


class TestKernelSplits:
    def test_experiment_splits_cover_paper_kernels(self):
        from repro.experiments.table3 import TABLE3_PAPER
        from repro.explorer.runner import DEFAULT_TARGETS
        from repro.kernels import TRAINING_KERNELS, UNSEEN_KERNELS

        assert set(DEFAULT_TARGETS) == set(TRAINING_KERNELS)
        assert set(TABLE3_PAPER) == set(UNSEEN_KERNELS)

    def test_splits_are_disjoint(self):
        from repro.kernels import (
            EXTRA_KERNEL_NAMES,
            TRAINING_KERNELS,
            UNSEEN_KERNELS,
        )

        groups = [set(TRAINING_KERNELS), set(UNSEEN_KERNELS), set(EXTRA_KERNEL_NAMES)]
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                assert not (a & b)

    def test_registry_is_union_of_splits(self):
        from repro.kernels import (
            EXTRA_KERNEL_NAMES,
            KERNELS,
            TRAINING_KERNELS,
            UNSEEN_KERNELS,
        )

        assert set(KERNELS) == (
            set(TRAINING_KERNELS) | set(UNSEEN_KERNELS) | set(EXTRA_KERNEL_NAMES)
        )


_PUBLIC_PACKAGES = [
    "repro",
    "repro.frontend",
    "repro.ir",
    "repro.graph",
    "repro.designspace",
    "repro.hls",
    "repro.nn",
    "repro.model",
    "repro.explorer",
    "repro.dse",
    "repro.analysis",
    "repro.experiments",
]


class TestPublicAPI:
    @pytest.mark.parametrize("name", _PUBLIC_PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    @pytest.mark.parametrize("name", _PUBLIC_PACKAGES)
    def test_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20
