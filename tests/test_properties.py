"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import divisors, factor_candidates, point_key
from repro.dse import pareto_front
from repro.frontend.pragmas import PipelineOption
from repro.model import TargetNormalizer
from repro.nn import Segments, Tensor, concat, stack_max
from repro.nn.tensor import IndexPlan

# -- numeric strategies ------------------------------------------------------

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def arrays(rows=st.integers(1, 8), cols=st.integers(1, 6)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: st.lists(
            finite_floats, min_size=shape[0] * shape[1], max_size=shape[0] * shape[1]
        ).map(lambda flat: np.array(flat).reshape(shape))
    )


class TestTensorProperties:
    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_add_commutative(self, a):
        b = a * 2.0 + 1.0
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, a):
        once = Tensor(a).relu().data
        twice = Tensor(once).relu().data
        np.testing.assert_allclose(once, twice)

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_sum_to_one(self, a):
        out = Tensor(a).softmax(axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-6)
        assert np.all(out >= 0)

    @given(arrays())
    @settings(max_examples=30, deadline=None)
    def test_stack_max_upper_bounds_inputs(self, a):
        b = a - 1.0
        out = stack_max([Tensor(a), Tensor(b)]).data
        assert np.all(out >= a - 1e-12)
        assert np.all(out >= b - 1e-12)

    @given(arrays(), arrays())
    @settings(max_examples=20, deadline=None)
    def test_concat_preserves_content(self, a, b):
        if a.shape[0] != b.shape[0]:
            b = np.resize(b, (a.shape[0], b.shape[1]))
        out = concat([Tensor(a), Tensor(b)], axis=1).data
        np.testing.assert_allclose(out[:, : a.shape[1]], a)
        np.testing.assert_allclose(out[:, a.shape[1]:], b)


class TestSegmentProperties:
    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=30).map(sorted),
        st.integers(6, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_sum_equals_loop(self, ids, num_segments):
        ids = np.array(ids)
        rng = np.random.default_rng(0)
        data = rng.normal(size=(ids.size, 3))
        seg = Segments(ids, num_segments)
        fast = seg.sum(data)
        slow = np.zeros((num_segments, 3))
        for row, sid in zip(data, ids):
            slow[sid] += row
        np.testing.assert_allclose(fast, slow, atol=1e-9)

    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=30),
        st.integers(10, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_scatter_add_equals_loop(self, index, num_rows):
        index = np.array(index)
        rng = np.random.default_rng(1)
        values = rng.normal(size=(index.size, 2))
        plan = IndexPlan(index, num_rows)
        fast = plan.scatter_add(values)
        slow = np.zeros((num_rows, 2))
        for row, i in zip(values, index):
            slow[i] += row
        np.testing.assert_allclose(fast, slow, atol=1e-9)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=20).map(sorted))
    @settings(max_examples=30, deadline=None)
    def test_segment_softmax_partition_of_unity(self, ids):
        ids = np.array(ids)
        seg = Segments(ids, 5)
        rng = np.random.default_rng(2)
        logits = Tensor(rng.normal(size=(ids.size, 1)))
        att = logits.segment_softmax(seg)
        sums = att.segment_sum(seg).data[:, 0]
        for s, count in zip(sums, seg.counts):
            if count:
                assert abs(s - 1.0) < 1e-6


class TestDesignSpaceProperties:
    @given(st.integers(1, 4096))
    @settings(max_examples=60, deadline=None)
    def test_divisors_divide(self, n):
        for d in divisors(n):
            assert n % d == 0
        assert divisors(n)[0] == 1
        assert divisors(n)[-1] == n

    @given(st.integers(1, 4096), st.integers(2, 10))
    @settings(max_examples=60, deadline=None)
    def test_factor_candidates_valid(self, trip, max_candidates):
        cands = factor_candidates(trip, max_candidates)
        assert len(cands) <= max_candidates
        assert cands == sorted(cands)
        assert all(trip % c == 0 for c in cands)
        assert 1 in cands

    @given(
        st.dictionaries(
            st.sampled_from(["A", "B", "C"]),
            st.one_of(st.integers(1, 64), st.sampled_from(list(PipelineOption))),
            min_size=1,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_point_key_injective_on_values(self, point):
        key = point_key(point)
        # Any change to one value changes the key.
        for name in point:
            mutated = dict(point)
            mutated[name] = 999
            assert point_key(mutated) != key


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100, allow_nan=False), st.floats(0.1, 100, allow_nan=False)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_front_members_not_dominated(self, pairs):
        items = [{"latency": a, "DSP": b} for a, b in pairs]
        front = pareto_front(items, lambda x: x, keys=("latency", "DSP"))
        assert front  # never empty
        from repro.dse import dominates

        for member in front:
            assert not any(
                dominates(other, member, ("latency", "DSP")) for other in items
            )

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_single_objective_front_is_minimum(self, values):
        items = [{"latency": v} for v in values]
        front = pareto_front(items, lambda x: x, keys=("latency",))
        assert min(values) in [f["latency"] for f in front]


class TestNormalizerProperties:
    @given(st.lists(st.integers(1, 10**9), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_transform_monotone_decreasing(self, latencies):
        norm = TargetNormalizer().fit(latencies)
        ordered = sorted(set(latencies))
        transformed = [norm.transform_latency(l) for l in ordered]
        assert transformed == sorted(transformed, reverse=True)
        assert transformed[-1] >= -1e-9  # max latency maps to ~0

    @given(st.lists(st.integers(1, 10**9), min_size=1, max_size=20), st.integers(1, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_latency(self, latencies, probe):
        norm = TargetNormalizer().fit(latencies)
        assert norm.inverse_latency(norm.transform_latency(probe)) == (
            __import__("pytest").approx(probe, rel=1e-9)
        )
