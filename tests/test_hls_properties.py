"""Property-based tests of the HLS simulator over sampled design points,
and of the graph-encoding cache the evaluation pipeline is built on."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import build_design_space
from repro.frontend.pragmas import PipelineOption, PragmaKind
from repro.graph import encode_kernel
from repro.graph.encoding import PRAGMA_FEATURE_SLICE
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel

_TOOL = MerlinHLSTool()
_SPEC = get_kernel("gemm-ncubed")
_SPACE = build_design_space(_SPEC)
_ENC = encode_kernel(_SPEC)


def sampled_points():
    """Strategy: random canonical design points of gemm-ncubed."""
    return st.integers(0, 10_000).map(
        lambda seed: _SPACE.sample(random.Random(seed), 1)[0]
    )


class TestSimulatorProperties:
    @given(sampled_points())
    @settings(max_examples=40, deadline=None)
    def test_outputs_well_formed(self, point):
        result = _TOOL.synthesize(_SPEC, point)
        assert result.latency > 0
        assert set(result.utilization) == {"DSP", "BRAM", "LUT", "FF"}
        assert all(u >= 0.0 for u in result.utilization.values())
        assert result.synth_seconds > 0
        if not result.valid:
            assert result.invalid_reason

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, point):
        a = MerlinHLSTool(cache=False).synthesize(_SPEC, point)
        b = MerlinHLSTool(cache=False).synthesize(_SPEC, point)
        assert a.latency == b.latency
        assert a.usage == b.usage
        assert a.valid == b.valid

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_fg_absorbs_inner_knobs(self, point):
        """A point with fg pipelining on L0 is equivalent to the same
        point with every inner knob neutralised — the Merlin semantics
        the pruning rules rely on."""
        fg_point = dict(point)
        inner_neutral = dict(point)
        for knob in _SPACE.knobs:
            if knob.kind is PragmaKind.PIPELINE and knob.loop_label == "L0":
                fg_point[knob.name] = PipelineOption.FINE
                inner_neutral[knob.name] = PipelineOption.FINE
            elif knob.kind is PragmaKind.PARALLEL and knob.loop_label == "L0":
                # A full unroll of L0 would moot its pipeline knob (the
                # full-unroll rule) and defeat the fg semantics under test.
                fg_point[knob.name] = 1
                inner_neutral[knob.name] = 1
            elif knob.loop_label != "L0":
                inner_neutral[knob.name] = knob.neutral
        a = _TOOL.synthesize(_SPEC, fg_point)
        b = _TOOL.synthesize(_SPEC, inner_neutral)
        assert a.latency == b.latency
        assert a.usage == b.usage

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_latency_in_database_range(self, point):
        """Every design's latency lies between the theoretical extremes:
        above the fully-parallel bound and below ~2x the sequential
        baseline (tiling overheads can exceed the plain baseline)."""
        baseline = _TOOL.baseline(_SPEC).latency
        result = _TOOL.synthesize(_SPEC, point)
        assert result.latency <= 2 * baseline
        assert result.latency >= 10  # cannot be faster than the interface

    @given(st.integers(1, 64).filter(lambda f: 64 % f == 0))
    @settings(max_examples=10, deadline=None)
    def test_more_unroll_never_slower_inner_pipelined(self, factor):
        """With the inner loop pipelined, raising its unroll factor never
        increases latency for this regular kernel (ports scale with
        partitioning)."""
        def lat(f):
            point = _SPACE.default_point()
            for knob in _SPACE.knobs:
                if knob.loop_label == "L2" and knob.kind is PragmaKind.PIPELINE:
                    point[knob.name] = PipelineOption.COARSE
                if knob.loop_label == "L2" and knob.kind is PragmaKind.PARALLEL:
                    point[knob.name] = f if f in [int(c) for c in knob.candidates] else 1
            return _TOOL.synthesize(_SPEC, point).latency

        assert lat(factor) <= lat(1)


class TestEncodingCacheProperties:
    """The pipeline patches pragma cells into one shared encoding; the
    result must be indistinguishable from building the graph fresh."""

    @given(sampled_points())
    @settings(max_examples=40, deadline=None)
    def test_patched_equals_freshly_built(self, point):
        fresh = encode_kernel(_SPEC)
        assert fresh.num_nodes == _ENC.num_nodes
        assert np.array_equal(fresh.edge_index, _ENC.edge_index)
        assert np.array_equal(fresh.edge_attr, _ENC.edge_attr)
        assert np.array_equal(_ENC.fill(point), fresh.fill(point))

    @given(sampled_points())
    @settings(max_examples=40, deadline=None)
    def test_patch_touches_only_pragma_cells(self, point):
        filled = _ENC.fill(point)
        rows, values = _ENC.pragma_patch(point)
        mask = np.ones(_ENC.num_nodes, dtype=bool)
        mask[rows] = False
        # Non-pragma rows are untouched ...
        assert np.array_equal(filled[mask], _ENC.x_base[mask])
        # ... and pragma rows change only inside the pragma feature block.
        non_pragma = np.ones(filled.shape[1], dtype=bool)
        non_pragma[PRAGMA_FEATURE_SLICE] = False
        assert np.array_equal(filled[:, non_pragma], _ENC.x_base[:, non_pragma])
        assert np.array_equal(filled[rows][:, PRAGMA_FEATURE_SLICE], values)

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_template_slot_equals_fresh_graph(self, point):
        """A batch-template slot written via ``set_point`` holds exactly
        the node features a freshly built per-point graph would."""
        from repro.dse.pipeline import _BatchTemplate

        template = _BatchTemplate(_ENC, capacity=3, dtype=np.float64)
        slot = 1
        template.set_point(slot, point)
        n = _ENC.num_nodes
        got = template.x[slot * n : (slot + 1) * n]
        assert np.array_equal(got, _ENC.fill(point).astype(np.float64))

    @given(sampled_points(), sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_slot_rewrites_are_independent(self, first, second):
        """Rewriting a slot leaves other slots' features intact, and a
        slot overwritten with a new point forgets the previous one."""
        from repro.dse.pipeline import _BatchTemplate

        template = _BatchTemplate(_ENC, capacity=2, dtype=np.float64)
        template.set_point(0, first)
        template.set_point(1, second)
        template.set_point(1, first)
        n = _ENC.num_nodes
        expected = _ENC.fill(first).astype(np.float64)
        assert np.array_equal(template.x[:n], expected)
        assert np.array_equal(template.x[n:], expected)
