"""Property-based tests of the HLS simulator over sampled design points."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import build_design_space, point_key
from repro.frontend.pragmas import PipelineOption, PragmaKind
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel

_TOOL = MerlinHLSTool()
_SPEC = get_kernel("gemm-ncubed")
_SPACE = build_design_space(_SPEC)


def sampled_points():
    """Strategy: random canonical design points of gemm-ncubed."""
    return st.integers(0, 10_000).map(
        lambda seed: _SPACE.sample(random.Random(seed), 1)[0]
    )


class TestSimulatorProperties:
    @given(sampled_points())
    @settings(max_examples=40, deadline=None)
    def test_outputs_well_formed(self, point):
        result = _TOOL.synthesize(_SPEC, point)
        assert result.latency > 0
        assert set(result.utilization) == {"DSP", "BRAM", "LUT", "FF"}
        assert all(u >= 0.0 for u in result.utilization.values())
        assert result.synth_seconds > 0
        if not result.valid:
            assert result.invalid_reason

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, point):
        a = MerlinHLSTool(cache=False).synthesize(_SPEC, point)
        b = MerlinHLSTool(cache=False).synthesize(_SPEC, point)
        assert a.latency == b.latency
        assert a.usage == b.usage
        assert a.valid == b.valid

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_fg_absorbs_inner_knobs(self, point):
        """A point with fg pipelining on L0 is equivalent to the same
        point with every inner knob neutralised — the Merlin semantics
        the pruning rules rely on."""
        fg_point = dict(point)
        inner_neutral = dict(point)
        for knob in _SPACE.knobs:
            if knob.kind is PragmaKind.PIPELINE and knob.loop_label == "L0":
                fg_point[knob.name] = PipelineOption.FINE
                inner_neutral[knob.name] = PipelineOption.FINE
            elif knob.kind is PragmaKind.PARALLEL and knob.loop_label == "L0":
                # A full unroll of L0 would moot its pipeline knob (the
                # full-unroll rule) and defeat the fg semantics under test.
                fg_point[knob.name] = 1
                inner_neutral[knob.name] = 1
            elif knob.loop_label != "L0":
                inner_neutral[knob.name] = knob.neutral
        a = _TOOL.synthesize(_SPEC, fg_point)
        b = _TOOL.synthesize(_SPEC, inner_neutral)
        assert a.latency == b.latency
        assert a.usage == b.usage

    @given(sampled_points())
    @settings(max_examples=25, deadline=None)
    def test_latency_in_database_range(self, point):
        """Every design's latency lies between the theoretical extremes:
        above the fully-parallel bound and below ~2x the sequential
        baseline (tiling overheads can exceed the plain baseline)."""
        baseline = _TOOL.baseline(_SPEC).latency
        result = _TOOL.synthesize(_SPEC, point)
        assert result.latency <= 2 * baseline
        assert result.latency >= 10  # cannot be faster than the interface

    @given(st.integers(1, 64).filter(lambda f: 64 % f == 0))
    @settings(max_examples=10, deadline=None)
    def test_more_unroll_never_slower_inner_pipelined(self, factor):
        """With the inner loop pipelined, raising its unroll factor never
        increases latency for this regular kernel (ports scale with
        partitioning)."""
        def lat(f):
            point = _SPACE.default_point()
            for knob in _SPACE.knobs:
                if knob.loop_label == "L2" and knob.kind is PragmaKind.PIPELINE:
                    point[knob.name] = PipelineOption.COARSE
                if knob.loop_label == "L2" and knob.kind is PragmaKind.PARALLEL:
                    point[knob.name] = f if f in [int(c) for c in knob.candidates] else 1
            return _TOOL.synthesize(_SPEC, point).latency

        assert lat(factor) <= lat(1)
