"""Tests for the simulated Merlin+HLS evaluator.

The simulator's *qualitative* behaviours are the contract: pipelining
reduces latency, unrolling trades resources for cycles, irregular
accesses resist parallelisation, recurrences resist pipelining,
aggressive partitioning gets refused, and huge designs time out.
"""

import pytest

from repro.designspace import build_design_space
from repro.frontend.pragmas import PipelineOption as P
from repro.hls import (
    INVALID_PARTITION,
    MAX_PARTITION,
    MerlinHLSTool,
    VCU1525,
    configure,
)
from repro.hls.tool import SYNTH_TIMEOUT_SECONDS
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def tool():
    return MerlinHLSTool()


@pytest.fixture(scope="module")
def gemm():
    return get_kernel("gemm-ncubed")


def gemm_point(**kw):
    point = {
        "__TILE__L0": 1, "__PIPE__L0": P.OFF, "__PARA__L0": 1,
        "__PIPE__L1": P.OFF, "__PARA__L1": 1,
        "__PIPE__L2": P.OFF, "__PARA__L2": 1,
    }
    point.update(kw)
    return point


class TestLatencyModel:
    def test_baseline_is_slow(self, tool, gemm):
        base = tool.baseline(gemm)
        assert base.valid
        assert base.latency > 1_000_000  # 64^3 MACs, sequential

    def test_pipelining_inner_loop_helps(self, tool, gemm):
        base = tool.synthesize(gemm, gemm_point())
        piped = tool.synthesize(gemm, gemm_point(__PIPE__L2=P.COARSE))
        assert piped.latency < base.latency / 2

    def test_unrolling_helps_monotonically(self, tool, gemm):
        lat = [
            tool.synthesize(
                gemm, gemm_point(__PIPE__L2=P.COARSE, __PARA__L2=f)
            ).latency
            for f in (1, 4, 16)
        ]
        assert lat[0] > lat[1] > lat[2]

    def test_unrolling_costs_resources(self, tool, gemm):
        small = tool.synthesize(gemm, gemm_point(__PARA__L2=2))
        big = tool.synthesize(gemm, gemm_point(__PARA__L2=32))
        assert big.usage["DSP"] > small.usage["DSP"]
        assert big.usage["LUT"] > small.usage["LUT"]

    def test_coarse_pipeline_overlaps_outer(self, tool, gemm):
        off = tool.synthesize(gemm, gemm_point(__PIPE__L2=P.COARSE))
        cg = tool.synthesize(
            gemm, gemm_point(__PIPE__L2=P.COARSE, __PIPE__L1=P.COARSE)
        )
        assert cg.latency < off.latency

    def test_fg_absorbs_subloops(self, tool, gemm):
        # fg on L1 fully unrolls L2: far fewer iterations, more area.
        cg = tool.synthesize(gemm, gemm_point(__PIPE__L1=P.COARSE))
        fg = tool.synthesize(gemm, gemm_point(__PIPE__L1=P.FINE))
        assert fg.latency < cg.latency
        assert fg.usage["DSP"] > cg.usage["DSP"]

    def test_transfer_cycles_included(self, tool, gemm):
        result = tool.baseline(gemm)
        assert result.transfer_cycles > 0


class TestStructuralEffects:
    def test_irregular_access_resists_parallelism(self, tool):
        spmv = get_kernel("spmv-ellpack")
        base = tool.synthesize(
            spmv, {"__PIPE__L0": P.OFF, "__PARA__L0": 1, "__PARA__L1": 1}
        )
        # Unrolling the irregular inner loop: far below the ideal 16x gain.
        unrolled = tool.synthesize(
            spmv, {"__PIPE__L0": P.OFF, "__PARA__L0": 1, "__PARA__L1": 16}
        )
        gain = base.latency / unrolled.latency
        assert gain < 8

    def test_recurrence_resists_pipelining(self, tool):
        nw = get_kernel("nw")
        space = build_design_space(nw)
        point = space.default_point()
        piped = dict(point)
        for knob in space.knobs:
            if knob.loop_label == "L3" and knob.kind.keyword == "pipeline":
                piped[knob.name] = P.COARSE
        base = tool.synthesize(nw, point)
        piped_res = tool.synthesize(nw, piped)
        # The wavefront recurrence caps the benefit well under the
        # ~10x a clean pipeline would deliver.
        assert base.latency / piped_res.latency < 3

    def test_reduction_loop_ii_exceeds_one(self, tool, gemm):
        result = tool.synthesize(gemm, gemm_point(__PIPE__L2=P.COARSE))
        inner = [l for l in result.all_loops() if l.label == "L2"]
        assert inner and inner[0].ii >= 4  # double-add latency dominates

    def test_tiling_reduces_bram_footprint(self, tool):
        spec = get_kernel("gemm-blocked")
        space = build_design_space(spec)
        base = space.default_point()
        tiled = dict(base)
        for knob in space.knobs:
            if knob.kind.keyword == "tile" and knob.loop_label == "L0":
                candidates = [int(c) for c in knob.candidates if int(c) > 1]
                if candidates:
                    tiled[knob.name] = candidates[0]
        r_base = tool.synthesize(spec, base)
        r_tiled = tool.synthesize(spec, tiled)
        assert r_tiled.usage["BRAM"] <= r_base.usage["BRAM"]


class TestValidity:
    def test_partition_refusal(self, tool):
        mvt = get_kernel("mvt")
        point = {
            "__PIPE__L0": P.OFF, "__PARA__L0": 100,
            "__PIPE__L1": P.OFF, "__PARA__L1": 100,
            "__PIPE__L2": P.OFF, "__PARA__L2": 1,
            "__PIPE__L3": P.OFF, "__PARA__L3": 1,
        }
        result = tool.synthesize(mvt, point)
        assert not result.valid
        assert result.invalid_reason == INVALID_PARTITION

    def test_timeout_on_huge_designs(self, tool, gemm):
        result = tool.synthesize(
            gemm, gemm_point(__PIPE__L0=P.FINE, __PARA__L0=8)
        )
        assert not result.valid
        assert result.synth_seconds == SYNTH_TIMEOUT_SECONDS or result.invalid_reason

    def test_synth_seconds_minutes_to_hours(self, tool, gemm):
        base = tool.baseline(gemm)
        assert 60 <= base.synth_seconds <= SYNTH_TIMEOUT_SECONDS

    def test_fits_threshold(self, tool, gemm):
        base = tool.baseline(gemm)
        assert base.fits(0.8)

    def test_determinism(self, gemm):
        t1, t2 = MerlinHLSTool(cache=False), MerlinHLSTool(cache=False)
        p = gemm_point(__PARA__L2=8, __PIPE__L2=P.COARSE)
        r1, r2 = t1.synthesize(gemm, p), t2.synthesize(gemm, p)
        assert r1.latency == r2.latency
        assert r1.usage == r2.usage

    def test_cache_hit(self, gemm):
        tool = MerlinHLSTool()
        p = gemm_point()
        tool.synthesize(gemm, p)
        count = tool.invocations
        tool.synthesize(gemm, p)
        assert tool.invocations == count


class TestConfigure:
    def test_fg_marks_absorbed(self, gemm):
        cfg = configure(gemm.analysis, gemm_point(__PIPE__L1=P.FINE))
        loops = {c.label: c for c in cfg.all_loops()}
        assert loops["L2"].absorbed
        assert not loops["L1"].absorbed

    def test_partition_products(self, gemm):
        cfg = configure(gemm.analysis, gemm_point(__PARA__L1=4, __PARA__L2=8))
        # m1[i][k] varies with k (L2) -> 8; m2[k][j] with j,k -> 32.
        assert cfg.partition_raw["m1"] == 8
        assert cfg.partition_raw["m2"] == 32

    def test_banks_capped(self, gemm):
        cfg = configure(
            gemm.analysis, gemm_point(__PARA__L0=64, __PARA__L1=64, __PARA__L2=64)
        )
        for array in cfg.partition_raw:
            assert cfg.banks(array) <= MAX_PARTITION

    def test_device_utilization_normalised(self):
        util = VCU1525.utilization({"DSP": 6840.0, "LUT": 0.0})
        assert util["DSP"] == 1.0
        assert util["LUT"] == 0.0
