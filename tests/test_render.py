"""Tests for rendering design points back to pragma-annotated C."""

from repro.designspace import build_design_space, render_point, render_source
from repro.frontend.parser import parse_source
from repro.frontend.pragmas import PipelineOption as P
from repro.ir import lower_unit
from repro.kernels import get_kernel, toy_kernel


class TestRenderSource:
    def test_substitutes_values(self):
        spec = toy_kernel()
        source = render_source(spec, {"_PIPE_L1": P.COARSE, "_PARA_L1": 8})
        assert "pipeline cg" in source
        assert "factor=8" in source
        assert "auto{" not in source

    def test_neutral_pragmas_dropped(self):
        spec = toy_kernel()
        source = render_source(spec, {"_PIPE_L1": P.OFF, "_PARA_L1": 1})
        assert "#pragma ACCEL" not in source

    def test_missing_knobs_default_neutral(self):
        spec = toy_kernel()
        source = render_source(spec, {})
        assert "auto{" not in source
        assert "#pragma ACCEL" not in source

    def test_rendered_source_reparses(self):
        """The emitted file must be valid input for the front-end again."""
        spec = get_kernel("gemm-ncubed")
        space = build_design_space(spec)
        point = space.default_point()
        for knob in space.knobs:
            point[knob.name] = knob.candidates[-1]
        point = space.rules.canonicalize(point)
        source = render_source(spec, point)
        unit = parse_source(source, "rendered")
        lower_unit(unit)  # and lowers cleanly

    def test_partial_unroll_kept(self):
        spec = get_kernel("gemm-ncubed")
        source = render_source(spec, {"__PARA__L2": 16})
        assert "parallel factor=16" in source


class TestRenderPoint:
    def test_summary_groups_by_loop(self):
        spec = get_kernel("gemm-ncubed")
        text = render_point(spec, {"__PARA__L2": 16, "__PIPE__L1": P.COARSE})
        assert "gemm_ncubed/L2" in text
        assert "parallel=16" in text
        assert "gemm_ncubed/L1" in text

    def test_neutral_point_message(self):
        spec = toy_kernel()
        assert "neutral" in render_point(spec, {})
