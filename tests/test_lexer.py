"""Tests for the C-subset lexer."""

import pytest

from repro.errors import LexerError
from repro.frontend.lexer import Lexer, TokenType, tokenize


def kinds(source):
    return [t.type for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo;")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENT
        assert tokens[1].text == "foo"

    def test_integer_literals(self):
        assert texts("42 0x1F 7u") == ["42", "0x1F", "7u"]
        assert all(k is TokenType.INT_LIT for k in kinds("42 0x1F 7u"))

    def test_float_literals(self):
        tokens = tokenize("1.5 0.25f 1e3 .5")
        assert [t.type for t in tokens[:-1]] == [TokenType.FLOAT_LIT] * 4

    def test_plain_int_is_not_float(self):
        assert kinds("123") == [TokenType.INT_LIT]

    def test_multi_char_punctuators(self):
        assert texts("a += b << 2;")[1] == "+="
        assert "<<" in texts("a += b << 2;")

    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]

    def test_eof_terminates(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_char_literal(self):
        tokens = tokenize("'a'")
        assert tokens[0].type is TokenType.CHAR_LIT

    def test_unknown_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("int $x;")

    def test_positions(self):
        tokens = tokenize("int x;\nint y;")
        assert tokens[0].line == 1
        assert tokens[3].line == 2


class TestComments:
    def test_line_comment_stripped(self):
        assert texts("int x; // comment here") == ["int", "x", ";"]

    def test_block_comment_stripped(self):
        assert texts("int /* hi */ x;") == ["int", "x", ";"]

    def test_multiline_block_comment_preserves_lines(self):
        tokens = tokenize("/* a\nb\nc */ int x;")
        assert tokens[0].line == 3


class TestPreprocessor:
    def test_define_expansion(self):
        assert texts("#define N 64\nint a[N];") == ["int", "a", "[", "64", "]", ";"]

    def test_define_chained(self):
        src = "#define A 4\n#define B A\nint x = B;"
        assert "4" in texts(src)

    def test_define_expression(self):
        src = "#define N 8\n#define M N\nint a[M];"
        assert "8" in texts(src)

    def test_predefined_macros(self):
        tokens = Lexer("int a[N];", predefined={"N": "32"}).tokenize()
        assert tokens[3].text == "32"

    def test_include_ignored(self):
        assert texts('#include <stdio.h>\nint x;') == ["int", "x", ";"]

    def test_pragma_token(self):
        tokens = tokenize("#pragma ACCEL pipeline auto{P}\nint x;")
        assert tokens[0].type is TokenType.PRAGMA
        assert tokens[0].text == "ACCEL pipeline auto{P}"

    def test_macros_recorded(self):
        lexer = Lexer("#define N 64\n")
        lexer.tokenize()
        assert lexer.macros == {"N": "64"}
